//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds in hermetic environments with no registry access,
//! so this crate provides the (small) slice of the criterion 0.5 API that
//! the `randmod-bench` targets use: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Behaviour follows the real harness's two modes:
//!
//! * invoked by `cargo bench` (cargo passes `--bench`): every benchmark is
//!   warmed up and timed over a fixed number of samples, and a
//!   `name  time: [median]` line is printed per benchmark;
//! * invoked by `cargo test` (no `--bench` argument): benchmarks are
//!   registered and listed but not executed, so test runs stay fast.
//!
//! Swapping the real criterion back in is a one-line change in the root
//! `Cargo.toml`; no bench source needs to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples collected per benchmark in bench mode.
const DEFAULT_SAMPLES: usize = 10;

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench executables with `--bench`
        // under `cargo bench`, and without it under `cargo test`.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode }
    }
}

impl Criterion {
    /// Benchmarks a function under the given name.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.bench_mode, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a common name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the throughput of one benchmark iteration (accepted for API
    /// compatibility; the stub reports wall-clock time only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Sets the sample count (accepted for API compatibility; the stub
    /// always uses a small fixed sample count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks a function under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion.bench_mode, &full, &mut f);
        self
    }

    /// Benchmarks a function that receives a borrowed input under
    /// `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion.bench_mode, &full, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure; mirrors `criterion::Bencher`.
pub struct Bencher {
    bench_mode: bool,
    /// Median per-iteration time measured by the last [`Bencher::iter`].
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times the given routine.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if !self.bench_mode {
            return;
        }
        // One warm-up pass, then time a fixed number of samples and keep
        // the median so a stray slow sample does not skew the report.
        black_box(routine());
        let mut samples: Vec<Duration> = (0..DEFAULT_SAMPLES)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        self.elapsed = Some(samples[samples.len() / 2]);
    }
}

fn run_one(bench_mode: bool, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if !bench_mode {
        println!("bench {name}: registered (run with `cargo bench` to time it)");
        return;
    }
    let mut bencher = Bencher {
        bench_mode,
        elapsed: None,
    };
    f(&mut bencher);
    match bencher.elapsed {
        Some(t) => println!("{name}  time: [{t:?} per iteration, median of {DEFAULT_SAMPLES}]"),
        None => println!("{name}  time: [not measured]"),
    }
}

/// Identifier of one benchmark within a group; mirrors
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion into a benchmark id, so `&str` and [`BenchmarkId`] are both
/// accepted where the real criterion accepts them.
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput of one benchmark iteration; mirrors `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group of benchmark functions; mirrors
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $function(c); )+
        }
    };
}

/// Declares the bench `main` running the given groups; mirrors
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}
