//! Test-runner configuration and the deterministic value generator.

use std::cell::RefCell;

/// Configuration accepted by `#![proptest_config(...)]`; mirrors
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator backing all strategies: a SplitMix64 stream
/// seeded from a fixed constant perturbed by the test name, so every test
/// sees a stable but distinct input sequence across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for the named property test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name, folded into a fixed global seed.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: hash ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 uniformly distributed bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// A uniformly distributed index below `bound` (which must be > 0).
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot pick from an empty set of choices");
        (self.next_u64() % bound as u64) as usize
    }
}

thread_local! {
    /// Description of the property-test case currently executing, consulted
    /// by the `prop_assert*` macros when a case fails.
    pub static CASE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// The description of the currently executing case, if any.
pub fn current_case() -> String {
    CASE.with(|slot| {
        slot.borrow()
            .clone()
            .unwrap_or_else(|| "outside a proptest case".to_string())
    })
}
