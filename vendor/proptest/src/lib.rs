//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! This workspace builds in hermetic environments with no registry access,
//! so this crate implements the slice of the proptest 1.x API used by the
//! `randmod` property tests: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with ranges / tuples / [`strategy::Just`] /
//! `prop_map` / [`prop_oneof!`] / [`collection::vec()`], [`arbitrary::any`],
//! and the `prop_assert*` macros.
//!
//! Unlike the real proptest it does not shrink failing inputs: a failing
//! case panics with the generated values' `Debug` rendering instead.  Value
//! generation is deterministic (a fixed-seed SplitMix64 stream, perturbed
//! per test name) so failures reproduce across runs.  Swapping the real
//! proptest back in is a one-line change in the root `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The customary proptest prelude: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let case_description = format!(
                    concat!("case {} of ", stringify!($name), ": ", $(stringify!($arg), " = {:?}, ",)+ "(re-run to reproduce: generation is deterministic)"),
                    case, $(&$arg),+
                );
                $crate::test_runner::CASE.with(|slot| *slot.borrow_mut() = Some(case_description));
                { $body }
                $crate::test_runner::CASE.with(|slot| *slot.borrow_mut() = None);
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test, reporting the generated
/// inputs of the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!(
                "{}\n[proptest stub] {}",
                format!($($fmt)*),
                $crate::test_runner::current_case()
            );
        }
    };
}

/// Asserts equality inside a property test, reporting the generated inputs
/// of the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property test, reporting the generated
/// inputs of the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Picks uniformly among the given strategies (all yielding the same value
/// type); mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::union(vec![ $(Box::new($strategy)),+ ])
    };
}
