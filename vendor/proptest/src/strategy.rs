//! The [`Strategy`] trait and the combinators used by the workspace tests.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type; mirrors
/// `proptest::strategy::Strategy` (generation only — no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value; mirrors
/// `proptest::strategy::Just`.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// The strategy built by `prop_oneof!`: picks uniformly among alternatives.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

/// Builds a [`Union`] from boxed alternatives (used by `prop_oneof!`).
pub fn union<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
    Union { options }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.index(self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! numeric_strategies {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u128() % span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u128() % span) as $ty
            }
        }
    )+};
}

numeric_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        self.start + rng.next_u128() % span
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
