//! The [`Arbitrary`] trait and [`any`], mirroring `proptest::arbitrary`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy generating any value of `T`; mirrors
/// `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
