//! Property-based tests of the core placement invariants, across crates.

use proptest::prelude::*;
use randmod::core::benes::BenesNetwork;
use randmod::core::cache::{AccessKind, SetAssocCache, WritePolicy};
use randmod::core::layout::intra_segment_conflicts;
use randmod::core::{Address, CacheGeometry, LineAddr, PlacementKind, ReplacementKind};

/// Strategy: a valid cache geometry (sets 8..=1024, ways 1..=8, lines 16/32/64).
fn geometry_strategy() -> impl Strategy<Value = CacheGeometry> {
    (3u32..=10, 1u32..=8, prop_oneof![Just(16u32), Just(32u32), Just(64u32)]).prop_map(
        |(set_bits, ways, line)| {
            CacheGeometry::new(1 << set_bits, ways, line).expect("generated geometry is valid")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The paper's defining equation: for any geometry, seed and segment,
    /// RM never maps two same-segment addresses with distinct modulo
    /// indices to the same set.
    #[test]
    fn rm_never_conflicts_within_a_segment(
        geometry in geometry_strategy(),
        seed in any::<u64>(),
        segment in 0u64..1_000_000,
    ) {
        let mut policy = PlacementKind::RandomModulo.build(geometry).unwrap();
        policy.reseed(seed);
        let base = LineAddr::new(segment << geometry.index_bits());
        let mut seen = std::collections::HashSet::new();
        for i in 0..geometry.sets() as u64 {
            let set = policy.set_index_of_line(base.offset(i));
            prop_assert!(set < geometry.sets());
            prop_assert!(seen.insert(set), "duplicate set {set} within one segment");
        }
    }

    /// All placement policies are deterministic functions of (address, seed)
    /// and always stay within bounds.
    #[test]
    fn placements_are_deterministic_and_bounded(
        geometry in geometry_strategy(),
        seed in any::<u64>(),
        addresses in prop::collection::vec(0u64..0xFFFF_FFFF, 1..50),
    ) {
        for kind in PlacementKind::ALL {
            let mut a = kind.build(geometry).unwrap();
            let mut b = kind.build(geometry).unwrap();
            a.reseed(seed);
            b.reseed(seed);
            for &raw in &addresses {
                let addr = Address::new(raw);
                let set = a.set_index(addr);
                prop_assert!(set < geometry.sets());
                prop_assert_eq!(set, b.set_index(addr));
            }
        }
    }

    /// Deterministic policies ignore the seed entirely.
    #[test]
    fn deterministic_policies_ignore_the_seed(
        geometry in geometry_strategy(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        raw in 0u64..0xFFFF_FFFF,
    ) {
        for kind in [PlacementKind::Modulo, PlacementKind::Xor] {
            let mut a = kind.build(geometry).unwrap();
            let mut b = kind.build(geometry).unwrap();
            a.reseed(seed_a);
            b.reseed(seed_b);
            prop_assert_eq!(a.set_index(Address::new(raw)), b.set_index(Address::new(raw)));
        }
    }

    /// Every Benes control word realises a bijection on the index space.
    #[test]
    fn benes_networks_are_bijective(
        wires in 1usize..=10,
        controls in any::<u128>(),
    ) {
        let network = BenesNetwork::new(wires);
        let controls = network.mask_controls(controls);
        let mut seen = vec![false; 1 << wires];
        for value in 0..(1u32 << wires) {
            let out = network.permute_bits(value, controls) as usize;
            prop_assert!(out < (1 << wires));
            prop_assert!(!seen[out]);
            seen[out] = true;
        }
    }

    /// Consecutive lines covering exactly one cache way never conflict under
    /// modulo or RM, for any seed (zero intra-segment conflicts).
    #[test]
    fn one_way_of_consecutive_lines_never_conflicts(
        geometry in geometry_strategy(),
        seed in any::<u64>(),
        base_segment in 0u64..10_000,
    ) {
        let base = LineAddr::new(base_segment << geometry.index_bits());
        let lines: Vec<LineAddr> = (0..geometry.sets() as u64).map(|i| base.offset(i)).collect();
        for kind in [PlacementKind::Modulo, PlacementKind::RandomModulo] {
            let mut policy = kind.build(geometry).unwrap();
            policy.reseed(seed);
            prop_assert_eq!(intra_segment_conflicts(policy.as_ref(), &lines), 0);
        }
    }

    /// A cache access for a line that was just filled always hits, for every
    /// placement/replacement combination.
    #[test]
    fn fill_then_access_hits(
        geometry in geometry_strategy(),
        seed in any::<u64>(),
        raw in 0u64..0xFFFF_FFFF,
    ) {
        for placement in PlacementKind::ALL {
            for replacement in ReplacementKind::ALL {
                let mut cache = SetAssocCache::with_kinds(
                    geometry,
                    placement,
                    replacement,
                    WritePolicy::WriteThrough,
                ).unwrap();
                cache.reseed(seed);
                let addr = Address::new(raw);
                cache.access(addr, AccessKind::Load);
                prop_assert!(cache.contains(addr));
                prop_assert!(cache.access(addr, AccessKind::Load).is_hit());
            }
        }
    }

    /// Execution on the simulator is reproducible: the same trace and seed
    /// give the same cycle count, whatever the placement policy.
    #[test]
    fn simulation_is_reproducible(
        seed in any::<u64>(),
        stride in prop_oneof![Just(32u64), Just(64u64), Just(4096u64)],
        accesses in 10u64..200,
    ) {
        use randmod::sim::{InOrderCore, PlatformConfig, Trace};
        for placement in PlacementKind::ALL {
            let config = PlatformConfig::leon3().with_l1_placement(placement);
            let mut trace = Trace::new();
            for i in 0..accesses {
                trace.load(Address::new(0x1000 + i * stride));
            }
            let mut core = InOrderCore::new(&config).unwrap();
            let (a, _) = core.execute_isolated(&trace, seed);
            let (b, _) = core.execute_isolated(&trace, seed);
            prop_assert_eq!(a, b);
        }
    }
}
