//! Integration tests of the MBPTA statistical pipeline against simulated
//! measurement campaigns.

use randmod::core::PlacementKind;
use randmod::mbpta::{ExecutionSample, Histogram, HighWaterMark, MbptaAnalysis, MbptaConfig};
use randmod::sim::{Campaign, PlatformConfig};
use randmod::workloads::{MemoryLayout, SyntheticKernel, Workload};

fn sample_for(placement: PlacementKind, runs: usize) -> ExecutionSample {
    let kernel = SyntheticKernel::with_traversals(20 * 1024, 8);
    let trace = kernel.packed_trace(&MemoryLayout::default());
    let platform = PlatformConfig::leon3()
        .with_l1_placement(placement)
        .with_l2_placement(PlacementKind::HashRandom);
    let result = Campaign::new(platform, runs)
        .with_campaign_seed(0x5A5A)
        .run(&trace)
        .expect("valid platform");
    ExecutionSample::from_cycles_iter(result.cycles_iter())
}

#[test]
fn pwcet_estimates_upper_bound_every_observation() {
    for placement in [PlacementKind::RandomModulo, PlacementKind::HashRandom] {
        let sample = sample_for(placement, 150);
        let report = MbptaAnalysis::new(MbptaConfig::default().with_minimum_runs(100)).analyze(&sample);
        let pwcet = report.pwcet_at(1e-12);
        assert!(
            pwcet >= sample.max() as f64,
            "{placement}: pWCET {pwcet} below observed maximum {}",
            sample.max()
        );
        // A lower exceedance probability can only raise the bound.
        assert!(report.pwcet_at(1e-15) >= pwcet);
    }
}

#[test]
fn histograms_of_simulated_campaigns_preserve_total_mass() {
    let sample = sample_for(PlacementKind::HashRandom, 120);
    let histogram = Histogram::from_sample(&sample, 30);
    assert_eq!(histogram.total_count(), 120);
    let integral: f64 = histogram
        .bins()
        .iter()
        .map(|b| b.density * (b.upper - b.lower))
        .sum();
    assert!((integral - 1.0).abs() < 1e-9);
}

#[test]
fn hwm_with_default_margin_exceeds_rm_pwcet_for_well_behaved_kernels() {
    // The paper's closing observation: RM pWCET estimates sit well below
    // hwm + 20%, the margin industry applies without probabilistic backing.
    let sample = sample_for(PlacementKind::RandomModulo, 150);
    let report = MbptaAnalysis::new(MbptaConfig::default().with_minimum_runs(100)).analyze(&sample);
    let hwm = HighWaterMark::from_sample(&sample);
    assert!(report.pwcet_at(1e-15) < hwm.with_default_margin());
}

#[test]
fn block_size_choice_does_not_change_the_qualitative_ranking() {
    let rm = sample_for(PlacementKind::RandomModulo, 150);
    let hrp = sample_for(PlacementKind::HashRandom, 150);
    for block_size in [10, 25, 30] {
        let config = MbptaConfig::default()
            .with_block_size(block_size)
            .with_minimum_runs(100);
        let rm_pwcet = MbptaAnalysis::new(config.clone()).analyze(&rm).pwcet_at(1e-15);
        let hrp_pwcet = MbptaAnalysis::new(config).analyze(&hrp).pwcet_at(1e-15);
        assert!(
            rm_pwcet <= hrp_pwcet,
            "block size {block_size}: RM {rm_pwcet} vs hRP {hrp_pwcet}"
        );
    }
}
