//! Cross-crate integration tests: workloads -> simulator -> MBPTA, checking
//! that the qualitative claims of the paper emerge end-to-end.

use randmod::core::{PlacementKind, ReplacementKind};
use randmod::mbpta::{ExecutionSample, MbptaAnalysis, MbptaConfig};
use randmod::sim::{Campaign, PlatformConfig};
use randmod::workloads::{EembcBenchmark, LayoutSweep, MemoryLayout, SyntheticKernel, Workload};

fn measure<S>(trace: &S, placement: PlacementKind, runs: usize, seed: u64) -> ExecutionSample
where
    S: randmod::sim::trace::EventSource + ?Sized,
{
    let platform = PlatformConfig::leon3()
        .with_l1_placement(placement)
        .with_l2_placement(PlacementKind::HashRandom);
    let result = Campaign::new(platform, runs)
        .with_campaign_seed(seed)
        .run(trace)
        .expect("valid platform");
    ExecutionSample::from_cycles_iter(result.cycles_iter())
}

#[test]
fn rm_execution_times_pass_the_iid_tests_for_an_eembc_kernel() {
    let trace = EembcBenchmark::Canrdr.packed_trace(&MemoryLayout::default());
    let sample = measure(&trace, PlacementKind::RandomModulo, 200, 0xAB);
    let config = MbptaConfig::default().with_block_size(10).with_minimum_runs(100);
    let report = MbptaAnalysis::new(config).analyze(&sample);
    assert!(report.ww.passed(), "WW statistic {}", report.ww.statistic);
    assert!(report.ks.passed(), "KS p-value {}", report.ks.p_value);
}

#[test]
fn rm_pwcet_is_tighter_than_hrp_for_the_synthetic_20kb_kernel() {
    // The headline mechanism of the paper (Figure 5): for a footprint
    // between the L1 and L2 sizes, hRP's layouts occasionally pile many
    // lines into few sets, inflating both the spread and the pWCET.
    let kernel = SyntheticKernel::with_traversals(20 * 1024, 10);
    let trace = kernel.packed_trace(&MemoryLayout::default());
    let rm = measure(&trace, PlacementKind::RandomModulo, 150, 0x20);
    let hrp = measure(&trace, PlacementKind::HashRandom, 150, 0x20);
    let config = MbptaConfig::default().with_minimum_runs(100);
    let rm_pwcet = MbptaAnalysis::new(config.clone()).analyze(&rm).pwcet_at(1e-15);
    let hrp_pwcet = MbptaAnalysis::new(config).analyze(&hrp).pwcet_at(1e-15);
    assert!(
        rm_pwcet < hrp_pwcet,
        "RM pWCET {rm_pwcet} should be tighter than hRP pWCET {hrp_pwcet}"
    );
    // And the observed spread is smaller too.
    assert!(rm.max() - rm.min() < hrp.max() - hrp.min());
}

#[test]
fn rm_average_performance_is_close_to_modulo_for_a_fitting_workload() {
    // Section 4.4: RM costs only a few percent over modulo on average.
    let kernel = SyntheticKernel::with_traversals(8 * 1024, 10);
    let trace = kernel.trace(&MemoryLayout::default());
    let rm = measure(&trace, PlacementKind::RandomModulo, 100, 0x44);

    let deterministic = PlatformConfig::leon3_deterministic().with_replacement(ReplacementKind::Lru);
    let modulo = Campaign::new(deterministic, 0)
        .run_seeds(&trace, &[0])
        .expect("valid platform");
    let modulo_cycles = modulo.runs()[0].cycles as f64;
    let degradation = rm.mean() / modulo_cycles - 1.0;
    assert!(
        degradation < 0.15,
        "RM mean {} vs modulo {} -> degradation {:.1}%",
        rm.mean(),
        modulo_cycles,
        degradation * 100.0
    );
}

#[test]
fn deterministic_platform_varies_with_memory_layout_but_not_with_seed() {
    // The classic cache risk pattern the paper discusses: several objects
    // accessed in alternation whose placement in memory decides whether
    // they pile up in the same L1 sets.  Five 4KB arrays need five ways
    // when they are way-aligned (conflict misses on a 4-way cache) but fit
    // when the linker staggers them.
    let build_trace = |stagger_lines: u64| {
        let mut trace = randmod::sim::Trace::new();
        let base = 0x4010_0000u64;
        for _ in 0..20 {
            for line in 0..128u64 {
                for array in 0..5u64 {
                    let addr = base + array * (64 * 1024 + stagger_lines * 32) + line * 32;
                    trace.load(randmod::core::Address::new(addr));
                }
            }
        }
        trace
    };
    let layouts: Vec<randmod::sim::Trace> = (0..6u64).map(build_trace).collect();
    let campaign = Campaign::new(PlatformConfig::leon3_deterministic(), 0);
    let sweep = campaign.run_layout_sweep(&layouts).expect("valid platform");
    let distinct: std::collections::HashSet<u64> = sweep.cycles().into_iter().collect();
    assert!(
        distinct.len() > 1,
        "memory layout changes must affect a deterministic cache: {:?}",
        sweep.cycles()
    );
    // The aligned layout (stagger 0) is the pathological one.
    assert!(
        sweep.cycles()[0] > *sweep.cycles().iter().min().unwrap(),
        "the way-aligned layout should be the slow one"
    );

    // Re-running the same layout with different "seeds" changes nothing.
    let fixed = campaign
        .run_seeds(&layouts[0], &[1, 2, 3])
        .expect("valid platform");
    let unique: std::collections::HashSet<u64> = fixed.cycles().into_iter().collect();
    assert_eq!(unique.len(), 1);

    // An EEMBC-like kernel whose footprint fits in the caches, on the other
    // hand, is insensitive to where the linker puts it — the regime where
    // deterministic placement is unproblematic.  The sweep is streamed:
    // each layout's packed trace is generated on demand and dropped after
    // its run, never collected into a Vec<Trace>.
    let sweep_layouts = LayoutSweep::new(4);
    let benchmark_sweep = campaign
        .run_layout_sweep_with(sweep_layouts.len(), |i| {
            EembcBenchmark::Tblook.packed_trace(&sweep_layouts.layout(i))
        })
        .expect("valid platform");
    assert!(benchmark_sweep.max_cycles() > 0);
}

#[test]
fn reducing_cache_pressure_reduces_execution_time() {
    // Sanity of the whole stack: the 8KB kernel must run faster than the
    // 20KB kernel per traversal, which must run faster than the 160KB one.
    let platform = PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo);
    let mut means = Vec::new();
    for kernel in [
        SyntheticKernel::with_traversals(8 * 1024, 5),
        SyntheticKernel::with_traversals(20 * 1024, 5),
        SyntheticKernel::with_traversals(160 * 1024, 5),
    ] {
        let trace = kernel.trace(&MemoryLayout::default());
        let result = Campaign::new(platform, 20).run(&trace).expect("valid platform");
        // Normalise per accessed line so footprints are comparable.
        let lines = kernel.footprint_bytes() / 32;
        means.push(result.mean_cycles() / lines as f64);
    }
    assert!(
        means[0] <= means[1] && means[1] <= means[2],
        "per-line cost should grow with footprint: {means:?}"
    );
}

#[test]
fn experiment_helpers_are_usable_from_the_facade() {
    // The experiments crate drives the same public APIs users see.
    let options = randmod_experiments::cli::ExperimentOptions::default()
        .with_runs(120)
        .with_campaign_seed(1);
    let row = randmod_experiments::table2::row_for(EembcBenchmark::Rspeed, &options)
        .expect("valid platform");
    assert_eq!(row.runs, 120);
    assert!(row.ww_statistic.is_finite());
}
