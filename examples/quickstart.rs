//! Quickstart: measure a workload on the MBPTA-compliant platform and
//! derive a pWCET estimate.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use randmod::core::PlacementKind;
use randmod::mbpta::{ExecutionSample, MbptaAnalysis, MbptaConfig};
use randmod::sim::{Campaign, PlatformConfig};
use randmod::workloads::{EembcBenchmark, MemoryLayout, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a workload: the EEMBC-like a2time kernel, streamed into the
    //    packed 8-byte-per-event replay representation.
    let benchmark = EembcBenchmark::A2time;
    let trace = benchmark.packed_trace(&MemoryLayout::default());
    println!("workload: {} ({} trace events, {})", benchmark, trace.len(), trace);

    // 2. Describe the platform: a LEON3-like core with Random Modulo in the
    //    first-level caches and hash-based random placement in the L2.
    let platform = PlatformConfig::leon3()
        .with_l1_placement(PlacementKind::RandomModulo)
        .with_l2_placement(PlacementKind::HashRandom);

    // 3. Run the MBPTA measurement protocol: 300 runs, a fresh placement
    //    seed (and cache flush) before each run.
    let campaign = Campaign::new(platform, 300).with_campaign_seed(0xC0FFEE);
    let result = campaign.run(&trace)?;
    println!("campaign: {result}");

    // 4. Apply MBPTA: i.i.d. tests, Gumbel fit, pWCET projection.
    let sample = ExecutionSample::from_cycles_iter(result.cycles_iter());
    let report = MbptaAnalysis::new(MbptaConfig::default()).analyze(&sample);
    println!("{report}");
    println!(
        "pWCET(1e-15) is {:.2}% above the observed high-water mark",
        (report.pwcet_over_hwm(1e-15) - 1.0) * 100.0
    );
    Ok(())
}
