//! Footprint-sensitivity scenario: the synthetic vector-traversal kernel of
//! Figure 5 with footprints that fit in the L1, fit only in the L2, and
//! exceed both, under the three placement policies.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example footprint_sweep [-- runs]
//! ```

use randmod::core::PlacementKind;
use randmod::mbpta::ExecutionSample;
use randmod::sim::{Campaign, PlatformConfig};
use randmod::workloads::{MemoryLayout, SyntheticKernel, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    println!("synthetic kernel, {runs} runs per configuration");
    println!(
        "{:<22} {:<14} {:>14} {:>14} {:>14}",
        "kernel", "placement", "min cycles", "mean cycles", "max cycles"
    );

    for kernel in SyntheticKernel::paper_variants() {
        let trace = kernel.packed_trace(&MemoryLayout::default());
        for placement in [
            PlacementKind::Modulo,
            PlacementKind::HashRandom,
            PlacementKind::RandomModulo,
        ] {
            let platform = PlatformConfig::leon3()
                .with_l1_placement(placement)
                .with_l2_placement(PlacementKind::HashRandom);
            let result = Campaign::new(platform, runs).with_campaign_seed(7).run(&trace)?;
            let sample = ExecutionSample::from_cycles_iter(result.cycles_iter());
            println!(
                "{:<22} {:<14} {:>14} {:>14.0} {:>14}",
                kernel.name(),
                placement.to_string(),
                sample.min(),
                sample.mean(),
                sample.max()
            );
        }
    }
    println!();
    println!("Expected shape (paper, Section 4.3): the execution-time spread of hRP grows");
    println!("with the footprint, while RM stays close to modulo until capacity is exceeded.");
    Ok(())
}
