//! pWCET analysis scenario: compare the pWCET estimates obtained with
//! Random Modulo and with hash-based random placement for one benchmark,
//! reproducing a single bar of Figure 4(a).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pwcet_analysis [-- <benchmark> [runs]]
//! ```

use randmod::core::PlacementKind;
use randmod::mbpta::{ExecutionSample, MbptaAnalysis, MbptaConfig};
use randmod::sim::{Campaign, PlatformConfig};
use randmod::workloads::{EembcBenchmark, MemoryLayout, Workload};

fn measure(
    benchmark: EembcBenchmark,
    placement: PlacementKind,
    runs: usize,
) -> Result<ExecutionSample, Box<dyn std::error::Error>> {
    let trace = benchmark.packed_trace(&MemoryLayout::default());
    let platform = PlatformConfig::leon3()
        .with_l1_placement(placement)
        .with_l2_placement(PlacementKind::HashRandom);
    let result = Campaign::new(platform, runs).with_campaign_seed(0xFEED).run(&trace)?;
    Ok(ExecutionSample::from_cycles_iter(result.cycles_iter()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let benchmark: EembcBenchmark = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(EembcBenchmark::Cacheb);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);

    println!("benchmark: {benchmark}, {runs} runs per setup");
    let config = MbptaConfig::default().with_minimum_runs(runs.min(100));

    let mut pwcets = Vec::new();
    for placement in [PlacementKind::RandomModulo, PlacementKind::HashRandom] {
        let sample = measure(benchmark, placement, runs)?;
        let report = MbptaAnalysis::new(config.clone()).analyze(&sample);
        println!(
            "{:<14} mean {:>12.0}  hwm {:>12}  pWCET(1e-15) {:>12.0}  i.i.d. tests: WW {}, KS {}",
            placement.to_string(),
            sample.mean(),
            sample.max(),
            report.pwcet_at(1e-15),
            if report.ww.passed() { "pass" } else { "fail" },
            if report.ks.passed() { "pass" } else { "fail" },
        );
        pwcets.push(report.pwcet_at(1e-15));
    }
    println!(
        "RM pWCET is {:.1}% tighter than hRP for {benchmark}",
        (1.0 - pwcets[0] / pwcets[1]) * 100.0
    );
    Ok(())
}
