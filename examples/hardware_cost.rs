//! Hardware-cost scenario: size the hRP and RM placement modules for a range
//! of cache geometries and reproduce the shape of Table 1.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example hardware_cost
//! ```

use randmod::core::CacheGeometry;
use randmod::hwcost::{CellLibrary, FpgaModel, HrpModule, RmModule, Table1Report};

fn main() {
    let library = CellLibrary::generic_45nm();

    println!("Per-module ASIC cost versus cache geometry (45nm-class library):");
    println!(
        "{:<28} {:>6} {:>14} {:>14} {:>10}",
        "cache", "index", "RM area (um2)", "hRP area (um2)", "area ratio"
    );
    for (name, geometry) in [
        ("LEON3 L1 (16KB, 4-way)", CacheGeometry::leon3_l1()),
        ("256-set cache (paper sizing)", CacheGeometry::eight_index_bits()),
        ("LEON3 L2 partition (128KB)", CacheGeometry::leon3_l2_partition()),
    ] {
        let rm = RmModule::paper_config(geometry.index_bits()).area_delay(&library);
        let hrp = HrpModule::paper_config(geometry.index_bits()).area_delay(&library);
        println!(
            "{:<28} {:>6} {:>14.1} {:>14.1} {:>9.1}x",
            name,
            geometry.index_bits(),
            rm.area_um2,
            hrp.area_um2,
            hrp.area_um2 / rm.area_um2
        );
    }

    println!();
    println!("{}", Table1Report::generate(7, &library));

    println!("FPGA integration (all nine caches of the 4-core prototype):");
    let fpga = FpgaModel::stratix_iv();
    let rm = fpga.integrate_rm(&RmModule::paper_config(7), &library);
    let hrp = fpga.integrate_hrp(&HrpModule::paper_config(7), &library);
    println!("  RM : {rm}");
    println!("  hRP: {hrp}");
}
