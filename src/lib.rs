//! # randmod
//!
//! Facade crate of the *Random Modulo* reproduction (Hernández et al.,
//! DAC 2016): an MBPTA-compliant cache placement design for real-time
//! critical systems, together with the simulation, workload, statistical
//! and hardware-cost substrates needed to reproduce the paper's evaluation.
//!
//! The workspace is organised as focused crates, all re-exported here:
//!
//! * [`core`] (`randmod-core`) — placement policies (modulo, XOR, hRP,
//!   Random Modulo), Benes networks, PRNGs, the set-associative cache model
//!   and layout-census utilities.
//! * [`sim`] (`randmod-sim`) — the LEON3-like trace-driven cache hierarchy
//!   and timing simulator plus MBPTA measurement campaigns.
//! * [`workloads`] (`randmod-workloads`) — EEMBC-AutoBench-like kernels and
//!   the synthetic footprint kernel.
//! * [`mbpta`] (`randmod-mbpta`) — i.i.d. tests, EVT/Gumbel fitting, pWCET
//!   curves, high-water-mark baseline.
//! * [`hwcost`] (`randmod-hwcost`) — gate-level ASIC/FPGA area and delay
//!   models of the hRP and RM modules.
//!
//! ## Quickstart
//!
//! ```
//! use randmod::core::PlacementKind;
//! use randmod::sim::{Campaign, PlatformConfig};
//! use randmod::workloads::{MemoryLayout, SyntheticKernel, Workload};
//! use randmod::mbpta::ExecutionSample;
//!
//! # fn main() -> Result<(), randmod::core::ConfigError> {
//! // Measure the 8KB synthetic kernel on a LEON3-like platform with
//! // Random Modulo first-level caches, 50 runs with a fresh seed each.
//! // The kernel streams into the packed 8-byte-per-event representation,
//! // which the campaign replays without ever boxing a `Vec<MemEvent>`.
//! let kernel = SyntheticKernel::with_traversals(8 * 1024, 5);
//! let trace = kernel.packed_trace(&MemoryLayout::default());
//! let platform = PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo);
//! let result = Campaign::new(platform, 50).run(&trace)?;
//! let sample = ExecutionSample::from_cycles_iter(result.cycles_iter());
//! assert_eq!(sample.len(), 50);
//! # Ok(())
//! # }
//! ```
//!
//! The experiment binaries that regenerate every table and figure of the
//! paper live in the `randmod-experiments` crate; see `EXPERIMENTS.md` at
//! the repository root for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use randmod_core as core;
pub use randmod_hwcost as hwcost;
pub use randmod_mbpta as mbpta;
pub use randmod_sim as sim;
pub use randmod_workloads as workloads;
