//! # randmod-experiments
//!
//! Reproduction of every table and figure of the paper's evaluation
//! (Section 4).  Each experiment is a library function returning structured
//! rows, plus a thin binary that prints them; the Criterion harness of
//! `randmod-bench` drives the same functions.
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Figure 1 (illustrative pWCET curve) | [`fig1`] | `fig1_pwcet_curve` |
//! | Table 1 (ASIC & FPGA costs) | [`table1`] | `table1_hwcost` |
//! | Table 2 (WW and KS per EEMBC benchmark) | [`table2`] | `table2_iid_tests` |
//! | Figure 4(a) (RM pWCET vs hRP) | [`fig4`] | `fig4a_rm_vs_hrp` |
//! | Figure 4(b) (RM pWCET vs deterministic hwm) | [`fig4`] | `fig4b_rm_vs_det` |
//! | Figure 5 (synthetic kernel PDFs and pWCET curves) | [`fig5`] | `fig5_synthetic` |
//! | Section 4.4 (average performance vs modulo) | [`sec44`] | `sec44_avg_performance` |
//! | Shared-L2 contention sweep (beyond the paper) | [`fig6`] | `fig6_contention` |
//!
//! The paper uses 1,000 runs per benchmark; the binaries default to a
//! smaller run count so a full reproduction finishes in minutes on a laptop
//! and accept `--runs N` to match the paper exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod error;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod runner;
pub mod sec44;
pub mod table1;
pub mod table2;

/// Default number of runs per benchmark used by the experiment binaries
/// (the paper uses 1,000; pass `--runs 1000` to match it).
pub const DEFAULT_RUNS: usize = 300;

/// Minimum number of runs per campaign accepted by the binaries: the
/// floor of the statistical pipeline (the exponential-tail test is the
/// most demanding step).  `--runs` values below it are clamped rather
/// than panicking mid-campaign.
pub const MIN_RUNS: usize = randmod_mbpta::iid::ET_MIN_OBSERVATIONS;

/// Default campaign seed, fixed so published numbers are reproducible.
pub const DEFAULT_CAMPAIGN_SEED: u64 = 0x00C0_FFEE;
