//! Regenerates the Section 4.4 average-performance comparison: Random
//! Modulo versus conventional modulo placement.

use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::sec44;

fn main() {
    let options = ExperimentOptions::from_env();
    println!("# Section 4.4: average performance, RM vs modulo placement");
    if options.adaptive {
        println!(
            "# adaptive campaigns (rm_runs column = runs to convergence), campaign seed = {:#x}",
            options.campaign_seed
        );
    } else {
        println!(
            "# runs = {}, campaign seed = {:#x}",
            options.runs, options.campaign_seed
        );
    }
    match sec44::generate(&options) {
        Ok(rows) => {
            println!("benchmark,rm_mean_cycles,modulo_cycles,degradation_percent,rm_runs");
            for row in &rows {
                println!(
                    "{},{:.0},{:.0},{:.2},{}",
                    row.benchmark.label(),
                    row.rm_mean_cycles,
                    row.modulo_cycles,
                    row.degradation() * 100.0,
                    row.rm_runs
                );
            }
            let summary = sec44::summarize(&rows);
            println!(
                "# degradation: mean {:.2}%, max {:.2}% (paper: 1.6% mean, 8% max)",
                summary.mean_degradation * 100.0,
                summary.max_degradation * 100.0
            );
            if options.adaptive {
                let converged = rows.iter().filter(|r| r.rm_converged == Some(true)).count();
                let total_runs: usize = rows.iter().map(|r| r.rm_runs).sum();
                println!(
                    "# adaptive: {converged}/{} RM campaigns converged, {total_runs} total runs",
                    rows.len()
                );
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
