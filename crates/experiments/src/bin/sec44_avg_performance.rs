//! Regenerates the Section 4.4 average-performance comparison: Random
//! Modulo versus conventional modulo placement.

use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::sec44;

fn main() {
    let options = ExperimentOptions::from_env();
    println!("# Section 4.4: average performance, RM vs modulo placement");
    println!("# runs = {}, campaign seed = {:#x}", options.runs, options.campaign_seed);
    match sec44::generate(&options) {
        Ok(rows) => {
            println!("benchmark,rm_mean_cycles,modulo_cycles,degradation_percent");
            for row in &rows {
                println!(
                    "{},{:.0},{:.0},{:.2}",
                    row.benchmark.label(),
                    row.rm_mean_cycles,
                    row.modulo_cycles,
                    row.degradation() * 100.0
                );
            }
            let summary = sec44::summarize(&rows);
            println!(
                "# degradation: mean {:.2}%, max {:.2}% (paper: 1.6% mean, 8% max)",
                summary.mean_degradation * 100.0,
                summary.max_degradation * 100.0
            );
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
