//! Regenerates Figure 4(a): pWCET estimates of RM normalised to hRP for the
//! EEMBC benchmarks.

use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::fig4;

fn main() {
    let options = ExperimentOptions::from_env();
    println!("# Figure 4(a): pWCET at 1e-15, RM vs hRP in the L1 caches (L2 keeps hRP)");
    println!("# runs = {}, campaign seed = {:#x}", options.runs, options.campaign_seed);
    match fig4::fig4a(&options) {
        Ok(rows) => {
            println!("benchmark,pwcet_rm,pwcet_hrp,rm_over_hrp,tightening_percent");
            for row in &rows {
                println!(
                    "{},{:.0},{:.0},{:.4},{:.1}",
                    row.benchmark.label(),
                    row.pwcet_rm,
                    row.pwcet_hrp,
                    row.normalized(),
                    row.tightening() * 100.0
                );
            }
            let summary = fig4::summarize_fig4a(&rows);
            println!(
                "# tightening: mean {:.1}%, max {:.1}%, min {:.1}% (paper: 43% / 62% / 25%)",
                summary.mean_tightening * 100.0,
                summary.max_tightening * 100.0,
                summary.min_tightening * 100.0
            );
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
