//! Regenerates Table 1: ASIC and FPGA implementation results for the hRP
//! and RM placement modules.

use randmod_experiments::table1::{self, PAPER_TABLE1};

fn main() {
    let reproduced = table1::generate();
    println!("{reproduced}");
    println!("Paper-reported values (45nm TSMC / Stratix-IV):");
    println!(
        "  ASIC: RM {:.1}um2 / {:.2}ns, hRP {:.1}um2 / {:.2}ns",
        PAPER_TABLE1.rm_area_um2,
        PAPER_TABLE1.rm_delay_ns,
        PAPER_TABLE1.hrp_area_um2,
        PAPER_TABLE1.hrp_delay_ns
    );
    println!(
        "  FPGA: RM {:.0}% @ {:.0}MHz, hRP {:.0}% @ {:.0}MHz",
        PAPER_TABLE1.rm_occupancy_percent,
        PAPER_TABLE1.rm_frequency_mhz,
        PAPER_TABLE1.hrp_occupancy_percent,
        PAPER_TABLE1.hrp_frequency_mhz
    );
    println!();
    println!("L2-sized module (10 index bits):");
    println!("{}", table1::generate_for_index_bits(10));
}
