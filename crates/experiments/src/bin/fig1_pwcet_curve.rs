//! Regenerates Figure 1: the illustrative pWCET (EVT projection) curve.

use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::fig1;

fn main() {
    let options = ExperimentOptions::from_env();
    println!("# Figure 1: pWCET curve (CCDF, log scale) for the 20KB synthetic kernel under RM");
    if options.adaptive {
        println!(
            "# adaptive campaign, campaign seed = {:#x}",
            options.campaign_seed
        );
    } else {
        println!(
            "# runs = {}, campaign seed = {:#x}",
            options.runs, options.campaign_seed
        );
    }
    match fig1::generate(&options) {
        Ok(result) => {
            println!("exceedance_probability,execution_time_cycles");
            for point in &result.points {
                println!("{:e},{:.0}", point.exceedance_probability, point.execution_time);
            }
            println!(
                "# pWCET at the {:.0e} cutoff: {:.0} cycles over {} runs",
                result.cutoff_probability, result.pwcet_at_cutoff, result.runs
            );
            if let Some(adaptive) = &result.adaptive {
                println!(
                    "# adaptive: {} after {} runs ({} checkpoints), pWCET(1e-12) estimate {:.0} cycles",
                    if adaptive.converged { "converged" } else { "run cap reached" },
                    adaptive.runs_used,
                    adaptive.checkpoints,
                    adaptive.pwcet_estimate
                );
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
