//! Regenerates Figure 1: the illustrative pWCET (EVT projection) curve.

use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::fig1;

fn main() {
    let options = ExperimentOptions::from_env();
    println!("# Figure 1: pWCET curve (CCDF, log scale) for the 20KB synthetic kernel under RM");
    println!("# runs = {}, campaign seed = {:#x}", options.runs, options.campaign_seed);
    match fig1::generate(&options) {
        Ok(result) => {
            println!("exceedance_probability,execution_time_cycles");
            for point in &result.points {
                println!("{:e},{:.0}", point.exceedance_probability, point.execution_time);
            }
            println!(
                "# pWCET at the {:.0e} cutoff: {:.0} cycles",
                result.cutoff_probability, result.pwcet_at_cutoff
            );
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
