//! Regenerates Table 2: Wald–Wolfowitz and Kolmogorov–Smirnov results for
//! the EEMBC benchmarks under Random Modulo.

use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::table2;

fn main() {
    let options = ExperimentOptions::from_env();
    println!("# Table 2: i.i.d. tests under RM (WW passes below 1.96, KS passes at or above 0.05)");
    if options.adaptive {
        println!(
            "# adaptive campaigns (runs column = runs to convergence), campaign seed = {:#x}",
            options.campaign_seed
        );
    } else {
        println!(
            "# runs = {}, campaign seed = {:#x}",
            options.runs, options.campaign_seed
        );
    }
    match table2::generate(&options) {
        Ok(rows) => {
            println!("benchmark,ww_statistic,ks_p_value,et_p_value,passed,runs");
            for row in &rows {
                println!(
                    "{},{:.3},{:.3},{:.3},{},{}",
                    row.benchmark.initials(),
                    row.ww_statistic,
                    row.ks_p_value,
                    row.et_p_value,
                    row.passed,
                    row.runs
                );
            }
            let passed = rows.iter().filter(|r| r.passed).count();
            println!("# {passed}/{} benchmarks pass both Table-2 tests", rows.len());
            if options.adaptive {
                let converged = rows.iter().filter(|r| r.converged == Some(true)).count();
                let total_runs: usize = rows.iter().map(|r| r.runs).sum();
                println!(
                    "# adaptive: {converged}/{} benchmarks converged, {total_runs} total runs (fixed schedule would use {})",
                    rows.len(),
                    options.runs * rows.len()
                );
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
