//! Runs every experiment of the paper's evaluation in sequence and prints a
//! one-line summary per artefact — the quickest way to regenerate the whole
//! evaluation (`--quick` for a smoke-test-sized pass, `--runs 1000` to match
//! the paper).

use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::{fig1, fig4, fig5, fig6, sec44, table1, table2};

fn main() {
    let options = ExperimentOptions::from_env();
    let layouts = fig4::fig4b_layouts(options.quick);
    println!("# Full evaluation: runs = {}, campaign seed = {:#x}", options.runs, options.campaign_seed);

    let mut failures = 0usize;
    let mut check = |artefact: &str, outcome: Result<String, String>| match outcome {
        Ok(summary) => println!("{artefact}: {summary}"),
        Err(err) => {
            failures += 1;
            println!("{artefact}: FAILED ({err})");
        }
    };

    check(
        "table1_hwcost",
        Ok(format!(
            "hRP/RM area ratio {:.1}x",
            table1::generate().area_ratio()
        )),
    );
    check(
        "fig1_pwcet_curve",
        fig1::generate(&options)
            .map(|r| format!("pWCET at cutoff {:.0} cycles", r.pwcet_at_cutoff))
            .map_err(|e| e.to_string()),
    );
    check(
        "table2_iid_tests",
        table2::generate(&options)
            .map(|rows| {
                let passed = rows.iter().filter(|r| r.passed).count();
                format!("{passed}/{} benchmarks pass the i.i.d. tests", rows.len())
            })
            .map_err(|e| e.to_string()),
    );
    check(
        "fig4a_rm_vs_hrp",
        fig4::fig4a(&options)
            .map(|rows| {
                let summary = fig4::summarize_fig4a(&rows);
                format!("mean tightening {:.1}%", summary.mean_tightening * 100.0)
            })
            .map_err(|e| e.to_string()),
    );
    check(
        "fig4b_rm_vs_det",
        fig4::fig4b(layouts, &options)
            .map(|rows| {
                let worst = rows
                    .iter()
                    .map(|r| r.normalized())
                    .fold(f64::NEG_INFINITY, f64::max);
                format!("worst RM pWCET / hwm ratio {worst:.3}")
            })
            .map_err(|e| e.to_string()),
    );
    check(
        "fig5_synthetic",
        fig5::generate(&options)
            .map(|r| format!("RM pWCET {:.0}, hRP pWCET {:.0}", r.rm_pwcet, r.hrp_pwcet))
            .map_err(|e| e.to_string()),
    );
    check(
        "sec44_avg_performance",
        sec44::generate(&options)
            .map(|rows| {
                let summary = sec44::summarize(&rows);
                format!("mean degradation {:.2}%", summary.mean_degradation * 100.0)
            })
            .map_err(|e| e.to_string()),
    );

    check(
        "fig6_contention",
        fig6::generate(&options)
            .map(|rows| {
                let worst = rows
                    .iter()
                    .map(|r| r.inflation_percent)
                    .fold(f64::NEG_INFINITY, f64::max);
                format!("worst victim pWCET inflation {worst:.1}%")
            })
            .map_err(|e| e.to_string()),
    );

    if failures > 0 {
        eprintln!("error: {failures} experiment(s) failed");
        std::process::exit(1);
    }
    println!("# all experiments completed");
}
