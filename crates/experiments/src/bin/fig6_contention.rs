//! Regenerates the shared-L2 contention sweep (beyond the paper): victim
//! pWCET vs opponent pressure for every placement policy at the shared L2.
//!
//! Output: one CSV row per `(L2 placement, pressure level)`, the victim
//! pWCET at 10⁻¹⁵, its mean, and the inflation relative to the idle
//! co-schedule of the same placement.  `--adaptive` grows each campaign
//! until the victim's pWCET estimate converges instead of running a fixed
//! count.

use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::fig6;
use randmod_workloads::Workload;

fn main() {
    let options = ExperimentOptions::from_env();
    println!("# Contention sweep: {} victim, shared L2", fig6::victim().name());
    println!(
        "# runs = {}{}, campaign seed = {:#x}",
        options.runs,
        if options.adaptive { " (adaptive)" } else { "" },
        options.campaign_seed
    );
    match fig6::generate(&options) {
        Ok(rows) => {
            println!("l2_placement,pressure,opponents,victim_pwcet,victim_mean,inflation_percent,runs");
            for row in &rows {
                println!(
                    "{},{},{},{:.0},{:.0},{:.3},{}",
                    row.l2_placement.short_name(),
                    row.pressure,
                    row.opponents,
                    row.victim_pwcet,
                    row.victim_mean,
                    row.inflation_percent,
                    row.runs
                );
            }
            for row in &rows {
                if let Some(adaptive) = &row.adaptive {
                    println!(
                        "# adaptive: {} P{} {} after {} runs ({} checkpoints)",
                        row.l2_placement.short_name(),
                        row.pressure,
                        if adaptive.converged { "converged" } else { "hit the run cap" },
                        adaptive.runs_used,
                        adaptive.checkpoints
                    );
                }
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
