//! Regenerates Figure 5: execution-time PDFs and pWCET curves for the
//! synthetic kernel, plus the 8KB/20KB/160KB footprint sweep (`--sweep`)
//! and the extended large-footprint scenario (`--large`): the 1MB and 4MB
//! synthetic sweeps and the L2-sized EEMBC-like stress kernel that the
//! packed streaming trace pipeline makes practical.

use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::fig5;

fn main() {
    let options = ExperimentOptions::from_env();
    let sweep = std::env::args().any(|a| a == "--sweep");
    let large = std::env::args().any(|a| a == "--large");
    println!("# Figure 5: synthetic kernel, RM vs hRP");
    println!("# runs = {}, campaign seed = {:#x}", options.runs, options.campaign_seed);

    let results = if large {
        fig5::large_footprint_sweep(&options)
    } else if sweep {
        fig5::footprint_sweep(&options)
    } else {
        fig5::generate(&options).map(|r| vec![r])
    };

    match results {
        Ok(results) => {
            for result in &results {
                println!("{result}");
                println!("## Figure 5(a): RM execution-time histogram");
                println!("{}", result.rm_histogram);
                println!("## Figure 5(b): hRP execution-time histogram");
                println!("{}", result.hrp_histogram);
                println!("## Figure 5(c): pWCET curves (probability, RM bound, hRP bound)");
                for (rm_point, hrp_point) in result.rm_curve.iter().zip(&result.hrp_curve) {
                    println!("{:e},{:.0},{:.0}", rm_point.0, rm_point.1, hrp_point.1);
                }
                println!();
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }

    if large {
        println!("## L2-sized EEMBC-like stress kernel");
        match fig5::l2_stress(&options) {
            Ok(stress) => println!("{stress}"),
            Err(err) => {
                eprintln!("error: {err}");
                std::process::exit(1);
            }
        }
    }
}
