//! Regenerates Figure 5: execution-time PDFs and pWCET curves for the
//! synthetic kernel, plus the 8KB/20KB/160KB footprint sweep (`--sweep`).

use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::fig5;

fn main() {
    let options = ExperimentOptions::from_env();
    let sweep = std::env::args().any(|a| a == "--sweep");
    println!("# Figure 5: synthetic kernel, RM vs hRP");
    println!("# runs = {}, campaign seed = {:#x}", options.runs, options.campaign_seed);

    let results = if sweep {
        fig5::footprint_sweep(options.runs, options.campaign_seed)
    } else {
        fig5::generate(options.runs, options.campaign_seed).map(|r| vec![r])
    };

    match results {
        Ok(results) => {
            for result in &results {
                println!("{result}");
                println!("## Figure 5(a): RM execution-time histogram");
                println!("{}", result.rm_histogram);
                println!("## Figure 5(b): hRP execution-time histogram");
                println!("{}", result.hrp_histogram);
                println!("## Figure 5(c): pWCET curves (probability, RM bound, hRP bound)");
                for (rm_point, hrp_point) in result.rm_curve.iter().zip(&result.hrp_curve) {
                    println!("{:e},{:.0},{:.0}", rm_point.0, rm_point.1, hrp_point.1);
                }
                println!();
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
