//! Regenerates Figure 4(b): pWCET estimates of RM normalised to the
//! high-water mark observed on a deterministic (modulo/LRU) platform.

use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::fig4;

fn main() {
    let options = ExperimentOptions::from_env();
    let layouts = fig4::fig4b_layouts(options.quick);
    println!("# Figure 4(b): RM pWCET at 1e-15 vs deterministic high-water mark ({layouts} layouts)");
    println!("# runs = {}, campaign seed = {:#x}", options.runs, options.campaign_seed);
    match fig4::fig4b(layouts, &options) {
        Ok(rows) => {
            println!("benchmark,pwcet_rm,deterministic_hwm,rm_over_hwm");
            for row in &rows {
                println!(
                    "{},{:.0},{},{:.4}",
                    row.benchmark.label(),
                    row.pwcet_rm,
                    row.deterministic_hwm.value(),
                    row.normalized()
                );
            }
            let worst = rows
                .iter()
                .map(|r| r.normalized())
                .fold(f64::NEG_INFINITY, f64::max);
            println!(
                "# worst RM pWCET / hwm ratio: {:.3} (paper: at most 1.07, most benchmarks below 1.01)",
                worst
            );
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
