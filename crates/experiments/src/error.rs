//! The error type of the experiment pipeline.
//!
//! Experiments fail in four ways: an invalid platform configuration, a
//! campaign-layer failure (which, for sharded checkpointed campaigns,
//! includes checkpoint IO, corruption and fingerprint mismatches),
//! filesystem trouble around the checkpoint directory itself, or — in
//! `--server` client mode — a campaign-server transport or protocol
//! failure.  All of them carry enough context to print a diagnosable
//! one-line message; the
//! binaries render them via `Display` and exit nonzero instead of
//! unwinding with a backtrace.

use randmod_core::ConfigError;
use randmod_sim::checkpoint::CheckpointError;
use randmod_sim::CampaignError;
use std::fmt;

/// Any failure of an experiment's measurement or IO path.
#[derive(Debug)]
pub enum ExperimentError {
    /// The platform configuration failed validation.
    Config(ConfigError),
    /// The campaign failed — for checkpointed campaigns this covers
    /// checkpoint IO errors, corruption and cross-campaign mismatches.
    Campaign(CampaignError),
    /// A filesystem operation outside the campaign itself failed (e.g.
    /// creating the checkpoint directory).
    Io {
        /// The path the operation targeted.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The campaign server (`--server`) could not be reached, refused the
    /// submission, or returned a payload that failed validation.
    Server {
        /// What went wrong, including the server address.
        detail: String,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Config(err) => write!(f, "{err}"),
            ExperimentError::Campaign(err) => write!(f, "{err}"),
            ExperimentError::Io { path, source } => write!(f, "{path}: {source}"),
            ExperimentError::Server { detail } => write!(f, "campaign server: {detail}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Config(err) => Some(err),
            ExperimentError::Campaign(err) => Some(err),
            ExperimentError::Io { source, .. } => Some(source),
            ExperimentError::Server { .. } => None,
        }
    }
}

impl From<ConfigError> for ExperimentError {
    fn from(err: ConfigError) -> Self {
        ExperimentError::Config(err)
    }
}

impl From<CampaignError> for ExperimentError {
    fn from(err: CampaignError) -> Self {
        ExperimentError::Campaign(err)
    }
}

impl From<CheckpointError> for ExperimentError {
    fn from(err: CheckpointError) -> Self {
        ExperimentError::Campaign(CampaignError::Checkpoint(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources_are_contextual() {
        let config: ExperimentError = ConfigError::Zero { parameter: "ways" }.into();
        assert!(config.to_string().contains("ways"));
        assert!(std::error::Error::source(&config).is_some());

        let checkpoint: ExperimentError = CheckpointError::Corrupt {
            location: "/tmp/x.ckpt".into(),
            detail: "bad magic".into(),
        }
        .into();
        assert!(checkpoint.to_string().contains("/tmp/x.ckpt"), "{checkpoint}");
        assert!(checkpoint.to_string().contains("bad magic"), "{checkpoint}");

        let io = ExperimentError::Io {
            path: "/nonexistent/dir".into(),
            source: std::io::Error::other("denied"),
        };
        assert!(io.to_string().contains("/nonexistent/dir"), "{io}");
        assert!(io.to_string().contains("denied"), "{io}");
        assert!(std::error::Error::source(&io).is_some());

        let server = ExperimentError::Server {
            detail: "127.0.0.1:7878: connection refused".into(),
        };
        assert!(server.to_string().contains("campaign server"), "{server}");
        assert!(server.to_string().contains("127.0.0.1:7878"), "{server}");
        assert!(std::error::Error::source(&server).is_none());
    }
}
