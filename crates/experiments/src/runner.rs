//! Shared campaign-running helpers for all experiments.

use randmod_core::{ConfigError, PlacementKind};
use randmod_mbpta::{ExecutionSample, MbptaAnalysis, MbptaConfig, MbptaReport};
use randmod_sim::{Campaign, PlatformConfig, Trace};
use randmod_workloads::{LayoutSweep, MemoryLayout, Workload};

/// The experimental platform of Section 4.3: the chosen placement policy in
/// the IL1 and DL1, hRP kept in the L2, random replacement everywhere.
pub fn platform_with_l1(placement: PlacementKind) -> PlatformConfig {
    PlatformConfig::leon3()
        .with_l1_placement(placement)
        .with_l2_placement(PlacementKind::HashRandom)
}

/// Runs an MBPTA measurement campaign for `workload` with the given L1
/// placement policy and returns the execution-time sample.
///
/// # Errors
///
/// Returns [`ConfigError`] if the platform configuration is invalid.
pub fn measure(
    workload: &dyn Workload,
    l1_placement: PlacementKind,
    runs: usize,
    campaign_seed: u64,
) -> Result<ExecutionSample, ConfigError> {
    let trace = workload.trace(&MemoryLayout::default());
    measure_trace(&trace, platform_with_l1(l1_placement), runs, campaign_seed)
}

/// Runs an MBPTA measurement campaign for an already-generated trace on an
/// explicit platform.
///
/// # Errors
///
/// Returns [`ConfigError`] if the platform configuration is invalid.
pub fn measure_trace(
    trace: &Trace,
    platform: PlatformConfig,
    runs: usize,
    campaign_seed: u64,
) -> Result<ExecutionSample, ConfigError> {
    let campaign = Campaign::new(platform, runs).with_campaign_seed(campaign_seed);
    let result = campaign.run(trace)?;
    Ok(ExecutionSample::from_cycles(&result.cycles()))
}

/// Runs the deterministic-platform layout sweep (modulo placement, LRU
/// replacement) for a workload and returns the execution-time sample across
/// layouts — the input of the high-water-mark protocol.
///
/// # Errors
///
/// Returns [`ConfigError`] if the platform configuration is invalid.
pub fn measure_deterministic_sweep(
    workload: &dyn Workload,
    layouts: usize,
) -> Result<ExecutionSample, ConfigError> {
    let traces: Vec<Trace> = LayoutSweep::new(layouts)
        .iter()
        .map(|layout| workload.trace(&layout))
        .collect();
    let campaign = Campaign::new(PlatformConfig::leon3_deterministic(), 0);
    let result = campaign.run_layout_sweep(&traces)?;
    Ok(ExecutionSample::from_cycles(&result.cycles()))
}

/// Applies the standard MBPTA analysis (block size scaled to the sample) to
/// a measurement sample.
pub fn analyze(sample: &ExecutionSample) -> MbptaReport {
    // Keep roughly 20+ blocks even for reduced run counts.
    let block_size = (sample.len() / 20).clamp(5, 50);
    let config = MbptaConfig::default()
        .with_block_size(block_size)
        .with_minimum_runs(sample.len().min(100));
    MbptaAnalysis::new(config).analyze(sample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use randmod_workloads::SyntheticKernel;

    #[test]
    fn measure_produces_requested_runs() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 3);
        let sample = measure(&kernel, PlacementKind::RandomModulo, 12, 1).unwrap();
        assert_eq!(sample.len(), 12);
        assert!(sample.min() > 0);
    }

    #[test]
    fn platform_uses_hrp_in_l2() {
        let platform = platform_with_l1(PlacementKind::RandomModulo);
        assert_eq!(platform.il1.placement, PlacementKind::RandomModulo);
        assert_eq!(platform.l2.placement, PlacementKind::HashRandom);
    }

    #[test]
    fn deterministic_sweep_runs_once_per_layout() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        let sample = measure_deterministic_sweep(&kernel, 6).unwrap();
        assert_eq!(sample.len(), 6);
    }

    #[test]
    fn analyze_adapts_block_size_to_sample_length() {
        let cycles: Vec<u64> = (0..200).map(|i| 10_000 + (i * 31) % 400).collect();
        let report = analyze(&ExecutionSample::from_cycles(&cycles));
        assert_eq!(report.curve.block_size(), 10);
        assert_eq!(report.runs, 200);
    }
}
