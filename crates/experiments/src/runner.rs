//! Shared campaign-running helpers for all experiments.
//!
//! Campaigns replay the packed 8-byte-per-event trace representation
//! ([`randmod_sim::PackedTrace`]): workloads emit straight into the packed
//! form and the layout sweeps of Figure 4(b) stream one layout's trace at
//! a time, so no experiment ever materialises a boxed `Vec<MemEvent>` or a
//! whole `Vec<Trace>` family.

use crate::cli::ExperimentOptions;
use randmod_core::{ConfigError, PlacementKind};
use randmod_mbpta::{ExecutionSample, MbptaAnalysis, MbptaConfig, MbptaReport};
use randmod_sim::trace::EventSource;
use randmod_sim::{Campaign, PlatformConfig};
use randmod_workloads::{LayoutSweep, MemoryLayout, Workload};

/// The experimental platform of Section 4.3: the chosen placement policy in
/// the IL1 and DL1, hRP kept in the L2, random replacement everywhere.
pub fn platform_with_l1(placement: PlacementKind) -> PlatformConfig {
    PlatformConfig::leon3()
        .with_l1_placement(placement)
        .with_l2_placement(PlacementKind::HashRandom)
}

/// Builds a campaign, applying the `--threads` and `--lanes` overrides
/// when set.
pub fn campaign(
    platform: PlatformConfig,
    runs: usize,
    campaign_seed: u64,
    threads: Option<usize>,
    lanes: Option<usize>,
) -> Campaign {
    let mut campaign = Campaign::new(platform, runs).with_campaign_seed(campaign_seed);
    if let Some(threads) = threads {
        campaign = campaign.with_threads(threads);
    }
    if let Some(lanes) = lanes {
        campaign = campaign.with_lanes(lanes);
    }
    campaign
}

/// Runs an MBPTA measurement campaign for `workload` with the given L1
/// placement policy and returns the execution-time sample.
///
/// # Errors
///
/// Returns [`ConfigError`] if the platform configuration is invalid.
pub fn measure(
    workload: &dyn Workload,
    l1_placement: PlacementKind,
    runs: usize,
    campaign_seed: u64,
    threads: Option<usize>,
    lanes: Option<usize>,
) -> Result<ExecutionSample, ConfigError> {
    let trace = workload.packed_trace(&MemoryLayout::default());
    measure_source(
        &trace,
        platform_with_l1(l1_placement),
        runs,
        campaign_seed,
        threads,
        lanes,
    )
}

/// Runs an MBPTA measurement campaign for an already-generated event
/// source (packed or boxed) on an explicit platform.
///
/// # Errors
///
/// Returns [`ConfigError`] if the platform configuration is invalid.
pub fn measure_source<S>(
    source: &S,
    platform: PlatformConfig,
    runs: usize,
    campaign_seed: u64,
    threads: Option<usize>,
    lanes: Option<usize>,
) -> Result<ExecutionSample, ConfigError>
where
    S: EventSource + ?Sized,
{
    let result = campaign(platform, runs, campaign_seed, threads, lanes).run(source)?;
    Ok(ExecutionSample::from_cycles_iter(result.cycles_iter()))
}

/// Runs the deterministic-platform layout sweep (modulo placement, LRU
/// replacement) for a workload and returns the execution-time sample across
/// layouts — the input of the high-water-mark protocol.  The sweep is
/// streamed: each worker thread regenerates (and drops) one layout's
/// packed trace at a time, so memory stays constant in the sweep size.
///
/// # Errors
///
/// Returns [`ConfigError`] if the platform configuration is invalid.
pub fn measure_deterministic_sweep(
    workload: &(dyn Workload + Sync),
    layouts: usize,
    threads: Option<usize>,
) -> Result<ExecutionSample, ConfigError> {
    let sweep = LayoutSweep::new(layouts);
    let result = campaign(PlatformConfig::leon3_deterministic(), 0, 0, threads, None)
        .run_layout_sweep_with(sweep.len(), |i| workload.packed_trace(&sweep.layout(i)))?;
    Ok(ExecutionSample::from_cycles_iter(result.cycles_iter()))
}

/// Applies the standard MBPTA analysis (block size scaled to the sample) to
/// a measurement sample.
pub fn analyze(sample: &ExecutionSample) -> MbptaReport {
    // Keep roughly 20+ blocks even for reduced run counts.
    let block_size = (sample.len() / 20).clamp(5, 50);
    let config = MbptaConfig::default()
        .with_block_size(block_size)
        .with_minimum_runs(sample.len().min(100));
    MbptaAnalysis::new(config).analyze(sample)
}

/// `measure` driven by [`ExperimentOptions`] (runs, threads), with a
/// per-experiment seed.
///
/// # Errors
///
/// Returns [`ConfigError`] if the platform configuration is invalid.
pub fn measure_opts(
    workload: &dyn Workload,
    l1_placement: PlacementKind,
    options: &ExperimentOptions,
    campaign_seed: u64,
) -> Result<ExecutionSample, ConfigError> {
    measure(
        workload,
        l1_placement,
        options.runs,
        campaign_seed,
        options.threads,
        options.lanes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use randmod_workloads::SyntheticKernel;

    #[test]
    fn measure_produces_requested_runs() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 3);
        let sample = measure(&kernel, PlacementKind::RandomModulo, 12, 1, None, None).unwrap();
        assert_eq!(sample.len(), 12);
        assert!(sample.min() > 0);
    }

    #[test]
    fn thread_override_does_not_change_the_sample() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 3);
        let default_threads =
            measure(&kernel, PlacementKind::RandomModulo, 10, 2, None, None).unwrap();
        let one_thread =
            measure(&kernel, PlacementKind::RandomModulo, 10, 2, Some(1), None).unwrap();
        let four_threads =
            measure(&kernel, PlacementKind::RandomModulo, 10, 2, Some(4), None).unwrap();
        assert_eq!(default_threads, one_thread);
        assert_eq!(default_threads, four_threads);
    }

    #[test]
    fn lane_override_does_not_change_the_sample() {
        // --lanes is a throughput knob: any lane count (including the
        // sequential escape hatch) reproduces the same sample.
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 3);
        let default_lanes =
            measure(&kernel, PlacementKind::RandomModulo, 10, 2, None, None).unwrap();
        let sequential =
            measure(&kernel, PlacementKind::RandomModulo, 10, 2, None, Some(1)).unwrap();
        let five_lanes =
            measure(&kernel, PlacementKind::RandomModulo, 10, 2, None, Some(5)).unwrap();
        assert_eq!(default_lanes, sequential);
        assert_eq!(default_lanes, five_lanes);
    }

    #[test]
    fn platform_uses_hrp_in_l2() {
        let platform = platform_with_l1(PlacementKind::RandomModulo);
        assert_eq!(platform.il1.placement, PlacementKind::RandomModulo);
        assert_eq!(platform.l2.placement, PlacementKind::HashRandom);
    }

    #[test]
    fn deterministic_sweep_runs_once_per_layout() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        let sample = measure_deterministic_sweep(&kernel, 6, None).unwrap();
        assert_eq!(sample.len(), 6);
    }

    #[test]
    fn streamed_sweep_matches_the_collected_protocol() {
        use randmod_sim::Trace;
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        let streamed = measure_deterministic_sweep(&kernel, 5, Some(2)).unwrap();
        // The pre-streaming protocol: collect every layout's boxed trace,
        // then sweep.
        let traces: Vec<Trace> = LayoutSweep::new(5)
            .iter()
            .map(|layout| kernel.trace(&layout))
            .collect();
        let collected = Campaign::new(PlatformConfig::leon3_deterministic(), 0)
            .run_layout_sweep(&traces)
            .unwrap();
        assert_eq!(
            streamed,
            ExecutionSample::from_cycles_iter(collected.cycles_iter())
        );
    }

    #[test]
    fn measure_opts_applies_runs_and_threads() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        let options = crate::cli::ExperimentOptions::default()
            .with_runs(8)
            .with_threads(2)
            .with_lanes(4);
        let sample = measure_opts(&kernel, PlacementKind::RandomModulo, &options, 3).unwrap();
        assert_eq!(sample.len(), 8);
    }

    #[test]
    fn analyze_adapts_block_size_to_sample_length() {
        let cycles: Vec<u64> = (0..200).map(|i| 10_000 + (i * 31) % 400).collect();
        let report = analyze(&ExecutionSample::from_cycles(&cycles));
        assert_eq!(report.curve.block_size(), 10);
        assert_eq!(report.runs, 200);
    }
}
