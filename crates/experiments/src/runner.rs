//! Shared campaign-running helpers for all experiments.
//!
//! Campaigns replay the packed 8-byte-per-event trace representation
//! ([`randmod_sim::PackedTrace`]): workloads emit straight into the packed
//! form and the layout sweeps of Figure 4(b) stream one layout's trace at
//! a time, so no experiment ever materialises a boxed `Vec<MemEvent>` or a
//! whole `Vec<Trace>` family.

use crate::cli::ExperimentOptions;
use crate::error::ExperimentError;
use crate::MIN_RUNS;
use randmod_core::{ConfigError, PlacementKind};
use randmod_mbpta::{
    ConvergenceCriterion, ExecutionSample, MbptaAnalysis, MbptaConfig, MbptaReport,
};
use randmod_sim::checkpoint::{CheckpointError, CheckpointStore};
use randmod_sim::trace::EventSource;
use randmod_sim::{
    AdaptiveResult, Campaign, ContendedAdaptiveResult, FileCheckpointStore, PlatformConfig,
    ShardedReport,
};
use randmod_workloads::{CoSchedule, LayoutSweep, MemoryLayout, Workload};

/// The experimental platform of Section 4.3: the chosen placement policy in
/// the IL1 and DL1, hRP kept in the L2, random replacement everywhere.
pub fn platform_with_l1(placement: PlacementKind) -> PlatformConfig {
    PlatformConfig::leon3()
        .with_l1_placement(placement)
        .with_l2_placement(PlacementKind::HashRandom)
}

/// Builds a campaign, applying the `--threads` and `--lanes` overrides
/// when set.
pub fn campaign(
    platform: PlatformConfig,
    runs: usize,
    campaign_seed: u64,
    threads: Option<usize>,
    lanes: Option<usize>,
) -> Campaign {
    let mut campaign = Campaign::new(platform, runs).with_campaign_seed(campaign_seed);
    if let Some(threads) = threads {
        campaign = campaign.with_threads(threads);
    }
    if let Some(lanes) = lanes {
        campaign = campaign.with_lanes(lanes);
    }
    campaign
}

/// Runs an MBPTA measurement campaign for `workload` with the given L1
/// placement policy and returns the execution-time sample.
///
/// # Errors
///
/// Returns [`ConfigError`] if the platform configuration is invalid.
pub fn measure(
    workload: &dyn Workload,
    l1_placement: PlacementKind,
    runs: usize,
    campaign_seed: u64,
    threads: Option<usize>,
    lanes: Option<usize>,
) -> Result<ExecutionSample, ConfigError> {
    let trace = workload.packed_trace(&MemoryLayout::default());
    measure_source(
        &trace,
        platform_with_l1(l1_placement),
        runs,
        campaign_seed,
        threads,
        lanes,
    )
}

/// Runs an MBPTA measurement campaign for an already-generated event
/// source (packed or boxed) on an explicit platform.
///
/// # Errors
///
/// Returns [`ConfigError`] if the platform configuration is invalid.
pub fn measure_source<S>(
    source: &S,
    platform: PlatformConfig,
    runs: usize,
    campaign_seed: u64,
    threads: Option<usize>,
    lanes: Option<usize>,
) -> Result<ExecutionSample, ConfigError>
where
    S: EventSource + ?Sized,
{
    let result = campaign(platform, runs, campaign_seed, threads, lanes).run(source)?;
    Ok(ExecutionSample::from_cycles_iter(result.cycles_iter()))
}

/// Runs the deterministic-platform layout sweep (modulo placement, LRU
/// replacement) for a workload and returns the execution-time sample across
/// layouts — the input of the high-water-mark protocol.  The sweep is
/// streamed: each worker thread regenerates (and drops) one layout's
/// packed trace at a time, so memory stays constant in the sweep size.
///
/// # Errors
///
/// Returns [`ConfigError`] if the platform configuration is invalid.
pub fn measure_deterministic_sweep(
    workload: &(dyn Workload + Sync),
    layouts: usize,
    threads: Option<usize>,
) -> Result<ExecutionSample, ConfigError> {
    let sweep = LayoutSweep::new(layouts);
    let result = campaign(PlatformConfig::leon3_deterministic(), 0, 0, threads, None)
        .run_layout_sweep_with(sweep.len(), |i| workload.packed_trace(&sweep.layout(i)))?;
    Ok(ExecutionSample::from_cycles_iter(result.cycles_iter()))
}

/// Applies the standard MBPTA analysis (block size scaled to the sample) to
/// a measurement sample.
pub fn analyze(sample: &ExecutionSample) -> MbptaReport {
    // Keep roughly 20+ blocks even for reduced run counts.
    let block_size = (sample.len() / 20).clamp(5, 50);
    analyze_with_block_size(sample, block_size)
}

/// [`analyze`] with an explicit block-maxima block size.
pub fn analyze_with_block_size(sample: &ExecutionSample, block_size: usize) -> MbptaReport {
    let config = MbptaConfig::default()
        .with_block_size(block_size)
        .with_minimum_runs(sample.len().min(100));
    MbptaAnalysis::new(config).analyze(sample)
}

/// The analysis matching how a [`Measurement`] was collected: adaptive
/// samples are analysed at [`ADAPTIVE_BLOCK_SIZE`] — the block size whose
/// pWCET estimate the convergence loop actually declared stable — while
/// fixed-run samples keep the sample-scaled block size of [`analyze`].
pub fn analyze_measurement(measurement: &Measurement) -> MbptaReport {
    if measurement.adaptive.is_some() {
        analyze_with_block_size(&measurement.sample, ADAPTIVE_BLOCK_SIZE)
    } else {
        analyze(&measurement.sample)
    }
}

/// `measure` driven by [`ExperimentOptions`] (runs, threads), with a
/// per-experiment seed.
///
/// # Errors
///
/// Returns [`ConfigError`] if the platform configuration is invalid.
pub fn measure_opts(
    workload: &dyn Workload,
    l1_placement: PlacementKind,
    options: &ExperimentOptions,
    campaign_seed: u64,
) -> Result<ExecutionSample, ConfigError> {
    measure(
        workload,
        l1_placement,
        options.runs,
        campaign_seed,
        options.threads,
        options.lanes,
    )
}

/// How long the client keeps retrying a `429 Retry-After` backpressure
/// refusal before giving up: a saturated server is expected to drain —
/// campaigns are finite — but a wedged one must not hang an experiment
/// forever.
pub const SERVER_BUSY_PATIENCE: std::time::Duration = std::time::Duration::from_secs(300);

/// Submits one fixed-run campaign to a `randmod-server` (`--server`) and
/// decodes the returned sample.  The server replays exactly the seed
/// schedule the local engine would use, so the returned sample is
/// bit-identical to [`measure_source`] — warm submissions are just served
/// from the server's content-addressed cache instead of recomputed.
///
/// # Errors
///
/// Returns [`ExperimentError::Server`] if the server is unreachable,
/// stays saturated past [`SERVER_BUSY_PATIENCE`], refuses the campaign,
/// or returns a payload that fails seed-schedule validation.
pub fn measure_via_server(
    addr: &str,
    trace: &randmod_sim::PackedTrace,
    platform: PlatformConfig,
    runs: usize,
    campaign_seed: u64,
) -> Result<ExecutionSample, ExperimentError> {
    let server_error = |detail: String| ExperimentError::Server { detail };
    let seeds = Campaign::new(platform, runs)
        .with_campaign_seed(campaign_seed)
        .seed_schedule();
    let spec = randmod_server::CampaignSpec {
        config: platform,
        campaign_seed,
        mode: randmod_server::SpecMode::Fixed(seeds.clone()),
        trace: trace.clone(),
    };
    let body = randmod_server::encode_spec(&spec);
    let mut client = randmod_server::Client::connect(addr)
        .map_err(|err| server_error(format!("{addr}: connect failed: {err}")))?;
    let deadline = std::time::Instant::now() + SERVER_BUSY_PATIENCE;
    loop {
        let response = client
            .post("/campaign", &body)
            .map_err(|err| server_error(format!("{addr}: submission failed: {err}")))?;
        match response.status {
            200 => {
                let runs = randmod_sim::decode_solo_runs(&response.body, &seeds).ok_or_else(
                    || {
                        server_error(format!(
                            "{addr}: response payload does not match the campaign's seed schedule"
                        ))
                    },
                )?;
                return Ok(ExecutionSample::from_cycles_iter(
                    runs.iter().map(|run| run.cycles),
                ));
            }
            429 => {
                if std::time::Instant::now() >= deadline {
                    return Err(server_error(format!(
                        "{addr}: still saturated after {}s of 429 backpressure",
                        SERVER_BUSY_PATIENCE.as_secs()
                    )));
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
            status => {
                return Err(server_error(format!(
                    "{addr}: campaign refused with status {status}: {}",
                    String::from_utf8_lossy(&response.body)
                )));
            }
        }
    }
}

/// Default shard count when `--checkpoint` asks for a resumable campaign
/// without an explicit `--shards`: enough shards that an interruption
/// loses at most a few percent of a long campaign, few enough that the
/// per-shard checkpoint rewrite stays negligible.
pub const DEFAULT_SHARDS: usize = 16;

/// Environment variable of the fault-injection smoke test: when set to
/// `N` (≥ 1), the process dies on the spot — no unwinding, no cleanup,
/// exactly as `kill -9` would — immediately after the `N`-th shard
/// checkpoint has persisted.
pub const KILL_AFTER_SHARD_ENV: &str = "RANDMOD_KILL_AFTER_SHARD";

/// The shard count the options imply: an explicit `--shards`, or
/// [`DEFAULT_SHARDS`] when `--checkpoint` requests a resumable campaign,
/// or `None` for the classic unsharded path (bit-identical either way —
/// that is the shard protocol's defining property).
pub fn sharding(options: &ExperimentOptions) -> Option<usize> {
    match (options.shards, options.checkpoint.as_deref()) {
        (Some(shards), _) => Some(shards),
        (None, Some(_)) => Some(DEFAULT_SHARDS),
        (None, None) => None,
    }
}

/// Opens the checkpoint store of a campaign: the file
/// `ckpt_<fingerprint>.bin` inside `dir` (the directory is created if
/// missing; the fingerprint in the name keeps concurrent experiments in
/// one directory from colliding).  Without `resume`, any existing file is
/// removed first so a re-run starts fresh instead of replaying stale
/// shards.
fn open_checkpoint_store(
    dir: &str,
    fingerprint: u64,
    resume: bool,
) -> Result<FileCheckpointStore, ExperimentError> {
    std::fs::create_dir_all(dir).map_err(|source| ExperimentError::Io {
        path: dir.to_string(),
        source,
    })?;
    let path = std::path::Path::new(dir).join(format!("ckpt_{fingerprint:016x}.bin"));
    let mut store = FileCheckpointStore::new(path);
    if !resume {
        store.clear()?;
    }
    Ok(store)
}

/// A store wrapper honouring [`KILL_AFTER_SHARD_ENV`] for the CI
/// fault-injection smoke test.
struct KillStore {
    inner: FileCheckpointStore,
    saves: usize,
    kill_after: usize,
}

impl CheckpointStore for KillStore {
    fn load(&mut self) -> Result<Option<Vec<u8>>, CheckpointError> {
        self.inner.load()
    }

    fn save(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        self.inner.save(bytes)?;
        self.saves += 1;
        if self.saves >= self.kill_after {
            eprintln!(
                "{KILL_AFTER_SHARD_ENV}: simulated crash after {} shard checkpoint(s)",
                self.saves
            );
            std::process::abort();
        }
        Ok(())
    }

    fn location(&self) -> String {
        self.inner.location()
    }
}

/// Boxes the store, arming the [`KILL_AFTER_SHARD_ENV`] crash hook when
/// the environment requests it.
fn with_kill_hook(store: FileCheckpointStore) -> Box<dyn CheckpointStore> {
    match std::env::var(KILL_AFTER_SHARD_ENV)
        .ok()
        .and_then(|value| value.parse::<usize>().ok())
    {
        Some(kill_after) if kill_after > 0 => Box::new(KillStore {
            inner: store,
            saves: 0,
            kill_after,
        }),
        _ => Box::new(store),
    }
}

/// Reports checkpoint diagnostics and resume progress on **stderr**, so
/// the CSV on stdout stays byte-identical to an uninterrupted run.
fn report_checkpoint_progress<R>(report: &ShardedReport<R>, location: &str) {
    for diagnostic in &report.diagnostics {
        eprintln!("checkpoint warning: {diagnostic}");
    }
    eprintln!(
        "checkpoint {location}: resumed {} shard(s), executed {} of {}",
        report.resumed, report.executed, report.shard_count
    );
}

/// Default run cap of adaptive campaigns (double the paper's fixed 1,000
/// runs, so a slow-to-stabilise scenario is detected rather than silently
/// under-sampled).
pub const DEFAULT_ADAPTIVE_MAX_RUNS: usize = 2_000;

/// Exceedance probability the convergence loop targets (the paper quotes
/// pWCET at 10⁻¹² per run alongside the 10⁻¹⁵ cutoff).
pub const ADAPTIVE_TARGET_PROBABILITY: f64 = 1e-12;

/// Block size of the adaptive refit loop.  Fixed, because blocks
/// accumulate incrementally and cannot be re-cut as the sample grows;
/// [`analyze_measurement`] analyses adaptive samples at this same block
/// size so the reported curve is the one whose stability the criterion
/// actually checked.
pub const ADAPTIVE_BLOCK_SIZE: usize = 25;

/// Builds the convergence criterion an experiment's `--adaptive` mode
/// uses: pWCET at 10⁻¹² tracked within `--target-cv` (default 1%) over
/// consecutive checkpoints, capped at `--max-runs`.  Quick mode shrinks
/// the floor, cadence and cap to smoke-test size.
pub fn convergence_criterion(options: &ExperimentOptions) -> ConvergenceCriterion {
    let max_runs = options
        .max_runs
        .unwrap_or(if options.quick { 40 } else { DEFAULT_ADAPTIVE_MAX_RUNS })
        .max(MIN_RUNS);
    let (min_runs, check_interval, stable_checkpoints) = if options.quick {
        (MIN_RUNS.min(max_runs), 10, 2)
    } else {
        (100.min(max_runs), 50, 3)
    };
    let mut criterion = ConvergenceCriterion::default()
        .with_target_probability(ADAPTIVE_TARGET_PROBABILITY)
        .with_block_size(ADAPTIVE_BLOCK_SIZE)
        .with_max_runs(max_runs)
        .with_min_runs(min_runs)
        .with_check_interval(check_interval)
        .with_stable_checkpoints(stable_checkpoints);
    if let Some(target_cv) = options.target_cv {
        criterion = criterion.with_relative_tolerance(target_cv);
    }
    criterion
}

/// How an adaptive campaign ended: the runs-to-convergence count and the
/// final state of the convergence loop, recorded next to the measured
/// sample so experiments can report it per benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveSummary {
    /// Number of runs the campaign needed.
    pub runs_used: usize,
    /// Whether the stopping rule was met before the run cap.
    pub converged: bool,
    /// Number of convergence checkpoints (Gumbel refits) taken.
    pub checkpoints: usize,
    /// Final pWCET estimate at [`ADAPTIVE_TARGET_PROBABILITY`].
    pub pwcet_estimate: f64,
}

impl AdaptiveSummary {
    fn from_result(result: &AdaptiveResult) -> Self {
        AdaptiveSummary {
            runs_used: result.runs_used(),
            converged: result.converged(),
            checkpoints: result.trajectory().len(),
            pwcet_estimate: result.pwcet_estimate(),
        }
    }
}

/// A measured execution-time sample plus, for adaptive campaigns, the
/// convergence record behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The execution-time observations, in campaign order.
    pub sample: ExecutionSample,
    /// The convergence record (`None` for fixed-run campaigns).
    pub adaptive: Option<AdaptiveSummary>,
}

/// [`measure_opts`] that honours `options.adaptive`, `options.shards`,
/// `options.checkpoint` and `options.server`: a fixed-run campaign by
/// default, the convergence-driven protocol (whose collected runs are a
/// bit-identical prefix of the fixed schedule) under `--adaptive`, the
/// sharded — optionally checkpointed and resumable — protocol
/// (bit-identical to the unsharded campaign) under
/// `--shards`/`--checkpoint`, or — for fixed-run campaigns under
/// `--server` — a submission to a running campaign server via
/// [`measure_via_server`] (bit-identical again: the server runs the same
/// engine over the same seed schedule).
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid,
/// the checkpoint directory cannot be created, the checkpoint store
/// fails or belongs to a different campaign, or — in client mode — the
/// campaign server fails (see [`measure_via_server`]).
pub fn measure_campaign(
    workload: &dyn Workload,
    l1_placement: PlacementKind,
    options: &ExperimentOptions,
    campaign_seed: u64,
) -> Result<Measurement, ExperimentError> {
    if !options.adaptive {
        if let Some(addr) = options.server.as_deref() {
            let trace = workload.packed_trace(&MemoryLayout::default());
            let sample = measure_via_server(
                addr,
                &trace,
                platform_with_l1(l1_placement),
                options.runs,
                campaign_seed,
            )?;
            return Ok(Measurement { sample, adaptive: None });
        }
        let sample = match sharding(options) {
            None => measure_opts(workload, l1_placement, options, campaign_seed)?,
            Some(shards) => {
                let trace = workload.packed_trace(&MemoryLayout::default());
                let campaign = campaign(
                    platform_with_l1(l1_placement),
                    options.runs,
                    campaign_seed,
                    options.threads,
                    options.lanes,
                );
                let result = match options.checkpoint.as_deref() {
                    None => campaign.run_sharded(&trace, shards)?,
                    Some(dir) => {
                        let fingerprint = campaign.default_sharded_fingerprint(&trace, shards);
                        let mut store =
                            with_kill_hook(open_checkpoint_store(dir, fingerprint, options.resume)?);
                        let report =
                            campaign.run_sharded_checkpointed(&trace, shards, store.as_mut())?;
                        report_checkpoint_progress(&report, &store.location());
                        report.result
                    }
                };
                ExecutionSample::from_cycles_iter(result.cycles_iter())
            }
        };
        return Ok(Measurement { sample, adaptive: None });
    }
    let trace = workload.packed_trace(&MemoryLayout::default());
    let criterion = convergence_criterion(options);
    let result = campaign(
        platform_with_l1(l1_placement),
        0,
        campaign_seed,
        options.threads,
        options.lanes,
    )
    .run_adaptive(&trace, &criterion)?;
    Ok(Measurement {
        sample: ExecutionSample::from_cycles_iter(result.result().cycles_iter()),
        adaptive: Some(AdaptiveSummary::from_result(&result)),
    })
}

/// The contention platform of the `fig6_contention` experiment: the
/// placement policy under test at the **shared L2**, Random Modulo kept in
/// every task's L1s (the paper's design point), random replacement
/// everywhere.  The sweep isolates how the shared level's placement policy
/// shapes victim pWCET under co-runner pressure.
pub fn contention_platform(l2_placement: PlacementKind) -> PlatformConfig {
    PlatformConfig::leon3()
        .with_l1_placement(PlacementKind::RandomModulo)
        .with_l2_placement(l2_placement)
}

/// A contended campaign's extracted samples: one [`ExecutionSample`] per
/// task (victim first), plus the convergence record of an adaptive run.
#[derive(Debug, Clone, PartialEq)]
pub struct ContendedMeasurement {
    /// Per-task execution-time samples, task 0 (the victim) first.
    pub per_task: Vec<ExecutionSample>,
    /// The convergence record (`None` for fixed-run campaigns).
    pub adaptive: Option<AdaptiveSummary>,
}

impl ContendedMeasurement {
    /// The victim's (task 0's) sample.
    pub fn victim(&self) -> &ExecutionSample {
        &self.per_task[0]
    }
}

impl AdaptiveSummary {
    fn from_contended(result: &ContendedAdaptiveResult) -> Self {
        AdaptiveSummary {
            runs_used: result.runs_used(),
            converged: result.converged(),
            checkpoints: result.trajectory().len(),
            pwcet_estimate: result.pwcet_estimate(),
        }
    }
}

/// Runs a contended (shared-L2) campaign for one co-schedule and splits
/// the result into per-task samples.  Honours `options.adaptive`: a
/// fixed-run schedule by default, or the convergence-driven protocol on
/// the victim's pWCET (whose collected runs are a bit-identical prefix of
/// the fixed schedule) under `--adaptive`.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid,
/// the checkpoint directory cannot be created, or the checkpoint store
/// fails or belongs to a different campaign.
pub fn measure_contended<W: Workload>(
    schedule: &CoSchedule<W>,
    l2_placement: PlacementKind,
    options: &ExperimentOptions,
    campaign_seed: u64,
) -> Result<ContendedMeasurement, ExperimentError> {
    let sources = schedule.packed_traces(&MemoryLayout::default());
    let tasks = sources.len();
    let campaign = campaign(
        contention_platform(l2_placement),
        options.runs,
        campaign_seed,
        options.threads,
        options.lanes,
    );
    let (result, adaptive) = if options.adaptive {
        let criterion = convergence_criterion(options);
        let adaptive = campaign.run_contended_adaptive(&sources, &criterion)?;
        let summary = AdaptiveSummary::from_contended(&adaptive);
        (adaptive.result().clone(), Some(summary))
    } else if let Some(shards) = sharding(options) {
        let result = match options.checkpoint.as_deref() {
            None => campaign.run_contended_sharded_campaign(&sources, shards)?,
            Some(dir) => {
                let fingerprint = campaign.contended_sharded_fingerprint(
                    &sources,
                    &campaign.seed_schedule(),
                    shards,
                );
                let mut store =
                    with_kill_hook(open_checkpoint_store(dir, fingerprint, options.resume)?);
                let report =
                    campaign.run_contended_sharded_checkpointed(&sources, shards, store.as_mut())?;
                report_checkpoint_progress(&report, &store.location());
                report.result
            }
        };
        (result, None)
    } else {
        (campaign.run_contended_campaign(&sources)?, None)
    };
    Ok(ContendedMeasurement {
        per_task: ExecutionSample::split_interleaved(result.flat_cycles_iter(), tasks),
        adaptive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use randmod_workloads::SyntheticKernel;

    #[test]
    fn measure_produces_requested_runs() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 3);
        let sample = measure(&kernel, PlacementKind::RandomModulo, 12, 1, None, None).unwrap();
        assert_eq!(sample.len(), 12);
        assert!(sample.min() > 0);
    }

    #[test]
    fn thread_override_does_not_change_the_sample() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 3);
        let default_threads =
            measure(&kernel, PlacementKind::RandomModulo, 10, 2, None, None).unwrap();
        let one_thread =
            measure(&kernel, PlacementKind::RandomModulo, 10, 2, Some(1), None).unwrap();
        let four_threads =
            measure(&kernel, PlacementKind::RandomModulo, 10, 2, Some(4), None).unwrap();
        assert_eq!(default_threads, one_thread);
        assert_eq!(default_threads, four_threads);
    }

    #[test]
    fn lane_override_does_not_change_the_sample() {
        // --lanes is a throughput knob: any lane count (including the
        // sequential escape hatch) reproduces the same sample.
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 3);
        let default_lanes =
            measure(&kernel, PlacementKind::RandomModulo, 10, 2, None, None).unwrap();
        let sequential =
            measure(&kernel, PlacementKind::RandomModulo, 10, 2, None, Some(1)).unwrap();
        let five_lanes =
            measure(&kernel, PlacementKind::RandomModulo, 10, 2, None, Some(5)).unwrap();
        assert_eq!(default_lanes, sequential);
        assert_eq!(default_lanes, five_lanes);
    }

    #[test]
    fn platform_uses_hrp_in_l2() {
        let platform = platform_with_l1(PlacementKind::RandomModulo);
        assert_eq!(platform.il1.placement, PlacementKind::RandomModulo);
        assert_eq!(platform.l2.placement, PlacementKind::HashRandom);
    }

    #[test]
    fn deterministic_sweep_runs_once_per_layout() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        let sample = measure_deterministic_sweep(&kernel, 6, None).unwrap();
        assert_eq!(sample.len(), 6);
    }

    #[test]
    fn streamed_sweep_matches_the_collected_protocol() {
        use randmod_sim::Trace;
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        let streamed = measure_deterministic_sweep(&kernel, 5, Some(2)).unwrap();
        // The pre-streaming protocol: collect every layout's boxed trace,
        // then sweep.
        let traces: Vec<Trace> = LayoutSweep::new(5)
            .iter()
            .map(|layout| kernel.trace(&layout))
            .collect();
        let collected = Campaign::new(PlatformConfig::leon3_deterministic(), 0)
            .run_layout_sweep(&traces)
            .unwrap();
        assert_eq!(
            streamed,
            ExecutionSample::from_cycles_iter(collected.cycles_iter())
        );
    }

    #[test]
    fn measure_opts_applies_runs_and_threads() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        let options = crate::cli::ExperimentOptions::default()
            .with_runs(8)
            .with_threads(2)
            .with_lanes(4);
        let sample = measure_opts(&kernel, PlacementKind::RandomModulo, &options, 3).unwrap();
        assert_eq!(sample.len(), 8);
    }

    #[test]
    fn contended_solo_measurement_matches_the_single_task_protocol() {
        use randmod_workloads::CoSchedule;
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        let schedule = CoSchedule::pressure_level(kernel, 0); // idle opponent
        let options = crate::cli::ExperimentOptions::default().with_runs(MIN_RUNS);
        let measurement =
            measure_contended(&schedule, PlacementKind::RandomModulo, &options, 5).unwrap();
        assert!(measurement.adaptive.is_none());
        assert_eq!(measurement.per_task.len(), 2);
        // The victim sample is bit-identical to the solo protocol on the
        // same platform; the idle opponent contributes all-zero cycles.
        let trace = kernel.packed_trace(&MemoryLayout::default());
        let solo = measure_source(
            &trace,
            contention_platform(PlacementKind::RandomModulo),
            MIN_RUNS,
            5,
            None,
            None,
        )
        .unwrap();
        assert_eq!(measurement.victim(), &solo);
        assert!(measurement.per_task[1].values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn contended_lane_override_does_not_change_the_sample() {
        use randmod_workloads::CoSchedule;
        // --lanes on a contended campaign switches between the scalar
        // engine (1), partial batches and full lane groups; every setting
        // must reproduce the same per-task samples bit for bit.
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        let schedule = CoSchedule::pressure_level(kernel, 2);
        let measure_with = |lanes: Option<usize>| {
            let mut options = crate::cli::ExperimentOptions::default().with_runs(10);
            if let Some(lanes) = lanes {
                options = options.with_lanes(lanes);
            }
            measure_contended(&schedule, PlacementKind::HashRandom, &options, 7).unwrap()
        };
        let default_lanes = measure_with(None);
        assert_eq!(default_lanes, measure_with(Some(1)));
        assert_eq!(default_lanes, measure_with(Some(3)));
        assert_eq!(default_lanes, measure_with(Some(16)));
    }

    #[test]
    fn contended_adaptive_measurement_is_a_prefix_of_the_fixed_schedule() {
        use randmod_workloads::CoSchedule;
        let kernel = SyntheticKernel::with_traversals(20 * 1024, 3);
        let schedule = CoSchedule::pressure_level(kernel, 2);
        let options = crate::cli::ExperimentOptions::default()
            .with_adaptive()
            .with_max_runs(60)
            .with_target_cv(0.1);
        let adaptive =
            measure_contended(&schedule, PlacementKind::HashRandom, &options, 11).unwrap();
        let summary = adaptive.adaptive.clone().expect("adaptive summary missing");
        assert_eq!(summary.runs_used, adaptive.victim().len());
        let fixed = measure_contended(
            &schedule,
            PlacementKind::HashRandom,
            &crate::cli::ExperimentOptions::default().with_runs(summary.runs_used),
            11,
        )
        .unwrap();
        assert_eq!(adaptive.per_task, fixed.per_task);
    }

    #[test]
    fn sharding_follows_the_options() {
        let options = crate::cli::ExperimentOptions::default();
        assert_eq!(sharding(&options), None);
        assert_eq!(sharding(&options.clone().with_shards(6)), Some(6));
        assert_eq!(
            sharding(&options.clone().with_checkpoint("/tmp/x")),
            Some(DEFAULT_SHARDS)
        );
        assert_eq!(
            sharding(&options.with_shards(3).with_checkpoint("/tmp/x")),
            Some(3)
        );
    }

    #[test]
    fn sharded_measurement_is_bit_identical_to_the_unsharded_one() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        let options = crate::cli::ExperimentOptions::default().with_runs(12);
        let reference =
            measure_campaign(&kernel, PlacementKind::RandomModulo, &options, 5).unwrap();
        for shards in [1, 3, 5] {
            let sharded = measure_campaign(
                &kernel,
                PlacementKind::RandomModulo,
                &options.clone().with_shards(shards),
                5,
            )
            .unwrap();
            assert_eq!(sharded, reference, "shards={shards}");
        }
    }

    #[test]
    fn checkpointed_measurement_round_trips_through_the_store() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        let dir = std::env::temp_dir().join(format!(
            "randmod-runner-ckpt-test-{}",
            std::process::id()
        ));
        let dir_str = dir.to_str().unwrap().to_string();
        let options = crate::cli::ExperimentOptions::default()
            .with_runs(12)
            .with_shards(4)
            .with_checkpoint(dir_str.clone());
        let reference = measure_campaign(
            &kernel,
            PlacementKind::RandomModulo,
            &crate::cli::ExperimentOptions::default().with_runs(12),
            7,
        )
        .unwrap();
        // Fresh run populates the store and matches the unsharded result.
        let fresh = measure_campaign(&kernel, PlacementKind::RandomModulo, &options, 7).unwrap();
        assert_eq!(fresh, reference);
        // Resume replays every shard from the store — still bit-identical.
        let resumed = measure_campaign(
            &kernel,
            PlacementKind::RandomModulo,
            &options.clone().with_resume(),
            7,
        )
        .unwrap();
        assert_eq!(resumed, reference);
        // The contended driver shares the store plumbing.
        let schedule = CoSchedule::pressure_level(kernel, 1);
        let contended_options = crate::cli::ExperimentOptions::default()
            .with_runs(10)
            .with_shards(3)
            .with_checkpoint(dir_str);
        let contended_ref = measure_contended(
            &schedule,
            PlacementKind::HashRandom,
            &crate::cli::ExperimentOptions::default().with_runs(10),
            7,
        )
        .unwrap();
        let contended = measure_contended(
            &schedule,
            PlacementKind::HashRandom,
            &contended_options,
            7,
        )
        .unwrap();
        assert_eq!(contended, contended_ref);
        let contended_resumed = measure_contended(
            &schedule,
            PlacementKind::HashRandom,
            &contended_options.with_resume(),
            7,
        )
        .unwrap();
        assert_eq!(contended_resumed, contended_ref);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn an_uncreatable_checkpoint_directory_is_a_contextual_error() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        // A path under a regular *file* cannot be created as a directory.
        let blocker = std::env::temp_dir().join(format!(
            "randmod-runner-blocker-{}",
            std::process::id()
        ));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let dir = blocker.join("nested");
        let options = crate::cli::ExperimentOptions::default()
            .with_runs(12)
            .with_checkpoint(dir.to_str().unwrap());
        let err = measure_campaign(&kernel, PlacementKind::RandomModulo, &options, 7).unwrap_err();
        assert!(
            matches!(err, ExperimentError::Io { .. }),
            "expected an Io error, got {err}"
        );
        assert!(err.to_string().contains("nested"), "{err}");
        std::fs::remove_file(&blocker).unwrap();
    }

    #[test]
    fn analyze_adapts_block_size_to_sample_length() {
        let cycles: Vec<u64> = (0..200).map(|i| 10_000 + (i * 31) % 400).collect();
        let report = analyze(&ExecutionSample::from_cycles(&cycles));
        assert_eq!(report.curve.block_size(), 10);
        assert_eq!(report.runs, 200);
    }

    #[test]
    fn convergence_criterion_follows_the_options() {
        let defaults = convergence_criterion(&crate::cli::ExperimentOptions::default());
        assert_eq!(defaults.max_runs, DEFAULT_ADAPTIVE_MAX_RUNS);
        assert_eq!(defaults.min_runs, 100);
        assert_eq!(defaults.target_probability, ADAPTIVE_TARGET_PROBABILITY);
        let tuned = convergence_criterion(
            &crate::cli::ExperimentOptions::default()
                .with_max_runs(600)
                .with_target_cv(0.05),
        );
        assert_eq!(tuned.max_runs, 600);
        assert_eq!(tuned.relative_tolerance, 0.05);
        let quick = convergence_criterion(&crate::cli::ExperimentOptions::parse(["--quick"]));
        assert_eq!(quick.max_runs, 40);
        assert!(quick.min_runs <= quick.max_runs);
    }

    #[test]
    fn measure_campaign_without_adaptive_matches_measure_opts() {
        let kernel = SyntheticKernel::with_traversals(4 * 1024, 2);
        let options = crate::cli::ExperimentOptions::default().with_runs(10);
        let measurement =
            measure_campaign(&kernel, PlacementKind::RandomModulo, &options, 5).unwrap();
        assert!(measurement.adaptive.is_none());
        assert_eq!(
            measurement.sample,
            measure_opts(&kernel, PlacementKind::RandomModulo, &options, 5).unwrap()
        );
    }

    #[test]
    fn adaptive_measurement_is_a_prefix_of_the_fixed_campaign() {
        let kernel = SyntheticKernel::with_traversals(20 * 1024, 3);
        let options = crate::cli::ExperimentOptions::default()
            .with_adaptive()
            .with_max_runs(200)
            .with_target_cv(0.05);
        let measurement =
            measure_campaign(&kernel, PlacementKind::RandomModulo, &options, 9).unwrap();
        let summary = measurement.adaptive.expect("adaptive summary missing");
        assert_eq!(summary.runs_used, measurement.sample.len());
        assert!(summary.checkpoints >= 1);
        // The adaptive sample is exactly the first N observations of the
        // fixed-run campaign with the same seed.
        let fixed = measure(
            &kernel,
            PlacementKind::RandomModulo,
            summary.runs_used,
            9,
            None,
            None,
        )
        .unwrap();
        assert_eq!(measurement.sample, fixed);
    }

    #[test]
    fn adaptive_converges_within_one_percent_of_the_fixed_1000_run_value() {
        use randmod_workloads::EembcBenchmark;
        // The acceptance scenario: a low-variance EEMBC-like benchmark
        // under RM converges with far fewer runs than the paper's fixed
        // 1,000 while agreeing with the fixed-campaign pWCET at 1e-12.
        let benchmark = EembcBenchmark::A2time;
        let options = crate::cli::ExperimentOptions::default().with_adaptive();
        let measurement =
            measure_campaign(&benchmark, PlacementKind::RandomModulo, &options, 42).unwrap();
        let summary = measurement.adaptive.expect("adaptive summary missing");
        assert!(summary.converged, "adaptive campaign hit the run cap");
        assert!(
            summary.runs_used < 1000,
            "expected measurably fewer runs than the paper's 1,000, used {}",
            summary.runs_used
        );
        // Fixed-1000 reference, same seed stream, same block size as the
        // adaptive refit loop.
        let fixed = measure(&benchmark, PlacementKind::RandomModulo, 1000, 42, None, None).unwrap();
        let fixed_pwcet = randmod_mbpta::PwcetCurve::fit(&fixed, ADAPTIVE_BLOCK_SIZE)
            .pwcet(ADAPTIVE_TARGET_PROBABILITY);
        let delta = (summary.pwcet_estimate - fixed_pwcet).abs() / fixed_pwcet;
        assert!(
            delta <= 0.01,
            "adaptive pWCET {} vs fixed-1000 pWCET {} differ by {:.3}%",
            summary.pwcet_estimate,
            fixed_pwcet,
            delta * 100.0
        );
    }
}
