//! Section 4.4 (text): average performance of Random Modulo versus
//! conventional modulo placement.
//!
//! The paper reports that RM's average execution time is only 1.6% worse
//! than modulo placement on average across the EEMBC suite, with a maximum
//! degradation of 8% — i.e. the MBPTA compliance comes at essentially no
//! average-performance cost.

use crate::cli::ExperimentOptions;
use crate::runner;
use crate::error::ExperimentError;
use randmod_core::{PlacementKind, ReplacementKind};
use randmod_sim::PlatformConfig;
use randmod_workloads::{EembcBenchmark, MemoryLayout, Workload};
use std::fmt;

/// One row of the average-performance comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvgPerformanceRow {
    /// The benchmark.
    pub benchmark: EembcBenchmark,
    /// Mean execution time with RM placement (random replacement), cycles.
    pub rm_mean_cycles: f64,
    /// Execution time with modulo placement and LRU replacement, cycles.
    pub modulo_cycles: f64,
    /// Number of RM runs behind the mean (`--runs`, or the benchmark's
    /// runs-to-convergence count under `--adaptive`).
    pub rm_runs: usize,
    /// Whether the adaptive RM campaign converged before its run cap
    /// (`None` without `--adaptive`).
    pub rm_converged: Option<bool>,
}

impl AvgPerformanceRow {
    /// Relative degradation of RM over modulo (positive means RM is slower).
    pub fn degradation(&self) -> f64 {
        self.rm_mean_cycles / self.modulo_cycles - 1.0
    }
}

impl fmt::Display for AvgPerformanceRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<7}  RM mean {:>12.0}  modulo {:>12.0}  degradation {:>6.2}%",
            self.benchmark.label(),
            self.rm_mean_cycles,
            self.modulo_cycles,
            self.degradation() * 100.0
        )
    }
}

/// Summary over the rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvgPerformanceSummary {
    /// Mean degradation across benchmarks (paper: 1.6%).
    pub mean_degradation: f64,
    /// Maximum degradation (paper: 8%).
    pub max_degradation: f64,
}

/// Computes the summary over the rows.
pub fn summarize(rows: &[AvgPerformanceRow]) -> AvgPerformanceSummary {
    let degradations: Vec<f64> = rows.iter().map(AvgPerformanceRow::degradation).collect();
    AvgPerformanceSummary {
        mean_degradation: degradations.iter().sum::<f64>() / degradations.len().max(1) as f64,
        max_degradation: degradations.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Computes one row: the benchmark's mean execution time over
/// `options.runs` RM runs against a single run on the conventional
/// deterministic platform.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn row_for(
    benchmark: EembcBenchmark,
    options: &ExperimentOptions,
) -> Result<AvgPerformanceRow, ExperimentError> {
    let rm_measurement = runner::measure_campaign(
        &benchmark,
        PlacementKind::RandomModulo,
        options,
        options.campaign_seed,
    )?;
    let rm_sample = &rm_measurement.sample;
    // The modulo baseline keeps random replacement (as the LEON-family
    // caches the paper builds on do), so the comparison isolates the effect
    // of the placement function; one run suffices per layout since modulo
    // placement ignores the seed and the replacement draws average out.
    let trace = benchmark.packed_trace(&MemoryLayout::default());
    let deterministic =
        PlatformConfig::leon3_deterministic().with_replacement(ReplacementKind::Random);
    let result = runner::campaign(deterministic, 0, 0, options.threads, options.lanes)
        .run_seeds(&trace, &[0])?;
    Ok(AvgPerformanceRow {
        benchmark,
        rm_mean_cycles: rm_sample.mean(),
        modulo_cycles: result.runs()[0].cycles as f64,
        rm_runs: rm_sample.len(),
        rm_converged: rm_measurement.adaptive.as_ref().map(|a| a.converged),
    })
}

/// Computes every row of the comparison.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn generate(options: &ExperimentOptions) -> Result<Vec<AvgPerformanceRow>, ExperimentError> {
    EembcBenchmark::ALL
        .iter()
        .map(|&benchmark| row_for(benchmark, options))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rm_average_performance_is_close_to_modulo_for_a_small_kernel() {
        let options = ExperimentOptions::default().with_runs(60).with_campaign_seed(4);
        let row = row_for(EembcBenchmark::Rspeed, &options).unwrap();
        assert_eq!(row.rm_runs, 60);
        assert_eq!(row.rm_converged, None);
        assert!(row.rm_mean_cycles > 0.0 && row.modulo_cycles > 0.0);
        // rspeed fits comfortably in the L1: RM should be within ~15% of
        // modulo even with a reduced run count.
        assert!(
            row.degradation().abs() < 0.15,
            "unexpected degradation: {row}"
        );
    }

    #[test]
    fn an_adaptive_row_records_the_convergence_outcome() {
        let options = ExperimentOptions::default()
            .with_campaign_seed(4)
            .with_adaptive()
            .with_max_runs(120);
        let row = row_for(EembcBenchmark::Rspeed, &options).unwrap();
        assert_eq!(row.rm_converged, Some(true));
        assert!(row.rm_runs <= 120);
    }

    #[test]
    fn summary_mean_and_max() {
        let rows = vec![
            AvgPerformanceRow {
                benchmark: EembcBenchmark::A2time,
                rm_mean_cycles: 102.0,
                modulo_cycles: 100.0,
                rm_runs: 60,
                rm_converged: None,
            },
            AvgPerformanceRow {
                benchmark: EembcBenchmark::Matrix,
                rm_mean_cycles: 108.0,
                modulo_cycles: 100.0,
                rm_runs: 60,
                rm_converged: None,
            },
        ];
        let summary = summarize(&rows);
        assert!((summary.mean_degradation - 0.05).abs() < 1e-12);
        assert!((summary.max_degradation - 0.08).abs() < 1e-12);
        assert!(rows[0].to_string().contains("a2time"));
    }
}
