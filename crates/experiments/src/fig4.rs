//! Figure 4: pWCET estimates of Random Modulo versus hash-based random
//! placement (a) and versus the deterministic high-water-mark practice (b).
//!
//! Figure 4(a): for every EEMBC benchmark, the pWCET at an exceedance
//! probability of 10⁻¹⁵ is computed for two hardware setups — IL1/DL1 with
//! hRP, and IL1/DL1 with RM (the L2 keeps hRP in both) — and the RM value is
//! normalised to the hRP one.  The paper reports RM pWCETs 25–62% tighter,
//! 43% on average.
//!
//! Figure 4(b): the RM pWCET is normalised to the high-water mark obtained
//! on a fully deterministic platform (modulo placement, LRU) across a sweep
//! of memory layouts.  The paper reports RM pWCETs never more than 7% above
//! the hwm, and below 1% for most benchmarks.

use crate::cli::ExperimentOptions;
use crate::runner;
use crate::error::ExperimentError;
use randmod_core::PlacementKind;
use randmod_mbpta::HighWaterMark;
use randmod_workloads::EembcBenchmark;
use std::fmt;

/// The exceedance probability used by Figure 4 (valid for the highest
/// criticality levels in automotive and avionics).
pub const CUTOFF_PROBABILITY: f64 = 1e-15;

/// Number of memory layouts swept on the deterministic platform for
/// Figure 4(b).
pub const FIG4B_LAYOUTS: usize = 32;

/// Reduced layout-sweep size used under `--quick`.
pub const FIG4B_QUICK_LAYOUTS: usize = 8;

/// The Figure 4(b) layout-sweep size for the given mode, shared by the
/// `fig4b_rm_vs_det` and `run_all` binaries.
pub fn fig4b_layouts(quick: bool) -> usize {
    if quick {
        FIG4B_QUICK_LAYOUTS
    } else {
        FIG4B_LAYOUTS
    }
}

/// One bar of Figure 4(a).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4aRow {
    /// The benchmark.
    pub benchmark: EembcBenchmark,
    /// pWCET at 10⁻¹⁵ with RM in the L1 caches.
    pub pwcet_rm: f64,
    /// pWCET at 10⁻¹⁵ with hRP in the L1 caches.
    pub pwcet_hrp: f64,
}

impl Fig4aRow {
    /// RM pWCET normalised to hRP (below 1.0 means RM is tighter).
    pub fn normalized(&self) -> f64 {
        self.pwcet_rm / self.pwcet_hrp
    }

    /// The relative tightening RM achieves over hRP (the quantity the paper
    /// reports as "X% tighter").
    pub fn tightening(&self) -> f64 {
        1.0 - self.normalized()
    }
}

impl fmt::Display for Fig4aRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<7}  RM {:>12.0}  hRP {:>12.0}  RM/hRP {:>5.2}  ({:>4.1}% tighter)",
            self.benchmark.label(),
            self.pwcet_rm,
            self.pwcet_hrp,
            self.normalized(),
            self.tightening() * 100.0
        )
    }
}

/// One bar of Figure 4(b).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4bRow {
    /// The benchmark.
    pub benchmark: EembcBenchmark,
    /// pWCET at 10⁻¹⁵ with RM in the L1 caches.
    pub pwcet_rm: f64,
    /// High-water mark on the deterministic platform across the layout
    /// sweep.
    pub deterministic_hwm: HighWaterMark,
}

impl Fig4bRow {
    /// RM pWCET normalised to the deterministic high-water mark.
    pub fn normalized(&self) -> f64 {
        self.deterministic_hwm.ratio_of(self.pwcet_rm)
    }
}

impl fmt::Display for Fig4bRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<7}  RM pWCET {:>12.0}  det. hwm {:>12}  ratio {:>5.3}",
            self.benchmark.label(),
            self.pwcet_rm,
            self.deterministic_hwm.value(),
            self.normalized()
        )
    }
}

/// Summary statistics over the Figure 4(a) rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4aSummary {
    /// Mean tightening across benchmarks (the paper reports 43%).
    pub mean_tightening: f64,
    /// Largest tightening (the paper reports 62%, for a2time).
    pub max_tightening: f64,
    /// Smallest tightening (the paper reports 25%, for pntrch).
    pub min_tightening: f64,
}

/// Computes the Figure 4(a) summary from its rows.
pub fn summarize_fig4a(rows: &[Fig4aRow]) -> Fig4aSummary {
    let tightenings: Vec<f64> = rows.iter().map(Fig4aRow::tightening).collect();
    let mean = tightenings.iter().sum::<f64>() / tightenings.len().max(1) as f64;
    Fig4aSummary {
        mean_tightening: mean,
        max_tightening: tightenings.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        min_tightening: tightenings.iter().cloned().fold(f64::INFINITY, f64::min),
    }
}

/// Computes one Figure 4(a) row.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn fig4a_row(
    benchmark: EembcBenchmark,
    options: &ExperimentOptions,
) -> Result<Fig4aRow, ExperimentError> {
    let seed = options.campaign_seed ^ (benchmark.initials().as_bytes()[1] as u64) << 8;
    let rm_sample = runner::measure_opts(&benchmark, PlacementKind::RandomModulo, options, seed)?;
    let hrp_sample = runner::measure_opts(&benchmark, PlacementKind::HashRandom, options, seed)?;
    Ok(Fig4aRow {
        benchmark,
        pwcet_rm: runner::analyze(&rm_sample).pwcet_at(CUTOFF_PROBABILITY),
        pwcet_hrp: runner::analyze(&hrp_sample).pwcet_at(CUTOFF_PROBABILITY),
    })
}

/// Computes every Figure 4(a) row.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn fig4a(options: &ExperimentOptions) -> Result<Vec<Fig4aRow>, ExperimentError> {
    EembcBenchmark::ALL
        .iter()
        .map(|&benchmark| fig4a_row(benchmark, options))
        .collect()
}

/// Computes one Figure 4(b) row, using `layouts` memory layouts for the
/// deterministic sweep.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn fig4b_row(
    benchmark: EembcBenchmark,
    layouts: usize,
    options: &ExperimentOptions,
) -> Result<Fig4bRow, ExperimentError> {
    let seed = options.campaign_seed ^ (benchmark.initials().as_bytes()[0] as u64) << 16;
    let rm_sample = runner::measure_opts(&benchmark, PlacementKind::RandomModulo, options, seed)?;
    let det_sample = runner::measure_deterministic_sweep(&benchmark, layouts, options.threads)?;
    Ok(Fig4bRow {
        benchmark,
        pwcet_rm: runner::analyze(&rm_sample).pwcet_at(CUTOFF_PROBABILITY),
        deterministic_hwm: HighWaterMark::from_sample(&det_sample),
    })
}

/// Computes every Figure 4(b) row.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn fig4b(layouts: usize, options: &ExperimentOptions) -> Result<Vec<Fig4bRow>, ExperimentError> {
    EembcBenchmark::ALL
        .iter()
        .map(|&benchmark| fig4b_row(benchmark, layouts, options))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_row_shows_rm_no_worse_than_hrp_for_a_cache_stressing_benchmark() {
        // cacheb stresses the caches the most, where the RM advantage is
        // clearest even with a reduced run count.
        let options = ExperimentOptions::default().with_runs(120).with_campaign_seed(5);
        let row = fig4a_row(EembcBenchmark::Cacheb, &options).unwrap();
        assert!(row.pwcet_rm > 0.0 && row.pwcet_hrp > 0.0);
        assert!(
            row.normalized() < 1.05,
            "RM pWCET should not be meaningfully above hRP: {row}"
        );
    }

    #[test]
    fn fig4b_row_ratio_is_close_to_one() {
        let options = ExperimentOptions::default().with_runs(120).with_campaign_seed(5);
        let row = fig4b_row(EembcBenchmark::Rspeed, 8, &options).unwrap();
        assert!(row.deterministic_hwm.value() > 0);
        // RM pWCET should be within a few tens of percent of the
        // deterministic hwm even with reduced runs.
        assert!(row.normalized() > 0.8 && row.normalized() < 1.5, "{row}");
    }

    #[test]
    fn summary_computes_mean_and_extremes() {
        let rows = vec![
            Fig4aRow {
                benchmark: EembcBenchmark::A2time,
                pwcet_rm: 40.0,
                pwcet_hrp: 100.0,
            },
            Fig4aRow {
                benchmark: EembcBenchmark::Pntrch,
                pwcet_rm: 80.0,
                pwcet_hrp: 100.0,
            },
        ];
        let summary = summarize_fig4a(&rows);
        assert!((summary.mean_tightening - 0.4).abs() < 1e-12);
        assert!((summary.max_tightening - 0.6).abs() < 1e-12);
        assert!((summary.min_tightening - 0.2).abs() < 1e-12);
        assert!(rows[0].to_string().contains("a2time"));
    }
}
