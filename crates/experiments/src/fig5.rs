//! Figure 5: execution-time distributions and pWCET curves of the synthetic
//! kernel, plus the footprint sensitivity discussed in the text.
//!
//! Figure 5(a)(b) are the probability density functions of the execution
//! times of the 20KB-footprint synthetic kernel under RM and under hRP: RM
//! shows a tight distribution while hRP exhibits a long tail of runs whose
//! layouts map many lines to few sets.  Figure 5(c) overlays the resulting
//! pWCET curves.  The text further notes that the effect shrinks for the
//! 8KB footprint (fits in L1) and remains prominent for 160KB (exceeds the
//! L2 partition).

use crate::cli::ExperimentOptions;
use crate::runner;
use crate::error::ExperimentError;
use randmod_core::PlacementKind;
use randmod_mbpta::{ExecutionSample, Histogram, PwcetCurve};
use randmod_workloads::{EembcStress, SyntheticKernel, Workload};
use std::fmt;

/// The comparison of the two placement policies for one footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    /// The kernel (footprint/traversals) that was measured.
    pub kernel: SyntheticKernel,
    /// Execution-time sample under Random Modulo.
    pub rm_sample: ExecutionSample,
    /// Execution-time sample under hash-based random placement.
    pub hrp_sample: ExecutionSample,
    /// Histogram of the RM sample (Figure 5(a)).
    pub rm_histogram: Histogram,
    /// Histogram of the hRP sample (Figure 5(b)).
    pub hrp_histogram: Histogram,
    /// pWCET at 10⁻¹⁵ under RM (one point of Figure 5(c)).
    pub rm_pwcet: f64,
    /// pWCET at 10⁻¹⁵ under hRP (one point of Figure 5(c)).
    pub hrp_pwcet: f64,
    /// The full RM pWCET curve, `(probability, bound)` pairs.
    pub rm_curve: Vec<(f64, f64)>,
    /// The full hRP pWCET curve, `(probability, bound)` pairs.
    pub hrp_curve: Vec<(f64, f64)>,
}

/// The hRP-over-RM execution-time spread ratio (max - min, clamped to at
/// least one cycle): the quantitative form of "RM shows much lower
/// variability".
fn spread_ratio_of(rm_sample: &ExecutionSample, hrp_sample: &ExecutionSample) -> f64 {
    let rm_spread = (rm_sample.max() - rm_sample.min()).max(1) as f64;
    let hrp_spread = (hrp_sample.max() - hrp_sample.min()).max(1) as f64;
    hrp_spread / rm_spread
}

/// Formats the shared RM-vs-hRP comparison block of the Figure 5 results.
fn write_comparison(
    f: &mut fmt::Formatter<'_>,
    rm_sample: &ExecutionSample,
    hrp_sample: &ExecutionSample,
    rm_pwcet: f64,
    hrp_pwcet: f64,
) -> fmt::Result {
    writeln!(
        f,
        "  RM : min {:>10} max {:>10} pWCET(1e-15) {:>12.0}",
        rm_sample.min(),
        rm_sample.max(),
        rm_pwcet
    )?;
    writeln!(
        f,
        "  hRP: min {:>10} max {:>10} pWCET(1e-15) {:>12.0}",
        hrp_sample.min(),
        hrp_sample.max(),
        hrp_pwcet
    )?;
    writeln!(
        f,
        "  hRP/RM spread ratio: {:.2}",
        spread_ratio_of(rm_sample, hrp_sample)
    )
}

impl Fig5Result {
    /// The ratio of the hRP execution-time spread (max - min) to the RM
    /// spread: the quantitative form of "RM shows much lower variability".
    pub fn spread_ratio(&self) -> f64 {
        spread_ratio_of(&self.rm_sample, &self.hrp_sample)
    }
}

impl fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.kernel)?;
        write_comparison(f, &self.rm_sample, &self.hrp_sample, self.rm_pwcet, self.hrp_pwcet)
    }
}

/// Number of histogram bins used for the Figure 5 PDFs.
pub const HISTOGRAM_BINS: usize = 40;

/// Runs the Figure 5 experiment for one kernel footprint.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn compare(kernel: SyntheticKernel, options: &ExperimentOptions) -> Result<Fig5Result, ExperimentError> {
    let seed = options.campaign_seed ^ kernel.footprint_bytes();
    let rm_sample = runner::measure_opts(&kernel, PlacementKind::RandomModulo, options, seed)?;
    let hrp_sample = runner::measure_opts(&kernel, PlacementKind::HashRandom, options, seed)?;
    let rm_report = runner::analyze(&rm_sample);
    let hrp_report = runner::analyze(&hrp_sample);
    let probabilities = PwcetCurve::standard_probabilities();
    Ok(Fig5Result {
        kernel,
        rm_histogram: Histogram::from_sample(&rm_sample, HISTOGRAM_BINS),
        hrp_histogram: Histogram::from_sample(&hrp_sample, HISTOGRAM_BINS),
        rm_pwcet: rm_report.pwcet_at(1e-15),
        hrp_pwcet: hrp_report.pwcet_at(1e-15),
        rm_curve: rm_report.curve.points(&probabilities),
        hrp_curve: hrp_report.curve.points(&probabilities),
        rm_sample,
        hrp_sample,
    })
}

/// Runs the 20KB comparison of Figure 5 proper.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn generate(options: &ExperimentOptions) -> Result<Fig5Result, ExperimentError> {
    compare(SyntheticKernel::fits_l2(), options)
}

/// Runs the footprint sweep (8KB, 20KB, 160KB) discussed in the text.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn footprint_sweep(options: &ExperimentOptions) -> Result<Vec<Fig5Result>, ExperimentError> {
    SyntheticKernel::paper_variants()
        .into_iter()
        .map(|kernel| compare(kernel, options))
        .collect()
}

/// Traversal count used by the large-footprint sweep under `--quick`: the
/// multi-MB vectors already exceed every cache level after one pass, so a
/// few traversals expose the placement behaviour at a fraction of the
/// full 50-traversal cost.
pub const LARGE_QUICK_TRAVERSALS: u32 = 3;

/// Runs the extended large-footprint sweep (1MB, 4MB) beyond the paper's
/// operating point — the scenario the packed streaming pipeline makes
/// practical: at 8 bytes/event a 4MB-footprint trace replays from a
/// ~50MB packed buffer instead of a ~100MB boxed one, and is never
/// duplicated across the campaign's worker threads.
///
/// Under `--quick` the kernels traverse [`LARGE_QUICK_TRAVERSALS`] times
/// instead of the paper's 50 so smoke tests complete in seconds.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn large_footprint_sweep(options: &ExperimentOptions) -> Result<Vec<Fig5Result>, ExperimentError> {
    SyntheticKernel::large_variants()
        .into_iter()
        .map(|kernel| {
            let kernel = if options.quick {
                SyntheticKernel::with_traversals(kernel.footprint_bytes(), LARGE_QUICK_TRAVERSALS)
            } else {
                kernel
            };
            compare(kernel, options)
        })
        .collect()
}

/// The RM-vs-hRP comparison of the L2-sized EEMBC-like stress kernel that
/// accompanies the large-footprint sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct StressComparison {
    /// Name of the stress workload.
    pub workload: String,
    /// Execution-time sample under Random Modulo.
    pub rm_sample: ExecutionSample,
    /// Execution-time sample under hash-based random placement.
    pub hrp_sample: ExecutionSample,
    /// pWCET at 10⁻¹⁵ under RM.
    pub rm_pwcet: f64,
    /// pWCET at 10⁻¹⁵ under hRP.
    pub hrp_pwcet: f64,
}

impl StressComparison {
    /// The ratio of the hRP execution-time spread to the RM spread.
    pub fn spread_ratio(&self) -> f64 {
        spread_ratio_of(&self.rm_sample, &self.hrp_sample)
    }
}

impl fmt::Display for StressComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.workload)?;
        write_comparison(f, &self.rm_sample, &self.hrp_sample, self.rm_pwcet, self.hrp_pwcet)
    }
}

/// Runs the L2-sized EEMBC-like stress comparison.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn l2_stress(options: &ExperimentOptions) -> Result<StressComparison, ExperimentError> {
    let stress = EembcStress::l2_sized();
    let seed = options.campaign_seed ^ stress.data_bytes();
    let rm_sample = runner::measure_opts(&stress, PlacementKind::RandomModulo, options, seed)?;
    let hrp_sample = runner::measure_opts(&stress, PlacementKind::HashRandom, options, seed)?;
    let rm_pwcet = runner::analyze(&rm_sample).pwcet_at(1e-15);
    let hrp_pwcet = runner::analyze(&hrp_sample).pwcet_at(1e-15);
    Ok(StressComparison {
        workload: stress.name(),
        rm_sample,
        hrp_sample,
        rm_pwcet,
        hrp_pwcet,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use randmod_workloads::Workload;

    #[test]
    fn twenty_kb_comparison_shows_hrp_long_tail() {
        // Reduced traversal count/runs to keep the test quick; the shape
        // (hRP has a wider spread and a larger pWCET) must already show.
        let kernel = SyntheticKernel::with_traversals(20 * 1024, 10);
        let options = ExperimentOptions::default().with_runs(80).with_campaign_seed(9);
        let result = compare(kernel, &options).unwrap();
        assert!(result.spread_ratio() > 1.0, "{result}");
        assert!(
            result.hrp_pwcet > result.rm_pwcet,
            "hRP pWCET {} should exceed RM pWCET {}",
            result.hrp_pwcet,
            result.rm_pwcet
        );
        assert_eq!(result.rm_curve.len(), 18);
        assert_eq!(result.hrp_curve.len(), 18);
        assert!(result.kernel.name().contains("20kb"));
        assert!(result.to_string().contains("spread ratio"));
    }

    #[test]
    fn l2_stress_produces_positive_pwcets() {
        let options = ExperimentOptions::default().with_runs(30).with_campaign_seed(2);
        let result = l2_stress(&options).unwrap();
        assert!(result.rm_pwcet > 0.0 && result.hrp_pwcet > 0.0);
        assert!(result.spread_ratio() > 0.0);
        assert!(result.workload.contains("eembc-stress"));
        assert!(result.to_string().contains("spread ratio"));
    }

    #[test]
    fn small_footprint_shrinks_the_absolute_gap() {
        // When the footprint fits in the L1, far fewer lines are exposed to
        // layout-induced conflicts, so the absolute pWCET gap between hRP
        // and RM is smaller than for the 20KB footprint (the paper's "the
        // effect reduces since almost all data fits in cache").
        let options = ExperimentOptions::default().with_runs(80).with_campaign_seed(9);
        let small = compare(SyntheticKernel::with_traversals(8 * 1024, 10), &options).unwrap();
        let medium = compare(SyntheticKernel::with_traversals(20 * 1024, 10), &options).unwrap();
        let small_gap = small.hrp_pwcet - small.rm_pwcet;
        let medium_gap = medium.hrp_pwcet - medium.rm_pwcet;
        assert!(
            medium_gap >= small_gap,
            "expected the 20KB absolute gap ({medium_gap:.0} cycles) to be at least as large as the 8KB gap ({small_gap:.0} cycles)"
        );
    }
}
