//! Table 1: ASIC and FPGA implementation results of the hRP and RM modules.

use randmod_hwcost::{CellLibrary, Table1Report};

/// Paper-reported reference values, used by EXPERIMENTS.md and the
/// comparison printout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTable1 {
    /// RM module area (µm², 45nm TSMC).
    pub rm_area_um2: f64,
    /// hRP module area (µm², 45nm TSMC).
    pub hrp_area_um2: f64,
    /// RM module delay (ns).
    pub rm_delay_ns: f64,
    /// hRP module delay (ns).
    pub hrp_delay_ns: f64,
    /// FPGA occupancy with RM in all caches (%).
    pub rm_occupancy_percent: f64,
    /// FPGA occupancy with hRP in all caches (%).
    pub hrp_occupancy_percent: f64,
    /// FPGA frequency with RM (MHz).
    pub rm_frequency_mhz: f64,
    /// FPGA frequency with hRP (MHz).
    pub hrp_frequency_mhz: f64,
}

/// The values reported in Table 1 of the paper.
pub const PAPER_TABLE1: PaperTable1 = PaperTable1 {
    rm_area_um2: 336.6,
    hrp_area_um2: 3514.7,
    rm_delay_ns: 0.46,
    hrp_delay_ns: 0.59,
    rm_occupancy_percent: 72.0,
    hrp_occupancy_percent: 80.0,
    rm_frequency_mhz: 100.0,
    hrp_frequency_mhz: 80.0,
};

/// Generates the reproduced Table 1 for the paper's 128-set (7-index-bit)
/// cache module using the generic 45nm library.
pub fn generate() -> Table1Report {
    Table1Report::generate(7, &CellLibrary::generic_45nm())
}

/// Generates the reproduced Table 1 for an arbitrary index width.
pub fn generate_for_index_bits(index_bits: u32) -> Table1Report {
    Table1Report::generate(index_bits, &CellLibrary::generic_45nm())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduction_matches_the_papers_shape() {
        let reproduced = generate();
        // Who wins and by roughly what factor.
        assert!(reproduced.area_ratio() > 5.0, "area ratio {}", reproduced.area_ratio());
        assert!(reproduced.delay_reduction() > 0.10);
        // FPGA: RM keeps the baseline frequency, hRP loses it.
        assert_eq!(reproduced.fpga_rm.frequency_mhz, PAPER_TABLE1.rm_frequency_mhz);
        assert!(reproduced.fpga_hrp.frequency_mhz < 95.0);
        assert!(reproduced.fpga_rm.occupancy_percent < reproduced.fpga_hrp.occupancy_percent);
    }

    #[test]
    fn absolute_numbers_are_in_the_papers_order_of_magnitude() {
        let reproduced = generate();
        assert!(reproduced.asic_rm.area_um2 > PAPER_TABLE1.rm_area_um2 * 0.3);
        assert!(reproduced.asic_rm.area_um2 < PAPER_TABLE1.rm_area_um2 * 3.0);
        assert!(reproduced.asic_hrp.area_um2 > PAPER_TABLE1.hrp_area_um2 * 0.3);
        assert!(reproduced.asic_hrp.area_um2 < PAPER_TABLE1.hrp_area_um2 * 3.0);
    }

    #[test]
    fn wider_l2_index_is_also_supported() {
        let reproduced = generate_for_index_bits(10);
        assert!(reproduced.area_ratio() > 4.0);
    }
}
