//! Figure 1: an illustrative pWCET curve (EVT projection in log scale).
//!
//! The figure in the paper is illustrative: it shows the complementary
//! cumulative distribution function produced by EVT, the cutoff exceedance
//! probability and the corresponding pWCET estimate.  This experiment
//! produces that curve from a real measurement campaign (the 20KB synthetic
//! kernel under RM) so the plotted object is the same one the rest of the
//! evaluation uses.

use crate::cli::ExperimentOptions;
use crate::runner::{self, AdaptiveSummary};
use crate::error::ExperimentError;
use randmod_core::PlacementKind;
use randmod_mbpta::PwcetCurve;
use randmod_workloads::SyntheticKernel;

/// One point of the pWCET CCDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Per-run exceedance probability.
    pub exceedance_probability: f64,
    /// Execution-time bound (cycles) exceeded with that probability.
    pub execution_time: f64,
}

/// The Figure 1 artefact: the projected curve plus the cutoff used in the
/// paper's illustration.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// Points of the CCDF, from 10⁻¹ down to 10⁻¹⁸.
    pub points: Vec<CurvePoint>,
    /// The cutoff probability highlighted in the figure (10⁻¹⁵ per run).
    pub cutoff_probability: f64,
    /// The pWCET estimate at the cutoff.
    pub pwcet_at_cutoff: f64,
    /// Number of runs behind the curve (`--runs`, or the runs-to-
    /// convergence count under `--adaptive`).
    pub runs: usize,
    /// The convergence record of the campaign (`None` without
    /// `--adaptive`).
    pub adaptive: Option<AdaptiveSummary>,
}

/// Generates the Figure 1 curve from a campaign of the 20KB synthetic
/// kernel with Random Modulo L1 caches: `options.runs` fixed runs, or a
/// convergence-driven schedule under `--adaptive`.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn generate(options: &ExperimentOptions) -> Result<Fig1Result, ExperimentError> {
    let kernel = SyntheticKernel::fits_l2();
    let measurement = runner::measure_campaign(
        &kernel,
        PlacementKind::RandomModulo,
        options,
        options.campaign_seed,
    )?;
    let report = runner::analyze_measurement(&measurement);
    let cutoff_probability = 1e-15;
    let points = report
        .curve
        .points(&PwcetCurve::standard_probabilities())
        .into_iter()
        .map(|(p, x)| CurvePoint {
            exceedance_probability: p,
            execution_time: x,
        })
        .collect();
    Ok(Fig1Result {
        points,
        cutoff_probability,
        pwcet_at_cutoff: report.pwcet_at(cutoff_probability),
        runs: measurement.sample.len(),
        adaptive: measurement.adaptive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotone_and_reaches_the_cutoff() {
        let options = ExperimentOptions::default().with_runs(120).with_campaign_seed(11);
        let result = generate(&options).unwrap();
        assert_eq!(result.points.len(), 18);
        assert_eq!(result.runs, 120);
        assert!(result.adaptive.is_none());
        for pair in result.points.windows(2) {
            assert!(pair[0].exceedance_probability > pair[1].exceedance_probability);
            assert!(pair[0].execution_time <= pair[1].execution_time);
        }
        assert_eq!(result.cutoff_probability, 1e-15);
        let at_cutoff = result
            .points
            .iter()
            .find(|p| (p.exceedance_probability - 1e-15).abs() < 1e-20)
            .unwrap();
        assert!((at_cutoff.execution_time - result.pwcet_at_cutoff).abs() < 1e-6);
    }

    #[test]
    fn adaptive_curve_records_the_convergence_outcome() {
        let options = ExperimentOptions::default()
            .with_campaign_seed(11)
            .with_adaptive()
            .with_max_runs(250)
            .with_target_cv(0.05);
        let result = generate(&options).unwrap();
        let summary = result.adaptive.as_ref().expect("adaptive record missing");
        assert_eq!(summary.runs_used, result.runs);
        assert!(result.runs <= 250);
        assert!(summary.pwcet_estimate > 0.0);
        // The curve itself is still well-formed.
        assert_eq!(result.points.len(), 18);
        for pair in result.points.windows(2) {
            assert!(pair[0].execution_time <= pair[1].execution_time);
        }
    }
}
