//! Table 2: MBPTA-compliance (i.i.d.) tests for the EEMBC benchmarks under
//! Random Modulo.
//!
//! The paper runs every EEMBC benchmark 1,000 times with a fresh seed per
//! run, RM in the L1 caches and hRP in the L2, and applies the
//! Wald–Wolfowitz independence test and the two-sample Kolmogorov–Smirnov
//! identical-distribution test; all benchmarks pass (WW < 1.96,
//! KS p ≥ 0.05).  This experiment reproduces the table and additionally
//! reports the ET (Gumbel convergence) test the paper mentions in the text.

use crate::cli::ExperimentOptions;
use crate::runner;
use crate::error::ExperimentError;
use randmod_core::PlacementKind;
use randmod_workloads::EembcBenchmark;
use std::fmt;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// The benchmark.
    pub benchmark: EembcBenchmark,
    /// Wald–Wolfowitz statistic (pass when below 1.96).
    pub ww_statistic: f64,
    /// Two-sample KS p-value (pass when at or above 0.05).
    pub ks_p_value: f64,
    /// ET test p-value (Gumbel convergence of the tail).
    pub et_p_value: f64,
    /// Whether both Table-2 tests passed.
    pub passed: bool,
    /// Number of runs behind the row (`--runs`, or the benchmark's
    /// runs-to-convergence count under `--adaptive`).
    pub runs: usize,
    /// Whether the adaptive campaign converged before its run cap
    /// (`None` without `--adaptive`).
    pub converged: Option<bool>,
}

impl fmt::Display for Table2Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>2}  WW {:>5.2}  KS {:>5.2}  ET {:>5.2}  {}",
            self.benchmark.initials(),
            self.ww_statistic,
            self.ks_p_value,
            self.et_p_value,
            if self.passed { "pass" } else { "FAIL" }
        )
    }
}

/// Runs the Table 2 campaign: every EEMBC benchmark, `options.runs` runs,
/// RM in the L1 caches.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn generate(options: &ExperimentOptions) -> Result<Vec<Table2Row>, ExperimentError> {
    EembcBenchmark::ALL
        .iter()
        .map(|&benchmark| row_for(benchmark, options))
        .collect()
}

/// Computes one row of Table 2.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn row_for(
    benchmark: EembcBenchmark,
    options: &ExperimentOptions,
) -> Result<Table2Row, ExperimentError> {
    let measurement = runner::measure_campaign(
        &benchmark,
        PlacementKind::RandomModulo,
        options,
        options.campaign_seed ^ benchmark.initials().as_bytes()[0] as u64,
    )?;
    let report = runner::analyze_measurement(&measurement);
    Ok(Table2Row {
        benchmark,
        ww_statistic: report.ww.statistic,
        ks_p_value: report.ks.p_value,
        et_p_value: report.et.p_value,
        passed: report.ww.passed() && report.ks.passed(),
        runs: measurement.sample.len(),
        converged: measurement.adaptive.map(|a| a.converged),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_benchmark_row_passes_the_iid_tests() {
        // A reduced-run sanity check on one benchmark; the full table is
        // exercised by the integration tests and the experiment binary.
        let options = ExperimentOptions::default().with_runs(150).with_campaign_seed(3);
        let row = row_for(EembcBenchmark::A2time, &options).unwrap();
        assert_eq!(row.runs, 150);
        assert_eq!(row.converged, None);
        assert!(row.ww_statistic.is_finite());
        assert!(row.passed, "{row}");
        assert!(row.to_string().contains("A2"));
    }

    #[test]
    fn an_adaptive_row_records_runs_to_convergence() {
        // A low-variance benchmark under RM converges at the criterion
        // floor instead of paying the full fixed-run schedule.
        let options = ExperimentOptions::default()
            .with_campaign_seed(3)
            .with_adaptive()
            .with_max_runs(300);
        let row = row_for(EembcBenchmark::A2time, &options).unwrap();
        assert_eq!(row.converged, Some(true));
        assert!(
            row.runs < 300,
            "expected convergence below the cap, used {} runs",
            row.runs
        );
    }
}
