//! Minimal command-line parsing shared by the experiment binaries.

use crate::{DEFAULT_CAMPAIGN_SEED, DEFAULT_RUNS, MIN_RUNS};

/// Options common to all experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Number of runs per benchmark (`--runs N`, clamped to at least
    /// [`MIN_RUNS`] so the statistical pipeline stays applicable).
    pub runs: usize,
    /// Campaign seed (`--seed N`).
    pub campaign_seed: u64,
    /// Quick mode (`--quick`): very small run counts for smoke testing.
    pub quick: bool,
    /// Worker-thread override for the campaigns (`--threads N`); `None`
    /// keeps the default of one worker per available core.
    pub threads: Option<usize>,
    /// Seed-lane override for the batched replay engine (`--lanes N`);
    /// `None` keeps [`randmod_sim::Campaign::DEFAULT_LANES`].  `--lanes 1`
    /// forces the sequential (one hierarchy per trace decode) path.
    pub lanes: Option<usize>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            runs: DEFAULT_RUNS,
            campaign_seed: DEFAULT_CAMPAIGN_SEED,
            quick: false,
            threads: None,
            lanes: None,
        }
    }
}

impl ExperimentOptions {
    /// Parses options from an argument iterator (excluding the program
    /// name).  Unknown arguments are ignored so binaries can add their own.
    pub fn parse<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut options = ExperimentOptions::default();
        let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--runs" => {
                    if let Some(value) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        options.runs = value;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(value) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        options.campaign_seed = value;
                        i += 1;
                    }
                }
                "--threads" => {
                    if let Some(value) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        options.threads = Some(value);
                        i += 1;
                    }
                }
                "--lanes" => {
                    if let Some(value) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        options.lanes = Some(value);
                        i += 1;
                    }
                }
                "--quick" => {
                    options.quick = true;
                }
                _ => {}
            }
            i += 1;
        }
        // Apply the quick cap and the pipeline floor after the scan so the
        // outcome does not depend on argument order.
        if options.quick {
            options.runs = options.runs.min(40);
        }
        options.runs = options.runs.max(MIN_RUNS);
        // A zero thread count would deadlock nothing but makes no sense;
        // treat it as "no override" (Campaign clamps to 1 anyway).
        if options.threads == Some(0) {
            options.threads = None;
        }
        if options.lanes == Some(0) {
            options.lanes = None;
        }
        options
    }

    /// Parses options from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Returns the options with the given run count (test/bench helper).
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Returns the options with the given campaign seed (test/bench
    /// helper).
    pub fn with_campaign_seed(mut self, seed: u64) -> Self {
        self.campaign_seed = seed;
        self
    }

    /// Returns the options with a worker-thread override.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Returns the options with a seed-lane override.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = Some(lanes);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_arguments() {
        let options = ExperimentOptions::parse(Vec::<String>::new());
        assert_eq!(options, ExperimentOptions::default());
        assert_eq!(options.runs, DEFAULT_RUNS);
        assert_eq!(options.threads, None);
    }

    #[test]
    fn runs_and_seed_are_parsed() {
        let options = ExperimentOptions::parse(["--runs", "1000", "--seed", "7"]);
        assert_eq!(options.runs, 1000);
        assert_eq!(options.campaign_seed, 7);
        assert!(!options.quick);
    }

    #[test]
    fn threads_flag_is_parsed() {
        let options = ExperimentOptions::parse(["--threads", "4"]);
        assert_eq!(options.threads, Some(4));
        // Combined with the other flags, in any position.
        let options = ExperimentOptions::parse(["--runs", "100", "--threads", "2", "--quick"]);
        assert_eq!(options.threads, Some(2));
        assert_eq!(options.runs, 40);
    }

    #[test]
    fn malformed_or_zero_thread_counts_are_ignored() {
        assert_eq!(
            ExperimentOptions::parse(["--threads", "lots"]).threads,
            None
        );
        assert_eq!(ExperimentOptions::parse(["--threads"]).threads, None);
        assert_eq!(ExperimentOptions::parse(["--threads", "0"]).threads, None);
    }

    #[test]
    fn lanes_flag_is_parsed() {
        assert_eq!(ExperimentOptions::parse(["--lanes", "4"]).lanes, Some(4));
        assert_eq!(ExperimentOptions::parse(["--lanes", "1"]).lanes, Some(1));
        let combined =
            ExperimentOptions::parse(["--runs", "50", "--lanes", "16", "--threads", "2"]);
        assert_eq!(combined.lanes, Some(16));
        assert_eq!(combined.threads, Some(2));
        assert_eq!(combined.runs, 50);
    }

    #[test]
    fn malformed_or_zero_lane_counts_are_ignored() {
        assert_eq!(ExperimentOptions::parse(["--lanes", "many"]).lanes, None);
        assert_eq!(ExperimentOptions::parse(["--lanes"]).lanes, None);
        assert_eq!(ExperimentOptions::parse(["--lanes", "0"]).lanes, None);
        assert_eq!(ExperimentOptions::default().lanes, None);
    }

    #[test]
    fn builder_helpers_set_fields() {
        let options = ExperimentOptions::default()
            .with_runs(77)
            .with_campaign_seed(9)
            .with_threads(3);
        assert_eq!(options.runs, 77);
        assert_eq!(options.campaign_seed, 9);
        assert_eq!(options.threads, Some(3));
    }

    #[test]
    fn quick_caps_the_run_count() {
        let options = ExperimentOptions::parse(["--quick"]);
        assert!(options.quick);
        assert!(options.runs <= 40);
    }

    #[test]
    fn quick_cap_is_order_independent() {
        let quick_first = ExperimentOptions::parse(["--quick", "--runs", "100"]);
        let runs_first = ExperimentOptions::parse(["--runs", "100", "--quick"]);
        assert_eq!(quick_first, runs_first);
        assert_eq!(quick_first.runs, 40);
    }

    #[test]
    fn unknown_and_malformed_arguments_are_ignored() {
        let options = ExperimentOptions::parse(["--sweep", "--runs", "notanumber"]);
        assert_eq!(options.runs, DEFAULT_RUNS);
    }

    #[test]
    fn runs_below_the_pipeline_minimum_are_clamped() {
        let options = ExperimentOptions::parse(["--runs", "5"]);
        assert_eq!(options.runs, MIN_RUNS);
        let options = ExperimentOptions::parse(["--quick", "--runs", "1"]);
        assert_eq!(options.runs, MIN_RUNS);
    }
}
