//! Minimal command-line parsing shared by the experiment binaries.

use crate::{DEFAULT_CAMPAIGN_SEED, DEFAULT_RUNS, MIN_RUNS};

/// Options common to all experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOptions {
    /// Number of runs per benchmark (`--runs N`, clamped to at least
    /// [`MIN_RUNS`] so the statistical pipeline stays applicable).
    pub runs: usize,
    /// Campaign seed (`--seed N`).
    pub campaign_seed: u64,
    /// Quick mode (`--quick`): very small run counts for smoke testing.
    pub quick: bool,
    /// Worker-thread override for the campaigns (`--threads N`); `None`
    /// keeps the default of one worker per available core.
    pub threads: Option<usize>,
    /// Seed-lane override for the batched replay engine (`--lanes N`);
    /// `None` keeps [`randmod_sim::Campaign::DEFAULT_LANES`].  `--lanes 1`
    /// forces the sequential (one hierarchy per trace decode) path.
    pub lanes: Option<usize>,
    /// Adaptive mode (`--adaptive`): grow each campaign until the pWCET
    /// estimate converges instead of executing a fixed run count.
    pub adaptive: bool,
    /// Convergence tolerance override (`--target-cv X`): the maximum
    /// relative movement between consecutive pWCET checkpoints that still
    /// counts as stable; `None` keeps the default of 1%.
    pub target_cv: Option<f64>,
    /// Adaptive run cap override (`--max-runs N`); `None` keeps
    /// [`crate::runner::DEFAULT_ADAPTIVE_MAX_RUNS`].
    pub max_runs: Option<usize>,
    /// Shard-count override for the fixed-run campaigns (`--shards N`);
    /// `None` runs unsharded unless `--checkpoint` implies sharding with
    /// [`crate::runner::DEFAULT_SHARDS`].
    pub shards: Option<usize>,
    /// Checkpoint directory (`--checkpoint DIR`): persist completed shards
    /// there so an interrupted campaign can be resumed.
    pub checkpoint: Option<String>,
    /// Resume mode (`--resume`): reuse an existing checkpoint instead of
    /// clearing it and starting fresh.  Only meaningful with
    /// `--checkpoint`.
    pub resume: bool,
    /// Campaign-server address (`--server ADDR`, e.g. `127.0.0.1:7878`):
    /// submit fixed-run campaigns to a running `randmod-server` instead of
    /// simulating locally, so repeated experiment invocations share its
    /// content-addressed result cache.
    pub server: Option<String>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            runs: DEFAULT_RUNS,
            campaign_seed: DEFAULT_CAMPAIGN_SEED,
            quick: false,
            threads: None,
            lanes: None,
            adaptive: false,
            target_cv: None,
            max_runs: None,
            shards: None,
            checkpoint: None,
            resume: false,
            server: None,
        }
    }
}

/// Consumes the value following a flag when it parses; otherwise records a
/// warning naming the flag and the rejected value and leaves the cursor on
/// the flag (so a following `--other-flag` is still scanned normally).
fn numeric_value<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    flag: &str,
    warnings: &mut Vec<String>,
) -> Option<T> {
    match args.get(*i + 1) {
        None => {
            warnings.push(format!("{flag} expects a value but none was given; flag ignored"));
            None
        }
        Some(raw) => match raw.parse::<T>() {
            Ok(value) => {
                *i += 1;
                Some(value)
            }
            Err(_) => {
                warnings.push(format!("{flag}: invalid value {raw:?}; flag ignored"));
                None
            }
        },
    }
}

/// Consumes the value following a flag unless it is missing or looks like
/// another flag (starts with `--`), in which case a warning is recorded
/// and the cursor stays on the flag.
fn string_value(
    args: &[String],
    i: &mut usize,
    flag: &str,
    warnings: &mut Vec<String>,
) -> Option<String> {
    match args.get(*i + 1) {
        None => {
            warnings.push(format!("{flag} expects a value but none was given; flag ignored"));
            None
        }
        Some(raw) if raw.starts_with("--") => {
            warnings.push(format!(
                "{flag} expects a value but got the flag {raw:?}; flag ignored"
            ));
            None
        }
        Some(raw) => {
            *i += 1;
            Some(raw.clone())
        }
    }
}

impl ExperimentOptions {
    /// Parses options from an argument iterator (excluding the program
    /// name), printing a warning to stderr for every flag whose value was
    /// rejected.  Unknown arguments are ignored so binaries can add their
    /// own.
    pub fn parse<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let (options, warnings) = Self::parse_with_warnings(args);
        for warning in &warnings {
            eprintln!("warning: {warning}");
        }
        options
    }

    /// [`Self::parse`] returning the rejected-value warnings instead of
    /// printing them (the testable core of the parser).
    pub fn parse_with_warnings<I, S>(args: I) -> (Self, Vec<String>)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut options = ExperimentOptions::default();
        let mut warnings = Vec::new();
        let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--runs" => {
                    if let Some(value) = numeric_value(&args, &mut i, "--runs", &mut warnings) {
                        options.runs = value;
                    }
                }
                "--seed" => {
                    if let Some(value) = numeric_value(&args, &mut i, "--seed", &mut warnings) {
                        options.campaign_seed = value;
                    }
                }
                "--threads" => {
                    if let Some(value) = numeric_value(&args, &mut i, "--threads", &mut warnings) {
                        options.threads = Some(value);
                    }
                }
                "--lanes" => {
                    if let Some(value) = numeric_value(&args, &mut i, "--lanes", &mut warnings) {
                        options.lanes = Some(value);
                    }
                }
                "--max-runs" => {
                    if let Some(value) = numeric_value(&args, &mut i, "--max-runs", &mut warnings) {
                        options.max_runs = Some(value);
                    }
                }
                "--target-cv" => {
                    if let Some(value) =
                        numeric_value::<f64>(&args, &mut i, "--target-cv", &mut warnings)
                    {
                        if value > 0.0 && value.is_finite() {
                            options.target_cv = Some(value);
                        } else {
                            warnings.push(format!(
                                "--target-cv: tolerance must be positive and finite, got {value}; flag ignored"
                            ));
                        }
                    }
                }
                "--shards" => {
                    if let Some(value) = numeric_value(&args, &mut i, "--shards", &mut warnings) {
                        options.shards = Some(value);
                    }
                }
                "--checkpoint" => {
                    if let Some(value) = string_value(&args, &mut i, "--checkpoint", &mut warnings)
                    {
                        options.checkpoint = Some(value);
                    }
                }
                "--resume" => {
                    options.resume = true;
                }
                "--server" => {
                    if let Some(value) = string_value(&args, &mut i, "--server", &mut warnings) {
                        options.server = Some(value);
                    }
                }
                "--adaptive" => {
                    options.adaptive = true;
                }
                "--quick" => {
                    options.quick = true;
                }
                _ => {}
            }
            i += 1;
        }
        // Apply the quick cap and the pipeline floor after the scan so the
        // outcome does not depend on argument order.
        if options.quick {
            options.runs = options.runs.min(40);
            options.max_runs = options.max_runs.map(|m| m.min(40));
        }
        options.runs = options.runs.max(MIN_RUNS);
        // A zero thread / lane / run-cap count makes no sense; warn and
        // treat it as "no override" (Campaign clamps to 1 anyway).
        if options.threads == Some(0) {
            warnings.push("--threads: 0 is not a valid worker count; using the default".into());
            options.threads = None;
        }
        if options.lanes == Some(0) {
            warnings.push("--lanes: 0 is not a valid lane count; using the default".into());
            options.lanes = None;
        }
        if options.max_runs == Some(0) {
            warnings.push("--max-runs: 0 is not a valid run cap; using the default".into());
            options.max_runs = None;
        }
        if let Some(max_runs) = options.max_runs {
            if max_runs < MIN_RUNS {
                warnings.push(format!(
                    "--max-runs: {max_runs} is below the statistical floor of {MIN_RUNS} runs; clamped"
                ));
                options.max_runs = Some(MIN_RUNS);
            }
        }
        if options.shards == Some(0) {
            warnings.push("--shards: 0 is not a valid shard count; using the default".into());
            options.shards = None;
        }
        if options.resume && options.checkpoint.is_none() {
            warnings
                .push("--resume has no effect without --checkpoint; flag ignored".into());
            options.resume = false;
        }
        // The adaptive driver grows the campaign sequentially until the
        // pWCET estimate converges; its run count is not a pure function of
        // the options, so there is no fixed schedule to shard or resume.
        if options.adaptive && (options.shards.is_some() || options.checkpoint.is_some()) {
            warnings.push(
                "--adaptive campaigns grow until convergence and cannot be sharded or \
                 checkpointed; --shards/--checkpoint/--resume ignored"
                    .into(),
            );
            options.shards = None;
            options.checkpoint = None;
            options.resume = false;
        }
        // Client mode offloads the whole fixed schedule to the server,
        // whose content-addressed store already provides the persistence
        // --checkpoint would; and the adaptive driver streams its
        // trajectory interactively, which the batch client cannot consume.
        if options.server.is_some() && options.adaptive {
            warnings.push(
                "--adaptive campaigns run locally (the client mode consumes whole samples, \
                 not convergence streams); --server ignored"
                    .into(),
            );
            options.server = None;
        }
        if options.server.is_some()
            && (options.shards.is_some() || options.checkpoint.is_some())
        {
            warnings.push(
                "--server campaigns are cached by the server's result store; \
                 --shards/--checkpoint/--resume ignored"
                    .into(),
            );
            options.shards = None;
            options.checkpoint = None;
            options.resume = false;
        }
        (options, warnings)
    }

    /// Parses options from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Returns the options with the given run count (test/bench helper).
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Returns the options with the given campaign seed (test/bench
    /// helper).
    pub fn with_campaign_seed(mut self, seed: u64) -> Self {
        self.campaign_seed = seed;
        self
    }

    /// Returns the options with a worker-thread override.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Returns the options with a seed-lane override.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = Some(lanes);
        self
    }

    /// Returns the options with adaptive mode enabled.
    pub fn with_adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// Returns the options with an adaptive run-cap override.
    pub fn with_max_runs(mut self, max_runs: usize) -> Self {
        self.max_runs = Some(max_runs);
        self
    }

    /// Returns the options with a convergence-tolerance override.
    pub fn with_target_cv(mut self, target_cv: f64) -> Self {
        self.target_cv = Some(target_cv);
        self
    }

    /// Returns the options with a shard-count override.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Returns the options with a checkpoint directory.
    pub fn with_checkpoint(mut self, dir: impl Into<String>) -> Self {
        self.checkpoint = Some(dir.into());
        self
    }

    /// Returns the options with resume mode enabled.
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Returns the options with a campaign-server address.
    pub fn with_server(mut self, addr: impl Into<String>) -> Self {
        self.server = Some(addr.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_arguments() {
        let options = ExperimentOptions::parse(Vec::<String>::new());
        assert_eq!(options, ExperimentOptions::default());
        assert_eq!(options.runs, DEFAULT_RUNS);
        assert_eq!(options.threads, None);
        assert!(!options.adaptive);
        assert_eq!(options.target_cv, None);
        assert_eq!(options.max_runs, None);
    }

    #[test]
    fn runs_and_seed_are_parsed() {
        let options = ExperimentOptions::parse(["--runs", "1000", "--seed", "7"]);
        assert_eq!(options.runs, 1000);
        assert_eq!(options.campaign_seed, 7);
        assert!(!options.quick);
    }

    #[test]
    fn threads_flag_is_parsed() {
        let options = ExperimentOptions::parse(["--threads", "4"]);
        assert_eq!(options.threads, Some(4));
        // Combined with the other flags, in any position.
        let options = ExperimentOptions::parse(["--runs", "100", "--threads", "2", "--quick"]);
        assert_eq!(options.threads, Some(2));
        assert_eq!(options.runs, 40);
    }

    #[test]
    fn malformed_or_zero_thread_counts_warn_and_are_ignored() {
        let (options, warnings) =
            ExperimentOptions::parse_with_warnings(["--threads", "lots"]);
        assert_eq!(options.threads, None);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("--threads"), "{warnings:?}");
        assert!(warnings[0].contains("lots"), "{warnings:?}");

        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--threads"]);
        assert_eq!(options.threads, None);
        assert!(warnings[0].contains("--threads"), "{warnings:?}");
        assert!(warnings[0].contains("expects a value"), "{warnings:?}");

        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--threads", "0"]);
        assert_eq!(options.threads, None);
        assert!(warnings[0].contains("--threads"), "{warnings:?}");
        assert!(warnings[0].contains('0'), "{warnings:?}");
    }

    #[test]
    fn lanes_flag_is_parsed() {
        assert_eq!(ExperimentOptions::parse(["--lanes", "4"]).lanes, Some(4));
        assert_eq!(ExperimentOptions::parse(["--lanes", "1"]).lanes, Some(1));
        let combined =
            ExperimentOptions::parse(["--runs", "50", "--lanes", "16", "--threads", "2"]);
        assert_eq!(combined.lanes, Some(16));
        assert_eq!(combined.threads, Some(2));
        assert_eq!(combined.runs, 50);
    }

    #[test]
    fn malformed_or_zero_lane_counts_warn_and_are_ignored() {
        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--lanes", "many"]);
        assert_eq!(options.lanes, None);
        assert!(warnings[0].contains("--lanes") && warnings[0].contains("many"), "{warnings:?}");

        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--lanes"]);
        assert_eq!(options.lanes, None);
        assert!(warnings[0].contains("expects a value"), "{warnings:?}");

        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--lanes", "0"]);
        assert_eq!(options.lanes, None);
        assert!(warnings[0].contains("--lanes"), "{warnings:?}");
        assert_eq!(ExperimentOptions::default().lanes, None);
    }

    #[test]
    fn a_rejected_value_does_not_swallow_the_following_flag() {
        // The bad value is not consumed as a flag argument, so flags after
        // it still apply.
        let (options, warnings) =
            ExperimentOptions::parse_with_warnings(["--runs", "notanumber", "--quick"]);
        assert_eq!(options.runs, 40); // quick cap over the default
        assert!(options.quick);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("notanumber"), "{warnings:?}");
    }

    #[test]
    fn each_flag_warns_on_a_malformed_value() {
        for flag in
            ["--runs", "--seed", "--threads", "--lanes", "--max-runs", "--target-cv", "--shards"]
        {
            let (options, warnings) = ExperimentOptions::parse_with_warnings([flag, "bogus"]);
            assert_eq!(options, ExperimentOptions::default(), "{flag} changed the options");
            assert_eq!(warnings.len(), 1, "{flag}: {warnings:?}");
            assert!(warnings[0].contains(flag), "{warnings:?}");
            assert!(warnings[0].contains("bogus"), "{warnings:?}");
        }
    }

    #[test]
    fn adaptive_flags_are_parsed() {
        let options =
            ExperimentOptions::parse(["--adaptive", "--target-cv", "0.05", "--max-runs", "500"]);
        assert!(options.adaptive);
        assert_eq!(options.target_cv, Some(0.05));
        assert_eq!(options.max_runs, Some(500));
    }

    #[test]
    fn malformed_adaptive_values_warn_and_are_ignored() {
        let (options, warnings) =
            ExperimentOptions::parse_with_warnings(["--target-cv", "-0.5"]);
        assert_eq!(options.target_cv, None);
        assert!(warnings[0].contains("--target-cv"), "{warnings:?}");

        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--max-runs", "0"]);
        assert_eq!(options.max_runs, None);
        assert!(warnings[0].contains("--max-runs"), "{warnings:?}");

        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--max-runs", "5"]);
        assert_eq!(options.max_runs, Some(MIN_RUNS));
        assert!(warnings[0].contains("statistical floor"), "{warnings:?}");
    }

    #[test]
    fn quick_caps_the_adaptive_run_cap() {
        let options = ExperimentOptions::parse(["--quick", "--adaptive", "--max-runs", "500"]);
        assert_eq!(options.max_runs, Some(40));
        // Order independent.
        let options = ExperimentOptions::parse(["--max-runs", "500", "--adaptive", "--quick"]);
        assert_eq!(options.max_runs, Some(40));
    }

    #[test]
    fn builder_helpers_set_fields() {
        let options = ExperimentOptions::default()
            .with_runs(77)
            .with_campaign_seed(9)
            .with_threads(3)
            .with_adaptive()
            .with_max_runs(400)
            .with_target_cv(0.02);
        assert_eq!(options.runs, 77);
        assert_eq!(options.campaign_seed, 9);
        assert_eq!(options.threads, Some(3));
        assert!(options.adaptive);
        assert_eq!(options.max_runs, Some(400));
        assert_eq!(options.target_cv, Some(0.02));
    }

    #[test]
    fn quick_caps_the_run_count() {
        let options = ExperimentOptions::parse(["--quick"]);
        assert!(options.quick);
        assert!(options.runs <= 40);
    }

    #[test]
    fn quick_cap_is_order_independent() {
        let quick_first = ExperimentOptions::parse(["--quick", "--runs", "100"]);
        let runs_first = ExperimentOptions::parse(["--runs", "100", "--quick"]);
        assert_eq!(quick_first, runs_first);
        assert_eq!(quick_first.runs, 40);
    }

    #[test]
    fn unknown_arguments_are_ignored_without_warnings() {
        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--sweep", "--large"]);
        assert_eq!(options, ExperimentOptions::default());
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn shard_and_checkpoint_flags_are_parsed() {
        let options =
            ExperimentOptions::parse(["--shards", "8", "--checkpoint", "/tmp/ckpt", "--resume"]);
        assert_eq!(options.shards, Some(8));
        assert_eq!(options.checkpoint.as_deref(), Some("/tmp/ckpt"));
        assert!(options.resume);
        // Checkpoint alone is fine: the runner supplies a default shard
        // count.
        let options = ExperimentOptions::parse(["--checkpoint", "state"]);
        assert_eq!(options.shards, None);
        assert_eq!(options.checkpoint.as_deref(), Some("state"));
        assert!(!options.resume);
    }

    #[test]
    fn zero_shards_warn_and_fall_back_to_the_default() {
        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--shards", "0"]);
        assert_eq!(options.shards, None);
        assert!(warnings[0].contains("--shards"), "{warnings:?}");
    }

    #[test]
    fn checkpoint_does_not_swallow_a_following_flag() {
        let (options, warnings) =
            ExperimentOptions::parse_with_warnings(["--checkpoint", "--quick"]);
        assert_eq!(options.checkpoint, None);
        assert!(options.quick, "--quick must still be scanned");
        assert!(warnings[0].contains("--checkpoint"), "{warnings:?}");

        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--checkpoint"]);
        assert_eq!(options.checkpoint, None);
        assert!(warnings[0].contains("expects a value"), "{warnings:?}");
    }

    #[test]
    fn resume_without_a_checkpoint_warns_and_is_ignored() {
        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--resume"]);
        assert!(!options.resume);
        assert!(warnings[0].contains("--resume"), "{warnings:?}");
        // Order independent: --resume before --checkpoint still sticks.
        let (options, warnings) =
            ExperimentOptions::parse_with_warnings(["--resume", "--checkpoint", "dir"]);
        assert!(options.resume);
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn adaptive_mode_rejects_sharding_and_checkpointing() {
        let (options, warnings) = ExperimentOptions::parse_with_warnings([
            "--adaptive",
            "--shards",
            "4",
            "--checkpoint",
            "dir",
            "--resume",
        ]);
        assert!(options.adaptive);
        assert_eq!(options.shards, None);
        assert_eq!(options.checkpoint, None);
        assert!(!options.resume);
        assert!(
            warnings.iter().any(|w| w.contains("--adaptive")),
            "{warnings:?}"
        );
    }

    #[test]
    fn shard_builder_helpers_set_fields() {
        let options = ExperimentOptions::default()
            .with_shards(6)
            .with_checkpoint("/tmp/state")
            .with_resume();
        assert_eq!(options.shards, Some(6));
        assert_eq!(options.checkpoint.as_deref(), Some("/tmp/state"));
        assert!(options.resume);
    }

    #[test]
    fn server_flag_is_parsed_and_built() {
        let options = ExperimentOptions::parse(["--server", "127.0.0.1:7878"]);
        assert_eq!(options.server.as_deref(), Some("127.0.0.1:7878"));
        let built = ExperimentOptions::default().with_server("localhost:9");
        assert_eq!(built.server.as_deref(), Some("localhost:9"));
        assert_eq!(ExperimentOptions::default().server, None);
    }

    #[test]
    fn server_does_not_swallow_a_following_flag() {
        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--server", "--quick"]);
        assert_eq!(options.server, None);
        assert!(options.quick, "--quick must still be scanned");
        assert!(warnings[0].contains("--server"), "{warnings:?}");

        let (options, warnings) = ExperimentOptions::parse_with_warnings(["--server"]);
        assert_eq!(options.server, None);
        assert!(warnings[0].contains("expects a value"), "{warnings:?}");
    }

    #[test]
    fn adaptive_mode_keeps_campaigns_local() {
        let (options, warnings) = ExperimentOptions::parse_with_warnings([
            "--server",
            "127.0.0.1:7878",
            "--adaptive",
        ]);
        assert!(options.adaptive);
        assert_eq!(options.server, None);
        assert!(
            warnings.iter().any(|w| w.contains("--server")),
            "{warnings:?}"
        );
    }

    #[test]
    fn server_mode_supersedes_local_checkpointing() {
        let (options, warnings) = ExperimentOptions::parse_with_warnings([
            "--server",
            "127.0.0.1:7878",
            "--shards",
            "4",
            "--checkpoint",
            "dir",
            "--resume",
        ]);
        assert_eq!(options.server.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(options.shards, None);
        assert_eq!(options.checkpoint, None);
        assert!(!options.resume);
        assert!(
            warnings.iter().any(|w| w.contains("result store")),
            "{warnings:?}"
        );
    }

    #[test]
    fn runs_below_the_pipeline_minimum_are_clamped() {
        let options = ExperimentOptions::parse(["--runs", "5"]);
        assert_eq!(options.runs, MIN_RUNS);
        let options = ExperimentOptions::parse(["--quick", "--runs", "1"]);
        assert_eq!(options.runs, MIN_RUNS);
    }
}
