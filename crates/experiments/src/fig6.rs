//! Figure 6 (beyond the paper): victim pWCET under shared-L2 contention.
//!
//! The paper evaluates a private L2 partition per core — the configuration
//! MBPTA likes best.  This experiment opens the harder, realistic
//! scenario: the 20KB synthetic victim co-scheduled against an escalating
//! ladder of opponents on **one shared L2** (see
//! [`randmod_workloads::CoSchedule::pressure_level`]), with the placement
//! policy under test installed at the shared level (Random Modulo kept in
//! every task's private L1s, as the paper's design point prescribes).
//!
//! For each L2 placement × pressure level the experiment reports the
//! victim's pWCET at 10⁻¹⁵ and its inflation relative to the idle
//! co-schedule under the same placement — how gracefully each policy
//! degrades when co-runners hammer the shared level.

use crate::cli::ExperimentOptions;
use crate::fig4::CUTOFF_PROBABILITY;
use crate::runner::{self, AdaptiveSummary};
use crate::error::ExperimentError;
use randmod_core::PlacementKind;
use randmod_workloads::{CoSchedule, SyntheticKernel};
use std::fmt;

/// One row of the contention sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Placement policy installed at the shared L2.
    pub l2_placement: PlacementKind,
    /// Pressure level (0 = idle co-runner .. 3 = three stress kernels).
    pub pressure: usize,
    /// Human-readable opponent set.
    pub opponents: String,
    /// Victim pWCET at 10⁻¹⁵ per run.
    pub victim_pwcet: f64,
    /// Victim mean execution time (cycles).
    pub victim_mean: f64,
    /// Victim pWCET inflation vs the idle co-schedule of the same
    /// placement, in percent (0 for the idle row itself).
    pub inflation_percent: f64,
    /// Number of runs behind the row.
    pub runs: usize,
    /// The convergence record (`None` without `--adaptive`).
    pub adaptive: Option<AdaptiveSummary>,
}

impl fmt::Display for Fig6Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>4} @L2  P{}  pWCET {:>12.0}  mean {:>12.0}  +{:>6.2}%",
            self.l2_placement.short_name(),
            self.pressure,
            self.victim_pwcet,
            self.victim_mean,
            self.inflation_percent
        )
    }
}

/// The victim workload of the sweep: the paper's 20KB synthetic kernel —
/// larger than the L1, dependent on the (now shared) L2.
pub fn victim() -> SyntheticKernel {
    SyntheticKernel::fits_l2()
}

/// Runs the contention sweep: every placement policy at the shared L2 ×
/// every pressure level of the standard opponent ladder.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the platform configuration is invalid
/// or a checkpointed measurement fails.
pub fn generate(options: &ExperimentOptions) -> Result<Vec<Fig6Row>, ExperimentError> {
    let mut rows = Vec::new();
    for l2_placement in PlacementKind::ALL {
        let mut idle_pwcet = f64::NAN;
        for pressure in 0..CoSchedule::<SyntheticKernel>::PRESSURE_LEVELS {
            let schedule = CoSchedule::pressure_level(victim(), pressure);
            let measurement = runner::measure_contended(
                &schedule,
                l2_placement,
                options,
                options.campaign_seed ^ ((l2_placement as u64) << 8),
            )?;
            let report = runner::analyze_with_block_size(
                measurement.victim(),
                if measurement.adaptive.is_some() {
                    runner::ADAPTIVE_BLOCK_SIZE
                } else {
                    (measurement.victim().len() / 20).clamp(5, 50)
                },
            );
            let victim_pwcet = report.pwcet_at(CUTOFF_PROBABILITY);
            if pressure == 0 {
                idle_pwcet = victim_pwcet;
            }
            let inflation_percent = if idle_pwcet > 0.0 {
                (victim_pwcet / idle_pwcet - 1.0) * 100.0
            } else {
                0.0
            };
            rows.push(Fig6Row {
                l2_placement,
                pressure,
                opponents: schedule
                    .opponents()
                    .iter()
                    .map(|o| o.label())
                    .collect::<Vec<_>>()
                    .join("+"),
                victim_pwcet,
                victim_mean: measurement.victim().mean(),
                inflation_percent,
                runs: measurement.victim().len(),
                adaptive: measurement.adaptive,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_every_placement_and_pressure() {
        let options = ExperimentOptions::parse(["--quick"]).with_campaign_seed(7);
        let rows = generate(&options).unwrap();
        assert_eq!(rows.len(), 16, "4 placements x 4 pressure levels");
        for placement in PlacementKind::ALL {
            let of_placement: Vec<&Fig6Row> =
                rows.iter().filter(|r| r.l2_placement == placement).collect();
            assert_eq!(of_placement.len(), 4);
            // The idle row is the normalisation baseline.
            assert_eq!(of_placement[0].pressure, 0);
            assert_eq!(of_placement[0].inflation_percent, 0.0);
            for row in &of_placement {
                assert!(row.victim_pwcet.is_finite() && row.victim_pwcet > 0.0, "{row}");
                assert!(row.victim_mean > 0.0);
                assert!(row.adaptive.is_none());
            }
        }
    }

    #[test]
    fn contention_inflates_the_victim_mean() {
        // At every L2 placement, the heaviest co-schedule must cost the
        // victim more cycles on average than the idle one (the pWCET tail
        // is noisier at smoke-test run counts, so pin the mean).
        let options = ExperimentOptions::parse(["--quick"]).with_campaign_seed(3);
        let rows = generate(&options).unwrap();
        for placement in PlacementKind::ALL {
            let of_placement: Vec<&Fig6Row> =
                rows.iter().filter(|r| r.l2_placement == placement).collect();
            assert!(
                of_placement[3].victim_mean > of_placement[0].victim_mean,
                "{placement}: pressure 3 mean {} not above idle mean {}",
                of_placement[3].victim_mean,
                of_placement[0].victim_mean
            );
        }
    }
}
