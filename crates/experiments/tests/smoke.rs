//! Smoke tests: every experiment binary runs end-to-end with `--quick` and
//! prints non-empty, well-formed output.  These guard the argument parsing
//! in `cli.rs` and the wiring of each `[[bin]]` target, not the statistical
//! quality of the results (the paper-vs-measured record in EXPERIMENTS.md
//! tracks that).

use std::process::Command;

/// Runs one experiment binary with the given arguments and returns stdout.
fn run(exe: &str, args: &[&str]) -> String {
    let output = Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|err| panic!("failed to spawn {exe}: {err}"));
    assert!(
        output.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("experiment output is UTF-8");
    assert!(!stdout.trim().is_empty(), "{exe} printed nothing");
    stdout
}

/// Asserts that every non-comment line below the CSV header splits into
/// `fields` comma-separated fields, and that at least `min_rows` such data
/// rows exist.
fn assert_csv_rows(stdout: &str, header: &str, fields: usize, min_rows: usize) {
    let mut lines = stdout.lines();
    assert!(
        lines.any(|l| l == header),
        "missing CSV header {header:?} in output:\n{stdout}"
    );
    let rows: Vec<&str> = lines
        .take_while(|l| !l.is_empty())
        .filter(|l| !l.starts_with('#'))
        .collect();
    assert!(
        rows.len() >= min_rows,
        "expected at least {min_rows} data rows after {header:?}, got {}",
        rows.len()
    );
    for row in rows {
        assert_eq!(
            row.split(',').count(),
            fields,
            "malformed CSV row {row:?} (expected {fields} fields)"
        );
    }
}

#[test]
fn fig1_pwcet_curve_quick() {
    let stdout = run(env!("CARGO_BIN_EXE_fig1_pwcet_curve"), &["--quick"]);
    assert_csv_rows(
        &stdout,
        "exceedance_probability,execution_time_cycles",
        2,
        10,
    );
    assert!(stdout.contains("pWCET at the"), "missing cutoff summary");
}

#[test]
fn table1_hwcost_quick() {
    let stdout = run(env!("CARGO_BIN_EXE_table1_hwcost"), &["--quick"]);
    assert!(stdout.contains("ASIC 45nm"), "missing ASIC row:\n{stdout}");
    assert!(stdout.contains("FPGA"), "missing FPGA row:\n{stdout}");
    assert!(
        stdout.contains("Paper-reported values"),
        "missing paper comparison:\n{stdout}"
    );
}

#[test]
fn table2_iid_tests_quick() {
    let stdout = run(env!("CARGO_BIN_EXE_table2_iid_tests"), &["--quick"]);
    assert_csv_rows(
        &stdout,
        "benchmark,ww_statistic,ks_p_value,et_p_value,passed,runs",
        6,
        11,
    );
}

#[test]
fn table2_adaptive_quick() {
    // The convergence-driven protocol must cover all 11 benchmarks and
    // report the per-benchmark runs-to-convergence summary.
    let stdout = run(env!("CARGO_BIN_EXE_table2_iid_tests"), &["--adaptive", "--quick"]);
    assert_csv_rows(
        &stdout,
        "benchmark,ww_statistic,ks_p_value,et_p_value,passed,runs",
        6,
        11,
    );
    assert!(stdout.contains("# adaptive:"), "missing adaptive summary:\n{stdout}");
}

#[test]
fn fig4a_rm_vs_hrp_quick() {
    let stdout = run(env!("CARGO_BIN_EXE_fig4a_rm_vs_hrp"), &["--quick"]);
    assert_csv_rows(
        &stdout,
        "benchmark,pwcet_rm,pwcet_hrp,rm_over_hrp,tightening_percent",
        5,
        11,
    );
    assert!(stdout.contains("# tightening:"), "missing summary line");
}

#[test]
fn fig4b_rm_vs_det_quick() {
    let stdout = run(env!("CARGO_BIN_EXE_fig4b_rm_vs_det"), &["--quick"]);
    assert_csv_rows(&stdout, "benchmark,pwcet_rm,deterministic_hwm,rm_over_hwm", 4, 11);
}

#[test]
fn fig5_synthetic_quick() {
    let stdout = run(env!("CARGO_BIN_EXE_fig5_synthetic"), &["--quick"]);
    assert!(
        stdout.contains("RM execution-time histogram"),
        "missing RM histogram:\n{stdout}"
    );
    assert!(
        stdout.contains("hRP execution-time histogram"),
        "missing hRP histogram:\n{stdout}"
    );
    assert!(stdout.contains("pWCET curves"), "missing curve section");
}

#[test]
fn fig5_large_footprint_quick() {
    // The multi-MB scenario the packed streaming pipeline enables: the 1MB
    // and 4MB synthetic sweeps plus the L2-sized EEMBC-like stress kernel
    // must run to completion under --quick.
    let stdout = run(env!("CARGO_BIN_EXE_fig5_synthetic"), &["--quick", "--large"]);
    assert!(
        stdout.contains("1024KB footprint"),
        "missing 1MB sweep:\n{stdout}"
    );
    assert!(
        stdout.contains("4096KB footprint"),
        "missing 4MB sweep:\n{stdout}"
    );
    assert!(
        stdout.contains("eembc-stress-128kb"),
        "missing L2-sized stress kernel:\n{stdout}"
    );
    assert!(stdout.contains("spread ratio"), "missing comparison:\n{stdout}");
}

#[test]
fn thread_override_is_accepted_and_preserves_results() {
    // --threads must parse and must not change the measured sample (runs
    // are independent; partitioning them differently is invisible).
    let one = run(
        env!("CARGO_BIN_EXE_fig1_pwcet_curve"),
        &["--quick", "--threads", "1"],
    );
    let four = run(
        env!("CARGO_BIN_EXE_fig1_pwcet_curve"),
        &["--quick", "--threads", "4"],
    );
    assert_eq!(one, four, "thread count changed experiment output");
}

#[test]
fn sec44_avg_performance_quick() {
    let stdout = run(env!("CARGO_BIN_EXE_sec44_avg_performance"), &["--quick"]);
    assert_csv_rows(
        &stdout,
        "benchmark,rm_mean_cycles,modulo_cycles,degradation_percent,rm_runs",
        5,
        11,
    );
    assert!(stdout.contains("# degradation:"), "missing summary line");
}

#[test]
fn fig1_adaptive_quick() {
    let stdout = run(
        env!("CARGO_BIN_EXE_fig1_pwcet_curve"),
        &["--adaptive", "--quick"],
    );
    assert_csv_rows(
        &stdout,
        "exceedance_probability,execution_time_cycles",
        2,
        10,
    );
    assert!(
        stdout.contains("# adaptive:"),
        "missing convergence record:\n{stdout}"
    );
}

#[test]
fn invalid_flag_values_warn_on_stderr_and_do_not_abort() {
    // `--threads lots` is rejected with a warning naming the flag and the
    // value, and the experiment still runs with the default.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_fig1_pwcet_curve"))
        .args(["--quick", "--threads", "lots"])
        .output()
        .expect("failed to spawn fig1_pwcet_curve");
    assert!(output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--threads") && stderr.contains("lots"),
        "missing rejected-value warning on stderr:\n{stderr}"
    );
}

#[test]
fn run_all_quick() {
    let stdout = run(env!("CARGO_BIN_EXE_run_all"), &["--quick"]);
    for artefact in [
        "table1_hwcost",
        "fig1_pwcet_curve",
        "table2_iid_tests",
        "fig4a_rm_vs_hrp",
        "fig4b_rm_vs_det",
        "fig5_synthetic",
        "sec44_avg_performance",
        "fig6_contention",
    ] {
        assert!(stdout.contains(artefact), "missing {artefact} in:\n{stdout}");
    }
    assert!(!stdout.contains("FAILED"), "an experiment failed:\n{stdout}");
    assert!(stdout.contains("# all experiments completed"));
}

#[test]
fn fig6_contention_quick() {
    let stdout = run(env!("CARGO_BIN_EXE_fig6_contention"), &["--quick"]);
    assert_csv_rows(
        &stdout,
        "l2_placement,pressure,opponents,victim_pwcet,victim_mean,inflation_percent,runs",
        7,
        16,
    );
    // All four placement policies appear at the shared L2, and the idle
    // baseline rows report zero inflation.
    for placement in ["MOD", "XOR", "hRP", "RM"] {
        assert!(
            stdout.contains(&format!("{placement},0,idle")),
            "missing idle baseline for {placement}:\n{stdout}"
        );
    }
}

#[test]
fn fig6_contention_adaptive_quick() {
    let stdout = run(
        env!("CARGO_BIN_EXE_fig6_contention"),
        &["--quick", "--adaptive"],
    );
    assert_csv_rows(
        &stdout,
        "l2_placement,pressure,opponents,victim_pwcet,victim_mean,inflation_percent,runs",
        7,
        16,
    );
    assert!(
        stdout.contains("# adaptive:"),
        "missing convergence record:\n{stdout}"
    );
}

#[test]
fn sharded_kill_and_resume_reproduces_the_uninterrupted_output() {
    // The crash-safety acceptance path, end to end through a real binary:
    // golden run → sharded run (byte-identical stdout) → `kill -9`-style
    // crash mid-campaign (nonzero exit, no CSV) → resume (byte-identical
    // stdout again, with the resumed shards reported on stderr).
    let golden = run(env!("CARGO_BIN_EXE_fig1_pwcet_curve"), &["--quick"]);
    let dir = std::env::temp_dir().join(format!("randmod-smoke-ckpt-{}", std::process::id()));
    let dir_str = dir.to_str().unwrap().to_string();
    let shard_args = ["--quick", "--shards", "4", "--checkpoint", dir_str.as_str()];

    // Sharding alone must not change a single output byte.
    let sharded = run(env!("CARGO_BIN_EXE_fig1_pwcet_curve"), &shard_args);
    assert_eq!(sharded, golden, "sharding changed the experiment output");

    // Crash immediately after the second shard checkpoint persists.
    let crashed = Command::new(env!("CARGO_BIN_EXE_fig1_pwcet_curve"))
        .args(shard_args)
        .env("RANDMOD_KILL_AFTER_SHARD", "2")
        .output()
        .expect("failed to spawn fig1_pwcet_curve");
    assert!(
        !crashed.status.success(),
        "the crash hook did not fire:\n{}",
        String::from_utf8_lossy(&crashed.stderr)
    );

    // Resume completes the remaining shards and reproduces the golden
    // output bit for bit.
    let resumed = Command::new(env!("CARGO_BIN_EXE_fig1_pwcet_curve"))
        .args(["--quick", "--shards", "4", "--checkpoint", &dir_str, "--resume"])
        .output()
        .expect("failed to spawn fig1_pwcet_curve");
    assert!(
        resumed.status.success(),
        "resume failed:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        golden,
        "resumed run diverged from the uninterrupted output"
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("resumed 2 shard(s)"),
        "resume progress missing from stderr:\n{stderr}"
    );

    // A different campaign (different seed) fingerprints to a *different*
    // checkpoint file in the same directory, so resuming there can never
    // replay the old campaign's shards: it starts fresh instead.
    let mismatched = Command::new(env!("CARGO_BIN_EXE_fig1_pwcet_curve"))
        .args([
            "--quick",
            "--shards",
            "4",
            "--checkpoint",
            &dir_str,
            "--resume",
            "--seed",
            "99",
        ])
        .output()
        .expect("failed to spawn fig1_pwcet_curve");
    assert!(
        mismatched.status.success(),
        "a different seed names a different checkpoint file and must start fresh:\n{}",
        String::from_utf8_lossy(&mismatched.stderr)
    );
    assert!(
        String::from_utf8_lossy(&mismatched.stderr).contains("resumed 0 shard(s)"),
        "a different campaign must not resume the old campaign's shards:\n{}",
        String::from_utf8_lossy(&mismatched.stderr)
    );
    std::fs::remove_dir_all(&dir).expect("failed to clean up the checkpoint directory");
}

#[test]
fn quick_runs_override_is_clamped_not_fatal() {
    // `--runs 1` used to panic deep in the ET test; it must now clamp to
    // the pipeline minimum and complete.
    let stdout = run(env!("CARGO_BIN_EXE_fig1_pwcet_curve"), &["--quick", "--runs", "1"]);
    assert!(stdout.contains("runs = 20"), "runs not clamped:\n{stdout}");
}
