//! Golden pins: recorded EXPERIMENTS.md numbers asserted from the fixed
//! default seed schedule, so a silent numerical drift anywhere in the
//! pipeline (placement hashing, replacement RNG, replay engine, EVT fit)
//! fails CI instead of quietly invalidating the published record.
//!
//! Every value here was measured at the default campaign seed
//! (`0xC0FFEE`) with the default 300-run schedule; the simulation is a
//! pure function of the seed schedule, so these are exact reproductions,
//! not statistical expectations.  If an intentional engine change shifts
//! them, re-measure and update EXPERIMENTS.md *and* these pins together.

use randmod_core::PlacementKind;
use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::fig4::CUTOFF_PROBABILITY;
use randmod_experiments::{fig1, fig6, runner, table2};
use randmod_workloads::{CoSchedule, EembcBenchmark};

/// The recorded Figure 1 headline number: pWCET(10⁻¹⁵) = 171,639 cycles
/// for the 20KB synthetic kernel under RM at the default schedule.
#[test]
fn fig1_pwcet_at_cutoff_matches_the_recorded_value() {
    let result = fig1::generate(&ExperimentOptions::default()).unwrap();
    assert_eq!(result.runs, 300);
    assert_eq!(result.cutoff_probability, 1e-15);
    assert_eq!(
        result.pwcet_at_cutoff.round() as u64,
        171_639,
        "fig1 pWCET drifted from the EXPERIMENTS.md record: {}",
        result.pwcet_at_cutoff
    );
    // The curve that produced it is monotone and complete.
    assert_eq!(result.points.len(), 18);
    for pair in result.points.windows(2) {
        assert!(pair[0].execution_time <= pair[1].execution_time);
    }
}

/// The recorded `fig6_contention` RM/P2 cell: the 20KB synthetic victim
/// against one 128KB stress kernel on a Random-Modulo shared L2, at the
/// default schedule (300 runs, seed `0xC0FFEE`, round-robin
/// arbitration) — the EXPERIMENTS.md row "RM ... P2 +3.41%" over its
/// 163,748-cycle idle baseline.  The cell is computed exactly as
/// `fig6::generate` computes it (same per-placement campaign seed, same
/// sample-scaled block size), so the pin covers the contended campaign
/// pipeline end to end — including the lane-batched round-robin engine
/// the default lane count selects.
#[test]
fn fig6_rm_p2_victim_pwcet_matches_the_recorded_value() {
    let options = ExperimentOptions::default();
    let placement = PlacementKind::RandomModulo;
    let schedule = CoSchedule::pressure_level(fig6::victim(), 2);
    let measurement = runner::measure_contended(
        &schedule,
        placement,
        &options,
        options.campaign_seed ^ ((placement as u64) << 8),
    )
    .unwrap();
    let victim = measurement.victim();
    assert_eq!(victim.len(), 300);
    let report = runner::analyze_with_block_size(victim, (victim.len() / 20).clamp(5, 50));
    let pwcet = report.pwcet_at(CUTOFF_PROBABILITY);
    assert_eq!(
        pwcet.round() as u64,
        169_328,
        "fig6 RM/P2 victim pWCET drifted from the EXPERIMENTS.md record: {pwcet}"
    );
    assert_eq!(
        victim.mean().round() as u64,
        162_650,
        "fig6 RM/P2 victim mean drifted: {}",
        victim.mean()
    );
}

/// The recorded Table 2 `cacheb` row — the suite's one statistically
/// interesting benchmark at the default seed (deviation D1 in
/// EXPERIMENTS.md: WW 2.669 > 1.96, so it fails the independence test
/// while passing KS).  Pinning the outlier catches drift in both the
/// campaign pipeline and the i.i.d. statistics.
#[test]
fn table2_cacheb_row_matches_the_recorded_values() {
    let row = table2::row_for(EembcBenchmark::Cacheb, &ExperimentOptions::default()).unwrap();
    assert_eq!(row.runs, 300);
    assert_eq!(row.converged, None);
    assert!(
        (row.ww_statistic - 2.669).abs() < 1e-3,
        "cacheb WW statistic drifted: {}",
        row.ww_statistic
    );
    assert!(
        (row.ks_p_value - 0.607).abs() < 1e-3,
        "cacheb KS p-value drifted: {}",
        row.ks_p_value
    );
    assert!(
        (row.et_p_value - 0.195).abs() < 1e-3,
        "cacheb ET p-value drifted: {}",
        row.et_p_value
    );
    assert!(!row.passed, "cacheb unexpectedly passed (D1 resolved?): {row}");
}
