//! Golden pins: recorded EXPERIMENTS.md numbers asserted from the fixed
//! default seed schedule, so a silent numerical drift anywhere in the
//! pipeline (placement hashing, replacement RNG, replay engine, EVT fit)
//! fails CI instead of quietly invalidating the published record.
//!
//! Every value here was measured at the default campaign seed
//! (`0xC0FFEE`) with the default 300-run schedule; the simulation is a
//! pure function of the seed schedule, so these are exact reproductions,
//! not statistical expectations.  If an intentional engine change shifts
//! them, re-measure and update EXPERIMENTS.md *and* these pins together.

use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::{fig1, table2};
use randmod_workloads::EembcBenchmark;

/// The recorded Figure 1 headline number: pWCET(10⁻¹⁵) = 171,639 cycles
/// for the 20KB synthetic kernel under RM at the default schedule.
#[test]
fn fig1_pwcet_at_cutoff_matches_the_recorded_value() {
    let result = fig1::generate(&ExperimentOptions::default()).unwrap();
    assert_eq!(result.runs, 300);
    assert_eq!(result.cutoff_probability, 1e-15);
    assert_eq!(
        result.pwcet_at_cutoff.round() as u64,
        171_639,
        "fig1 pWCET drifted from the EXPERIMENTS.md record: {}",
        result.pwcet_at_cutoff
    );
    // The curve that produced it is monotone and complete.
    assert_eq!(result.points.len(), 18);
    for pair in result.points.windows(2) {
        assert!(pair[0].execution_time <= pair[1].execution_time);
    }
}

/// The recorded Table 2 `cacheb` row — the suite's one statistically
/// interesting benchmark at the default seed (deviation D1 in
/// EXPERIMENTS.md: WW 2.669 > 1.96, so it fails the independence test
/// while passing KS).  Pinning the outlier catches drift in both the
/// campaign pipeline and the i.i.d. statistics.
#[test]
fn table2_cacheb_row_matches_the_recorded_values() {
    let row = table2::row_for(EembcBenchmark::Cacheb, &ExperimentOptions::default()).unwrap();
    assert_eq!(row.runs, 300);
    assert_eq!(row.converged, None);
    assert!(
        (row.ww_statistic - 2.669).abs() < 1e-3,
        "cacheb WW statistic drifted: {}",
        row.ww_statistic
    );
    assert!(
        (row.ks_p_value - 0.607).abs() < 1e-3,
        "cacheb KS p-value drifted: {}",
        row.ks_p_value
    );
    assert!(
        (row.et_p_value - 0.195).abs() < 1e-3,
        "cacheb ET p-value drifted: {}",
        row.et_p_value
    );
    assert!(!row.passed, "cacheb unexpectedly passed (D1 resolved?): {row}");
}
