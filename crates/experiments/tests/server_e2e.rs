//! End-to-end client-mode pins: the experiment pipeline driven through a
//! live campaign server reproduces the recorded EXPERIMENTS.md numbers
//! bit for bit.
//!
//! The headline assertion reproduces the Figure 1 golden value —
//! pWCET(10⁻¹⁵) = 171,639 cycles for the 20KB synthetic kernel under RM
//! at the default 300-run schedule — with every run simulated inside the
//! server process and the sample shipped back over the wire.  The warm
//! path then resubmits the same campaign and must be served from the
//! server's content-addressed store with byte-identical results.

use randmod_core::PlacementKind;
use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::{fig1, runner};
use randmod_server::{encode_spec, start, CampaignSpec, Client, ResultStore, ServerConfig, SpecMode};
use randmod_sim::{encode_solo_runs, Campaign};
use randmod_workloads::{MemoryLayout, SyntheticKernel, Workload};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("randmod_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fig1_through_the_server_reproduces_the_golden_pwcet() {
    let dir = temp_dir("fig1");
    let store = ResultStore::in_dir(&dir).unwrap();
    let handle = start(ServerConfig::default(), store).unwrap();
    let addr = handle.addr().to_string();

    // The exact fig1 protocol, offloaded: default options are the golden
    // schedule (300 runs, campaign seed 0xC0FFEE).
    let remote_options = ExperimentOptions::default().with_server(addr.clone());
    let remote = fig1::generate(&remote_options).unwrap();
    assert_eq!(remote.runs, 300);
    assert_eq!(remote.cutoff_probability, 1e-15);
    assert_eq!(
        remote.pwcet_at_cutoff.round() as u64,
        171_639,
        "server-computed fig1 pWCET drifted from the EXPERIMENTS.md record: {}",
        remote.pwcet_at_cutoff
    );

    // The entire artefact — every curve point, not just the headline —
    // is identical to the local pipeline's.
    let local = fig1::generate(&ExperimentOptions::default()).unwrap();
    assert_eq!(remote, local, "client mode must be invisible to the results");

    // Warm resubmission of the same underlying spec: a cache hit whose
    // body is byte-identical to the direct engine path.
    let kernel = SyntheticKernel::fits_l2();
    let trace = kernel.packed_trace(&MemoryLayout::default());
    let platform = runner::platform_with_l1(PlacementKind::RandomModulo);
    let campaign = Campaign::new(platform, 300).with_campaign_seed(0xC0FFEE);
    let seeds = campaign.seed_schedule();
    let spec = CampaignSpec {
        config: platform,
        campaign_seed: 0xC0FFEE,
        mode: SpecMode::Fixed(seeds.clone()),
        trace: trace.clone(),
    };
    let mut client = Client::connect(handle.addr()).unwrap();
    let warm = client.post("/campaign", &encode_spec(&spec)).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(
        warm.header("X-Randmod-Cache"),
        Some("hit"),
        "the fig1 campaign must already be in the store"
    );
    let direct = encode_solo_runs(campaign.run_seeds(&trace, &seeds).unwrap().runs());
    assert_eq!(warm.body, direct, "cached bytes must match the direct engine");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_mode_sample_is_bit_identical_to_the_local_engine() {
    let dir = temp_dir("parity");
    let store = ResultStore::in_dir(&dir).unwrap();
    let handle = start(ServerConfig::default(), store).unwrap();
    let addr = handle.addr().to_string();

    let kernel = SyntheticKernel::with_traversals(8 * 1024, 3);
    let local_options = ExperimentOptions::default().with_runs(24).with_campaign_seed(13);
    let remote_options = local_options.clone().with_server(addr);

    let local =
        runner::measure_campaign(&kernel, PlacementKind::RandomModulo, &local_options, 13).unwrap();
    // Cold (computed server-side) and warm (served from the store) both
    // reproduce the local sample exactly.
    for round in ["cold", "warm"] {
        let remote =
            runner::measure_campaign(&kernel, PlacementKind::RandomModulo, &remote_options, 13)
                .unwrap();
        assert!(remote.adaptive.is_none());
        assert_eq!(remote, local, "{round} client-mode sample diverged");
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adaptive_campaigns_ignore_the_server_and_run_locally() {
    // The runner must not even attempt a connection for adaptive
    // campaigns: a nonsense address only fails if it is dialled.
    let kernel = SyntheticKernel::with_traversals(8 * 1024, 3);
    let options = ExperimentOptions::default()
        .with_server("this-host-does-not-exist:1")
        .with_adaptive()
        .with_max_runs(40)
        .with_target_cv(0.1);
    let measurement =
        runner::measure_campaign(&kernel, PlacementKind::RandomModulo, &options, 3).unwrap();
    assert!(measurement.adaptive.is_some(), "adaptive mode must run locally");
}

#[test]
fn an_unreachable_server_is_a_contextual_error() {
    // Port 1 on loopback refuses immediately; the runner must surface a
    // diagnosable Server error, not panic or hang.
    let kernel = SyntheticKernel::with_traversals(8 * 1024, 2);
    let options = ExperimentOptions::default()
        .with_runs(12)
        .with_server("127.0.0.1:1");
    let err = runner::measure_campaign(&kernel, PlacementKind::RandomModulo, &options, 3)
        .unwrap_err();
    let message = err.to_string();
    assert!(message.contains("campaign server"), "{message}");
    assert!(message.contains("127.0.0.1:1"), "{message}");
}
