//! Request handling: routing, validation, campaign execution and the
//! result cache, independent of any socket.
//!
//! The [`Service`] is the testable core of the server: it maps one
//! parsed [`crate::http::Request`] to one [`Action`] — a plain
//! response or a chunked stream — with no I/O of its own beyond the
//! result store.  Validation is strict and refusals are contextual: a
//! malformed spec, an inconsistent platform, a degenerate convergence
//! criterion or an oversized schedule each name the offending field in
//! a JSON error body.  Backpressure is a bounded permit pool: when every
//! worker slot is busy a cache miss is answered `429` with
//! `Retry-After` instead of queueing unboundedly; cache hits bypass the
//! pool entirely, which is what makes the warm path cheap.

use crate::body::{
    decode_adaptive_record, decode_spec, encode_adaptive_record, AdaptiveRecord, CampaignSpec,
    SpecMode,
};
use crate::http::Request;
use crate::store::ResultStore;
use randmod_mbpta::online::ConvergenceCriterion;
use randmod_sim::checkpoint::Fingerprint;
use randmod_sim::{encode_solo_runs, Campaign};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hard cap on the number of runs one submission may request, fixed or
/// adaptive.  Keeps a single request from monopolising a worker for
/// hours; split larger campaigns across submissions (the cache makes
/// re-submission of finished work free).
pub const MAX_RUNS_PER_CAMPAIGN: usize = 100_000;

/// `total_runs` value used in cache-entry headers of adaptive
/// campaigns, whose run count is an output, not an input (the criterion
/// is part of the cache key instead).
const ADAPTIVE_TOTAL_RUNS: u64 = 0;

/// What the connection layer should send back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// An ordinary response with a complete body.
    Simple {
        /// HTTP status code.
        status: u16,
        /// Extra response headers (on top of `Content-Length`).
        headers: Vec<(&'static str, String)>,
        /// Response body.
        body: Vec<u8>,
    },
    /// A chunked-transfer response streamed piece by piece.
    Stream {
        /// HTTP status code.
        status: u16,
        /// Extra response headers (on top of `Transfer-Encoding`).
        headers: Vec<(&'static str, String)>,
        /// The chunks, in order; empty chunks are skipped on the wire.
        chunks: Vec<Vec<u8>>,
    },
}

impl Action {
    /// The response status code.
    pub fn status(&self) -> u16 {
        match self {
            Action::Simple { status, .. } | Action::Stream { status, .. } => *status,
        }
    }
}

/// Releases one worker permit when dropped.
struct Permit<'a> {
    pool: &'a AtomicUsize,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.pool.fetch_add(1, Ordering::SeqCst);
    }
}

/// The campaign-execution service behind the HTTP layer.
pub struct Service {
    store: ResultStore,
    /// Free worker slots; a miss holds one for the whole computation.
    permits: AtomicUsize,
    workers: usize,
    /// Serialises saves: the file store's atomic-rename temp name is
    /// unique per process, not per thread, so two concurrent saves of
    /// the same key must not interleave.
    save_lock: Mutex<()>,
    campaign_threads: Option<usize>,
    campaign_lanes: Option<usize>,
}

impl Service {
    /// Creates a service executing at most `workers` campaigns at once.
    pub fn new(store: ResultStore, workers: usize) -> Self {
        let workers = workers.max(1);
        Service {
            store,
            permits: AtomicUsize::new(workers),
            workers,
            save_lock: Mutex::new(()),
            campaign_threads: None,
            campaign_lanes: None,
        }
    }

    /// Overrides the per-campaign thread count (default: one thread per
    /// campaign, so `workers` bounds total parallelism).
    pub fn with_campaign_threads(mut self, threads: usize) -> Self {
        self.campaign_threads = Some(threads.max(1));
        self
    }

    /// Overrides the per-campaign seed-lane width.
    pub fn with_campaign_lanes(mut self, lanes: usize) -> Self {
        self.campaign_lanes = Some(lanes.max(1));
        self
    }

    /// The configured worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut current = self.permits.load(Ordering::SeqCst);
        loop {
            if current == 0 {
                return None;
            }
            match self.permits.compare_exchange(
                current,
                current - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some(Permit { pool: &self.permits }),
                Err(now) => current = now,
            }
        }
    }

    /// Routes one request to its action.  Never panics: every failure
    /// mode maps to a refusal response.
    pub fn handle(&self, request: &Request) -> Action {
        match (request.method.as_str(), request.target.as_str()) {
            ("GET", "/healthz") => self.health(),
            ("POST", "/campaign") => self.campaign(&request.body),
            (_, "/healthz") => method_not_allowed("GET"),
            (_, "/campaign") => method_not_allowed("POST"),
            _ => refuse(404, "no such endpoint (try GET /healthz or POST /campaign)"),
        }
    }

    fn health(&self) -> Action {
        let idle = self.permits.load(Ordering::SeqCst);
        let body = format!(
            "{{\"status\":\"ok\",\"workers\":{},\"idle_workers\":{},\"store\":\"{}\"}}\n",
            self.workers,
            idle,
            json_escape(self.store.description()),
        );
        Action::Simple {
            status: 200,
            headers: vec![("Content-Type", "application/json".to_string())],
            body: body.into_bytes(),
        }
    }

    fn campaign(&self, body: &[u8]) -> Action {
        let spec = match decode_spec(body) {
            Ok(spec) => spec,
            Err(err) => return refuse(400, &err.to_string()),
        };
        if let Err(err) = spec.config.validate() {
            return refuse(400, &format!("invalid platform config: {err}"));
        }
        match &spec.mode {
            SpecMode::Fixed(seeds) => self.fixed_campaign(&spec, seeds.clone()),
            SpecMode::Adaptive(criterion) => self.adaptive_campaign(&spec, *criterion),
        }
    }

    fn build_campaign(&self, spec: &CampaignSpec, runs: usize) -> Campaign {
        let mut campaign =
            Campaign::new(spec.config, runs).with_campaign_seed(spec.campaign_seed);
        if let Some(threads) = self.campaign_threads {
            campaign = campaign.with_threads(threads);
        } else {
            campaign = campaign.with_threads(1);
        }
        if let Some(lanes) = self.campaign_lanes {
            campaign = campaign.with_lanes(lanes);
        }
        campaign
    }

    fn fixed_campaign(&self, spec: &CampaignSpec, seeds: Vec<u64>) -> Action {
        if seeds.is_empty() {
            return refuse(400, "seed schedule: a fixed campaign needs at least one seed");
        }
        if seeds.len() > MAX_RUNS_PER_CAMPAIGN {
            return refuse(
                400,
                &format!(
                    "seed schedule: {} seeds exceeds the per-campaign cap of {} \
                     (split the campaign across submissions)",
                    seeds.len(),
                    MAX_RUNS_PER_CAMPAIGN
                ),
            );
        }
        let campaign = self.build_campaign(spec, seeds.len());
        let key = campaign.campaign_fingerprint(&spec.trace, &seeds);
        let total_runs = seeds.len() as u64;
        if let Some(payload) = self.store.load(key, total_runs) {
            return result_response(key, "hit", payload);
        }
        let _permit = match self.try_acquire() {
            Some(permit) => permit,
            None => return busy(),
        };
        let result = match campaign.run_seeds(&spec.trace, &seeds) {
            Ok(result) => result,
            Err(err) => return refuse(400, &format!("invalid platform config: {err}")),
        };
        let payload = encode_solo_runs(result.runs());
        self.persist(key, total_runs, &payload);
        result_response(key, "miss", payload)
    }

    fn adaptive_campaign(&self, spec: &CampaignSpec, criterion: ConvergenceCriterion) -> Action {
        if let Err(detail) = validate_criterion(&criterion) {
            return refuse(400, &detail);
        }
        let campaign = self.build_campaign(spec, criterion.max_runs);
        let key = adaptive_key(&campaign, spec, &criterion);
        if let Some(payload) = self.store.load(key, ADAPTIVE_TOTAL_RUNS) {
            if let Some(record) = decode_adaptive_record(&payload) {
                return stream_response(key, "hit", &record);
            }
            // A payload that decoded as a checkpoint but not as an
            // adaptive record is damage below the checksum's radar;
            // recompute.
        }
        let _permit = match self.try_acquire() {
            Some(permit) => permit,
            None => return busy(),
        };
        let result = match campaign.run_adaptive(&spec.trace, &criterion) {
            Ok(result) => result,
            Err(err) => return refuse(400, &format!("invalid platform config: {err}")),
        };
        let record = AdaptiveRecord::new(
            result.runs_used(),
            result.converged(),
            result.pwcet_estimate(),
            result.trajectory(),
        );
        self.persist(key, ADAPTIVE_TOTAL_RUNS, &encode_adaptive_record(&record));
        stream_response(key, "miss", &record)
    }

    fn persist(&self, key: u64, total_runs: u64, payload: &[u8]) {
        let _guard = self.save_lock.lock();
        // A failed save is logged by the caller's absence of a cache hit
        // next time; the computed response is still correct.
        let _ = self.store.save(key, total_runs, payload);
    }
}

/// The cache key of an adaptive submission: the fixed-campaign
/// fingerprint machinery over the trace and platform, extended with the
/// campaign seed (which picks the seed sequence) and every criterion
/// field (which picks the stopping rule and hence the result).
fn adaptive_key(campaign: &Campaign, spec: &CampaignSpec, criterion: &ConvergenceCriterion) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write(b"adaptive");
    fp.write_u64(campaign.campaign_fingerprint(&spec.trace, &[]));
    fp.write_u64(spec.campaign_seed);
    fp.write_u64(criterion.target_probability.to_bits());
    fp.write_u64(criterion.relative_tolerance.to_bits());
    fp.write_u64(criterion.stable_checkpoints as u64);
    fp.write_u64(criterion.check_interval as u64);
    fp.write_u64(criterion.min_runs as u64);
    fp.write_u64(criterion.max_runs as u64);
    fp.write_u64(criterion.block_size as u64);
    fp.finish()
}

/// Pre-validates a convergence criterion so a hostile submission can
/// never reach the tracker's internal assertions.
fn validate_criterion(criterion: &ConvergenceCriterion) -> Result<(), String> {
    if !(criterion.target_probability > 0.0 && criterion.target_probability < 1.0) {
        return Err(format!(
            "target probability: {} is not in (0, 1)",
            criterion.target_probability
        ));
    }
    if !(criterion.relative_tolerance.is_finite() && criterion.relative_tolerance > 0.0) {
        return Err(format!(
            "relative tolerance: {} is not finite and positive",
            criterion.relative_tolerance
        ));
    }
    for (name, value) in [
        ("stable checkpoints", criterion.stable_checkpoints),
        ("check interval", criterion.check_interval),
        ("block size", criterion.block_size),
        ("max runs", criterion.max_runs),
    ] {
        if value == 0 {
            return Err(format!("{name}: must be at least 1"));
        }
    }
    if criterion.max_runs > MAX_RUNS_PER_CAMPAIGN {
        return Err(format!(
            "max runs: {} exceeds the per-campaign cap of {}",
            criterion.max_runs, MAX_RUNS_PER_CAMPAIGN
        ));
    }
    if criterion.min_runs > criterion.max_runs {
        return Err(format!(
            "min runs: {} exceeds max runs {}",
            criterion.min_runs, criterion.max_runs
        ));
    }
    Ok(())
}

fn result_response(key: u64, cache: &str, payload: Vec<u8>) -> Action {
    Action::Simple {
        status: 200,
        headers: vec![
            ("Content-Type", "application/octet-stream".to_string()),
            ("X-Randmod-Cache", cache.to_string()),
            ("X-Randmod-Key", format!("{key:016x}")),
        ],
        body: payload,
    }
}

/// Renders the streamed trajectory: one JSON line per checkpoint, then
/// a summary line.  Built from the persisted record, so a warm replay
/// streams bytes identical to the cold run that produced it.
fn stream_response(key: u64, cache: &str, record: &AdaptiveRecord) -> Action {
    let mut chunks = Vec::with_capacity(record.trajectory.len() + 1);
    for &(runs, pwcet, delta) in &record.trajectory {
        let delta_json = if delta.is_finite() {
            format!("{delta}")
        } else {
            "null".to_string()
        };
        chunks.push(
            format!("{{\"runs\":{runs},\"pwcet\":{pwcet},\"delta\":{delta_json}}}\n").into_bytes(),
        );
    }
    chunks.push(
        format!(
            "{{\"converged\":{},\"runs_used\":{},\"pwcet\":{}}}\n",
            record.converged, record.runs_used, record.pwcet_estimate
        )
        .into_bytes(),
    );
    Action::Stream {
        status: 200,
        headers: vec![
            ("Content-Type", "application/x-ndjson".to_string()),
            ("X-Randmod-Cache", cache.to_string()),
            ("X-Randmod-Key", format!("{key:016x}")),
        ],
        chunks,
    }
}

fn refuse(status: u16, detail: &str) -> Action {
    Action::Simple {
        status,
        headers: vec![("Content-Type", "application/json".to_string())],
        body: format!("{{\"error\":\"{}\"}}\n", json_escape(detail)).into_bytes(),
    }
}

fn busy() -> Action {
    Action::Simple {
        status: 429,
        headers: vec![
            ("Content-Type", "application/json".to_string()),
            ("Retry-After", "1".to_string()),
        ],
        body: b"{\"error\":\"all workers busy; retry shortly\"}\n".to_vec(),
    }
}

fn method_not_allowed(allow: &'static str) -> Action {
    Action::Simple {
        status: 405,
        headers: vec![
            ("Content-Type", "application/json".to_string()),
            ("Allow", allow.to_string()),
        ],
        body: format!("{{\"error\":\"method not allowed; use {allow}\"}}\n").into_bytes(),
    }
}

fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::encode_spec;
    use randmod_core::{Address, PlacementKind};
    use randmod_sim::config::PlatformConfig;
    use randmod_sim::trace::{MemEvent, Trace};
    use randmod_sim::PackedTrace;

    fn post(body: Vec<u8>) -> Request {
        Request {
            method: "POST".to_string(),
            target: "/campaign".to_string(),
            headers: Vec::new(),
            body,
            close: false,
        }
    }

    fn sample_spec(mode: SpecMode) -> CampaignSpec {
        let mut trace = Trace::new();
        for i in 0..64u64 {
            trace.push(MemEvent::InstrFetch(Address::new(0x1000 + i * 32)));
            trace.push(MemEvent::Load(Address::new(0x9000 + (i % 8) * 64)));
        }
        CampaignSpec {
            config: PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
            campaign_seed: 42,
            mode,
            trace: PackedTrace::from(&trace),
        }
    }

    fn memory_service() -> Service {
        let dir = std::env::temp_dir().join(format!(
            "randmod_service_test_{}_{:x}",
            std::process::id(),
            &dir_nonce() % 0xFFFF_FFFF
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Service::new(ResultStore::in_dir(dir).unwrap(), 2)
    }

    fn dir_nonce() -> u64 {
        use std::sync::atomic::AtomicU64;
        static NONCE: AtomicU64 = AtomicU64::new(1);
        NONCE.fetch_add(1, Ordering::Relaxed)
    }

    #[test]
    fn health_reports_ok() {
        let service = memory_service();
        let request = Request {
            method: "GET".to_string(),
            target: "/healthz".to_string(),
            headers: Vec::new(),
            body: Vec::new(),
            close: false,
        };
        let action = service.handle(&request);
        assert_eq!(action.status(), 200);
    }

    #[test]
    fn unknown_routes_and_methods_are_refused() {
        let service = memory_service();
        let mut request = post(Vec::new());
        request.target = "/nope".to_string();
        assert_eq!(service.handle(&request).status(), 404);
        let mut request = post(Vec::new());
        request.method = "DELETE".to_string();
        assert_eq!(service.handle(&request).status(), 405);
    }

    #[test]
    fn malformed_specs_get_contextual_400s() {
        let service = memory_service();
        let action = service.handle(&post(b"garbage".to_vec()));
        assert_eq!(action.status(), 400);
        if let Action::Simple { body, .. } = action {
            let text = String::from_utf8(body).unwrap();
            assert!(text.contains("RMSPEC01"), "{text}");
        } else {
            panic!("refusal must be a simple response");
        }
    }

    #[test]
    fn fixed_campaign_misses_then_hits() {
        let service = memory_service();
        let spec = sample_spec(SpecMode::Fixed(vec![1, 2, 3]));
        let body = encode_spec(&spec);

        let cold = service.handle(&post(body.clone()));
        let warm = service.handle(&post(body));
        let (cold_body, cold_cache) = unpack(cold);
        let (warm_body, warm_cache) = unpack(warm);
        assert_eq!(cold_cache, "miss");
        assert_eq!(warm_cache, "hit");
        assert_eq!(cold_body, warm_body, "warm hit must be byte-identical");
        assert!(!cold_body.is_empty());
    }

    #[test]
    fn degenerate_criteria_are_refused_not_panicked() {
        let service = memory_service();
        for criterion in [
            ConvergenceCriterion::default().with_target_probability(0.0),
            ConvergenceCriterion::default().with_target_probability(f64::NAN),
            ConvergenceCriterion::default().with_relative_tolerance(-1.0),
            ConvergenceCriterion::default().with_block_size(0),
            ConvergenceCriterion::default().with_check_interval(0),
            ConvergenceCriterion::default().with_stable_checkpoints(0),
            ConvergenceCriterion::default().with_max_runs(MAX_RUNS_PER_CAMPAIGN + 1),
            ConvergenceCriterion::default().with_min_runs(10).with_max_runs(5),
        ] {
            let spec = sample_spec(SpecMode::Adaptive(criterion));
            let action = service.handle(&post(encode_spec(&spec)));
            assert_eq!(action.status(), 400, "criterion {criterion:?} must be refused");
        }
    }

    #[test]
    fn oversized_schedules_are_refused() {
        let service = memory_service();
        let spec = sample_spec(SpecMode::Fixed(Vec::new()));
        assert_eq!(service.handle(&post(encode_spec(&spec))).status(), 400);
    }

    fn unpack(action: Action) -> (Vec<u8>, String) {
        match action {
            Action::Simple { status, headers, body } => {
                assert_eq!(status, 200);
                let cache = headers
                    .iter()
                    .find(|(name, _)| *name == "X-Randmod-Cache")
                    .map(|(_, value)| value.clone())
                    .unwrap();
                (body, cache)
            }
            Action::Stream { .. } => panic!("expected a simple response"),
        }
    }
}
