//! A minimal, panic-free HTTP/1.1 layer over `std::io` streams.
//!
//! The campaign service speaks just enough HTTP for its clients: request
//! lines, headers, `Content-Length` bodies, keep-alive, and chunked
//! transfer encoding for streamed adaptive responses.  The parser is held
//! to the same discipline as the simulator's persistence codecs — it is
//! linted under the P1 (panic-freedom) and C1 (cast-audit) rules of
//! `randmod-lint` — because its input is an arbitrary byte stream from
//! the network: every malformed, truncated, oversized or hostile input
//! must surface as a contextual [`HttpError`] (answered with a
//! well-formed error response, or a close), never as a panic inside a
//! connection thread.
//!
//! The reader is deliberately byte-at-a-time over a caller-supplied
//! buffered stream: it never reads past the end of the request head, so
//! the body (and any pipelined next request) stays in the stream for the
//! next read, and a `Content-Length` is enforced against the configured
//! body cap *before* a single body byte is buffered.

use std::fmt;
use std::io::{self, Read, Write};

/// Parser limits: the maximum size of a request head (request line plus
/// headers) and of a request body.  Head overruns and oversized bodies
/// are refused before the offending bytes are buffered.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (including terminators).
    pub max_head: usize,
    /// Maximum accepted `Content-Length`.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 16 * 1024,
            max_body: 64 * 1024 * 1024,
        }
    }
}

/// A parsed request: method, target, headers and the complete body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// The request target (path), as sent.
    pub target: String,
    /// Header name/value pairs in arrival order, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked for the connection to close after this
    /// request (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

impl Request {
    /// The first header with the given name, ASCII-case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.  Every variant except [`Io`] maps to
/// a well-formed HTTP error response; [`Io`] (including read timeouts
/// armed against slow-loris connections) closes the connection.
///
/// [`Io`]: HttpError::Io
#[derive(Debug)]
pub enum HttpError {
    /// The request head or body violates the protocol; the detail names
    /// the offending construct.  Answered with `400 Bad Request`.
    Malformed(String),
    /// The declared `Content-Length` exceeds the configured cap.
    /// Answered with `413 Content Too Large` before the body is read.
    BodyTooLarge {
        /// The configured cap the declaration exceeded.
        limit: usize,
    },
    /// The request head grew past the configured cap.  Answered with
    /// `431 Request Header Fields Too Large`.
    HeadTooLarge {
        /// The configured cap the head exceeded.
        limit: usize,
    },
    /// The version is not HTTP/1.0 or HTTP/1.1.  Answered with `505`.
    UnsupportedVersion(String),
    /// The underlying stream failed (or timed out, for slow-loris
    /// connections); the connection is closed without a response.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            HttpError::BodyTooLarge { limit } => {
                write!(f, "declared body exceeds the {limit}-byte cap")
            }
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds the {limit}-byte cap")
            }
            HttpError::UnsupportedVersion(version) => {
                write!(f, "unsupported protocol version {version:?}")
            }
            HttpError::Io(err) => write!(f, "connection error: {err}"),
        }
    }
}

impl HttpError {
    /// The status code of the error response this error maps to, or
    /// `None` when the connection must simply close ([`HttpError::Io`]).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Malformed(_) => Some(400),
            HttpError::BodyTooLarge { .. } => Some(413),
            HttpError::HeadTooLarge { .. } => Some(431),
            HttpError::UnsupportedVersion(_) => Some(505),
            HttpError::Io(_) => None,
        }
    }
}

/// Reads one byte, distinguishing clean EOF (`None`) from transport
/// errors.
fn read_byte<R: Read>(stream: &mut R) -> Result<Option<u8>, HttpError> {
    let mut buf = [0u8; 1];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(buf.first().copied()),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(HttpError::Io(err)),
        }
    }
}

/// Reads the request head — every byte up to and including the blank
/// line — without consuming any body byte.  Returns `None` on a clean
/// EOF before the first byte (the peer closed an idle connection).
fn read_head<R: Read>(stream: &mut R, limits: &Limits) -> Result<Option<Vec<u8>>, HttpError> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    loop {
        let Some(byte) = read_byte(stream)? else {
            if head.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Malformed("connection closed mid-head".into()));
        };
        if head.len() >= limits.max_head {
            return Err(HttpError::HeadTooLarge {
                limit: limits.max_head,
            });
        }
        head.push(byte);
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            return Ok(Some(head));
        }
    }
}

/// Parses the request line `METHOD SP TARGET SP HTTP/x.y`.
fn parse_request_line(line: &str) -> Result<(String, String, bool), HttpError> {
    let mut parts = line.split(' ').filter(|part| !part.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed(format!("request line {line:?} has no target")))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed(format!("request line {line:?} has no version")))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed(format!(
            "request line {line:?} has trailing fields"
        )));
    }
    if !method
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        || method.is_empty()
    {
        return Err(HttpError::Malformed(format!("invalid method {method:?}")));
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(HttpError::UnsupportedVersion(other.to_string())),
    };
    Ok((method.to_string(), target.to_string(), keep_alive_default))
}

/// Parses one `Name: value` header line.
fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let (name, value) = line
        .split_once(':')
        .ok_or_else(|| HttpError::Malformed(format!("header line {line:?} has no colon")))?;
    let name = name.trim();
    if name.is_empty() || name.contains(' ') {
        return Err(HttpError::Malformed(format!(
            "invalid header name in {line:?}"
        )));
    }
    Ok((name.to_string(), value.trim().to_string()))
}

/// Reads and parses one request from the stream.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly before
/// sending a byte (the normal end of a keep-alive session).
///
/// # Errors
///
/// Returns [`HttpError`] for malformed heads, unsupported versions or
/// transfer encodings, oversized heads or bodies, and transport
/// failures.  The parser never panics, whatever the input bytes.
pub fn read_request<R: Read>(
    stream: &mut R,
    limits: &Limits,
) -> Result<Option<Request>, HttpError> {
    let Some(head) = read_head(stream, limits)? else {
        return Ok(None);
    };
    let text = String::from_utf8_lossy(&head);
    let mut lines = text.split("\r\n").flat_map(|part| part.split('\n'));
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request head".into()))?;
    let (method, target, keep_alive_default) = parse_request_line(request_line)?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        headers.push(parse_header_line(line)?);
    }
    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    };
    if header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed(
            "request bodies must use Content-Length, not Transfer-Encoding".into(),
        ));
    }
    let content_length = match header("content-length") {
        None => 0usize,
        Some(raw) => {
            let declared: u64 = raw.parse().map_err(|_| {
                HttpError::Malformed(format!("unparsable Content-Length {raw:?}"))
            })?;
            if declared > limits.max_body as u64 {
                return Err(HttpError::BodyTooLarge {
                    limit: limits.max_body,
                });
            }
            // randmod: allow(C1, the value was just bounds-checked against max_body, a usize, so it fits usize on every target)
            declared as usize
        }
    };
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(|err| {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::Malformed("connection closed mid-body".into())
        } else {
            HttpError::Io(err)
        }
    })?;
    let close = match header("connection") {
        Some(value) if value.eq_ignore_ascii_case("close") => true,
        Some(value) if value.eq_ignore_ascii_case("keep-alive") => false,
        _ => !keep_alive_default,
    };
    Ok(Some(Request {
        method,
        target,
        headers,
        body,
        close,
    }))
}

/// The canonical reason phrase of the status codes the service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// Writes a complete fixed-length response: status line, the given
/// headers, `Content-Length`, and the body.
///
/// # Errors
///
/// Returns the underlying transport error, which closes the connection.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut out = format!("HTTP/1.1 {status} {}\r\n", status_reason(status));
    for (name, value) in headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(out.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes the head of a chunked response (status line, headers,
/// `Transfer-Encoding: chunked`, blank line).  Follow with
/// [`write_chunk`] calls and one [`finish_chunks`].
///
/// # Errors
///
/// Returns the underlying transport error, which closes the connection.
pub fn write_chunked_head<W: Write>(
    stream: &mut W,
    status: u16,
    headers: &[(&str, String)],
) -> io::Result<()> {
    let mut out = format!("HTTP/1.1 {status} {}\r\n", status_reason(status));
    for (name, value) in headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("Transfer-Encoding: chunked\r\n\r\n");
    stream.write_all(out.as_bytes())
}

/// Writes one chunk of a chunked response (empty chunks are skipped:
/// an empty chunk would terminate the stream).
///
/// # Errors
///
/// Returns the underlying transport error, which closes the connection.
pub fn write_chunk<W: Write>(stream: &mut W, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response (zero-length chunk plus final CRLF).
///
/// # Errors
///
/// Returns the underlying transport error, which closes the connection.
pub fn finish_chunks<W: Write>(stream: &mut W) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut &bytes[..], &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /campaign HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let request = parse(raw).unwrap().unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.target, "/campaign");
        assert_eq!(request.body, b"abcd");
        assert!(!request.close);
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.header("HOST"), Some("x"));
    }

    #[test]
    fn clean_eof_is_none_and_truncation_is_malformed() {
        assert!(parse(b"").unwrap().is_none());
        let err = parse(b"GET / HTTP/1.1\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
    }

    #[test]
    fn oversized_declarations_are_refused_before_buffering() {
        let limits = Limits {
            max_head: 64,
            max_body: 8,
        };
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        let err = read_request(&mut &raw[..], &limits).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { limit: 8 }), "{err}");
        let raw = [b'A'; 128];
        let err = read_request(&mut &raw[..], &limits).unwrap_err();
        assert!(matches!(err, HttpError::HeadTooLarge { limit: 64 }), "{err}");
    }

    #[test]
    fn version_and_encoding_refusals() {
        let err = parse(b"GET / HTTP/2.0\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::UnsupportedVersion(_)), "{err}");
        assert_eq!(err.status(), Some(505));
        let err = parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), Some(400));
    }

    #[test]
    fn connection_close_semantics() {
        let keep = parse(b"GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(!keep.close);
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(close.close);
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(old.close);
        let old_keep = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().unwrap();
        assert!(!old_keep.close);
    }

    #[test]
    fn response_writers_emit_wellformed_http() {
        let mut out = Vec::new();
        write_response(&mut out, 200, &[("X-Test", "1".to_string())], b"hi").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("X-Test: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n\r\nhi"));

        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, &[]).unwrap();
        write_chunk(&mut out, b"abc").unwrap();
        write_chunk(&mut out, b"").unwrap();
        finish_chunks(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n"), "{text}");
    }

    #[test]
    fn pipelined_requests_leave_the_next_one_in_the_stream() {
        let raw: &[u8] =
            b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nxyGET /b HTTP/1.1\r\n\r\n";
        let mut cursor = raw;
        let first = read_request(&mut cursor, &Limits::default()).unwrap().unwrap();
        assert_eq!(first.target, "/a");
        assert_eq!(first.body, b"xy");
        let second = read_request(&mut cursor, &Limits::default()).unwrap().unwrap();
        assert_eq!(second.target, "/b");
        assert!(read_request(&mut cursor, &Limits::default()).unwrap().is_none());
    }
}
