//! A minimal blocking HTTP/1.1 client for the campaign service.
//!
//! Just enough protocol for the load harness, the test batteries and
//! the experiment driver's client mode: keep-alive request/response
//! over one [`TcpStream`], fixed-length (`Content-Length`) and
//! `chunked` response bodies, nothing else.  It deliberately shares no
//! code with the server-side parser in [`crate::http`], so the two
//! directions of every integration test exercise independently written
//! framing logic.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header name/value pairs, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The de-framed body (chunked bodies arrive re-assembled).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to a campaign server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

fn invalid(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`).
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> io::Result<Self> {
        let host = addr.to_string();
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            host,
        })
    }

    /// Sends a `GET` and reads the response.
    ///
    /// # Errors
    ///
    /// Returns transport errors and protocol violations as [`io::Error`].
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        let head = format!("GET {path} HTTP/1.1\r\nHost: {}\r\n\r\n", self.host);
        self.writer.write_all(head.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a `POST` with a binary body and reads the response.
    ///
    /// # Errors
    ///
    /// Returns transport errors and protocol violations as [`io::Error`].
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n",
            self.host,
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(invalid("connection closed mid-response"));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|code| code.parse::<u16>().ok())
            .ok_or_else(|| invalid(format!("bad status line: {status_line:?}")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_string(), value.trim().to_string()));
            }
        }
        let header = |name: &str| {
            headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        };
        let body = if header("Transfer-Encoding")
            .is_some_and(|te| te.eq_ignore_ascii_case("chunked"))
        {
            self.read_chunked()?
        } else {
            let length: usize = header("Content-Length")
                .unwrap_or("0")
                .parse()
                .map_err(|_| invalid("unparseable Content-Length"))?;
            let mut body = vec![0u8; length];
            self.reader.read_exact(&mut body)?;
            body
        };
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    fn read_chunked(&mut self) -> io::Result<Vec<u8>> {
        let mut body = Vec::new();
        loop {
            let size_line = self.read_line()?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| invalid(format!("bad chunk size: {size_line:?}")))?;
            if size == 0 {
                // Trailer section: read lines until the blank terminator.
                loop {
                    if self.read_line()?.is_empty() {
                        break;
                    }
                }
                return Ok(body);
            }
            let start = body.len();
            body.resize(start + size, 0);
            self.reader.read_exact(&mut body[start..])?;
            let sep = self.read_line()?;
            if !sep.is_empty() {
                return Err(invalid("missing CRLF after chunk"));
            }
        }
    }
}
