//! The TCP front end: accept loop, per-connection threads, read
//! timeouts, and graceful shutdown.
//!
//! The threading model is deliberately boring: one accept thread, one
//! thread per connection (keep-alive, so a client reuses its thread
//! across submissions), and the [`Service`]'s bounded permit pool as
//! the only throttle on actual campaign execution — an idle connection
//! costs a parked thread, never a worker slot.  Slow-loris protection
//! comes from the per-connection read timeout: a peer that dribbles a
//! request head slower than the deadline gets its connection closed.
//!
//! Shutdown is graceful by construction: [`ServerHandle::shutdown`]
//! flips the stop flag, nudges the accept loop awake with a
//! self-connection, and then *joins* every connection thread — a
//! campaign that was accepted before the flag flipped runs to
//! completion, its result is persisted and its response delivered,
//! before `shutdown` returns.

use crate::http::{read_request, status_reason, write_chunk, write_chunked_head, write_response};
use crate::http::{finish_chunks, HttpError, Limits};
use crate::service::{Action, Service};
use crate::store::ResultStore;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker-pool size: campaigns executing at once.
    pub workers: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body: usize,
    /// Per-connection read timeout (slow-loris defence).
    pub read_timeout: Duration,
    /// Threads per campaign (`None`: single-threaded campaigns, the
    /// worker pool provides the parallelism).
    pub campaign_threads: Option<usize>,
    /// Seed lanes per campaign worker (`None`: engine default).
    pub campaign_lanes: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_body: 64 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            campaign_threads: None,
            campaign_lanes: None,
        }
    }
}

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, then drains: joins every connection thread, so
    /// in-flight campaigns finish and their responses are delivered
    /// before this returns.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        let handles = {
            let mut guard = match self.connections.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::mem::take(&mut *guard)
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Binds and starts a server.
///
/// # Errors
///
/// Returns the bind error (address in use, permission, …).
pub fn start(config: ServerConfig, store: ResultStore) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let mut service = Service::new(store, config.workers);
    if let Some(threads) = config.campaign_threads {
        service = service.with_campaign_threads(threads);
    }
    if let Some(lanes) = config.campaign_lanes {
        service = service.with_campaign_lanes(lanes);
    }
    let service = Arc::new(service);
    let limits = Limits {
        max_body: config.max_body,
        ..Limits::default()
    };
    let stop = Arc::new(AtomicBool::new(false));
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_stop = Arc::clone(&stop);
    let accept_connections = Arc::clone(&connections);
    let read_timeout = config.read_timeout;
    let accept_thread = std::thread::spawn(move || {
        for incoming in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let service = Arc::clone(&service);
            let stop = Arc::clone(&accept_stop);
            let handle = std::thread::spawn(move || {
                serve_connection(stream, &service, &limits, read_timeout, &stop);
            });
            let mut guard = match accept_connections.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            // Prune finished threads so a long-lived server does not
            // accumulate handles without bound.
            guard.retain(|h| !h.is_finished());
            guard.push(handle);
        }
    });

    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        connections,
    })
}

/// Serves one keep-alive connection until EOF, error, protocol refusal
/// that forces a close, or server shutdown.
fn serve_connection(
    stream: TcpStream,
    service: &Service,
    limits: &Limits,
    read_timeout: Duration,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_request(&mut reader, limits) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(err) => {
                respond_error(&mut writer, &err);
                return;
            }
        };
        let close = request.close;
        let action = service.handle(&request);
        if write_action(&mut writer, &action).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

/// Best-effort protocol-error response; the connection closes either
/// way (a stream that failed mid-head cannot be trusted to be framed).
fn respond_error(writer: &mut TcpStream, err: &HttpError) {
    if let Some(status) = err.status() {
        let body = format!("{}: {err}\n", status_reason(status));
        let headers = [
            ("Content-Type", "text/plain".to_string()),
            ("Connection", "close".to_string()),
        ];
        let _ = write_response(writer, status, &headers, body.as_bytes());
    }
    let _ = writer.flush();
}

fn write_action(writer: &mut TcpStream, action: &Action) -> io::Result<()> {
    match action {
        Action::Simple { status, headers, body } => {
            let rendered: Vec<(&str, String)> = headers
                .iter()
                .map(|(name, value)| (*name, value.clone()))
                .collect();
            write_response(writer, *status, &rendered, body)
        }
        Action::Stream { status, headers, chunks } => {
            let rendered: Vec<(&str, String)> = headers
                .iter()
                .map(|(name, value)| (*name, value.clone()))
                .collect();
            write_chunked_head(writer, *status, &rendered)?;
            for chunk in chunks {
                write_chunk(writer, chunk)?;
            }
            finish_chunks(writer)
        }
    }
}
