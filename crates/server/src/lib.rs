//! # randmod-server
//!
//! Campaign-as-a-service: a persistent analysis server that accepts
//! measurement-campaign specifications — a packed trace, a platform
//! configuration, and either a fixed placement-seed schedule or a
//! convergence criterion — executes them on the `randmod-sim`
//! lane-batched campaign engine, and content-addresses finished results
//! by the campaign fingerprint into a checksummed on-disk store.
//! Re-submitting a finished campaign is a cache hit: the byte-identical
//! payload comes back without touching the simulator.
//!
//! The stack is dependency-free by construction (this reproduction
//! builds with no registry access): a hand-rolled, panic-free HTTP/1.1
//! layer over [`std::net::TcpListener`], binary request/response bodies
//! built on the same audited wire primitives as the simulator's
//! checkpoint codec, and JSON only for small control fields (health,
//! errors, streamed convergence checkpoints).
//!
//! * [`http`] — the bounded, panic-free HTTP/1.1 request parser and
//!   response/chunk writers.
//! * [`body`] — the `RMSPEC01` campaign-spec codec and the adaptive
//!   convergence-record codec.
//! * [`store`] — the content-addressed result cache over
//!   [`randmod_sim::checkpoint`] containers: damaged entries fail
//!   checksum validation and are recomputed, never served.
//! * [`service`] — routing, validation with contextual refusals,
//!   campaign execution, worker-pool backpressure (`429` +
//!   `Retry-After`).
//! * [`server`] — the TCP front end: keep-alive connections, read
//!   timeouts, graceful shutdown that drains in-flight campaigns.
//! * [`client`] — a minimal blocking client (used by the load harness,
//!   the test batteries and the experiment driver's client mode).
//!
//! ## Protocol sketch
//!
//! ```text
//! POST /campaign            body: RMSPEC01 spec (see `body`)
//!   -> 200 application/octet-stream   fixed: encode_solo_runs payload
//!   -> 200 application/x-ndjson      adaptive: chunked trajectory
//!   -> 400 {"error": ...}             malformed/invalid spec
//!   -> 429 Retry-After: 1             every worker slot busy
//! GET /healthz -> 200 {"status":"ok", ...}
//! ```
//!
//! Responses carry `X-Randmod-Cache: hit|miss` and the cache key in
//! `X-Randmod-Key`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[warn(clippy::unwrap_used, clippy::expect_used)]
pub mod body;
pub mod client;
#[warn(clippy::unwrap_used, clippy::expect_used)]
pub mod http;
pub mod server;
pub mod service;
pub mod store;

pub use body::{encode_spec, AdaptiveRecord, CampaignSpec, SpecMode};
pub use client::{Client, ClientResponse};
pub use server::{start, ServerConfig, ServerHandle};
pub use service::Service;
pub use store::ResultStore;
