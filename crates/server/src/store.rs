//! The content-addressed result cache.
//!
//! Finished campaigns are keyed by their fingerprint (the same
//! resume-safety hash the crash-safe sharded drivers use — platform
//! config, seed schedule, run count and trace bodies, bit for bit) and
//! persisted through the checksummed [`randmod_sim::checkpoint`]
//! container.  A warm hit therefore returns the byte-identical payload
//! the cold run produced, and a damaged entry — truncated file, flipped
//! bit, wrong fingerprint — fails checksum or header validation and is
//! treated as a miss: the service recomputes and overwrites rather than
//! ever serving bad bytes.

use randmod_sim::checkpoint::{decode_checkpoint, encode_checkpoint, CheckpointHeader, ShardRecord};
use randmod_sim::{CheckpointStore, FileCheckpointStore};
use std::path::PathBuf;

/// Builds the backing [`CheckpointStore`] for one cache key.  Boxed so
/// tests can swap in fault-injecting stores.
type EntryFactory = Box<dyn Fn(u64) -> Box<dyn CheckpointStore + Send> + Send + Sync>;

/// A content-addressed store of finished campaign payloads.
///
/// Each key gets its own single-record checkpoint container; the store
/// itself holds no state beyond the factory that maps a key to its
/// backing [`CheckpointStore`], so cloning keys across restarts is free
/// — the fingerprint in the container header re-validates every load.
pub struct ResultStore {
    entries: EntryFactory,
    description: String,
}

impl ResultStore {
    /// A disk-backed store: key `k` lives at `<dir>/res_<k:016x>.ckpt`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn in_dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let description = dir.display().to_string();
        Ok(ResultStore {
            entries: Box::new(move |key| {
                Box::new(FileCheckpointStore::new(dir.join(format!("res_{key:016x}.ckpt"))))
            }),
            description,
        })
    }

    /// A store over arbitrary per-key backends — the fault-injection
    /// hook: tests wrap [`randmod_sim::FaultyStore`] around the real
    /// files to prove damaged entries are recomputed, never served.
    pub fn with_entries<F>(description: impl Into<String>, entries: F) -> Self
    where
        F: Fn(u64) -> Box<dyn CheckpointStore + Send> + Send + Sync + 'static,
    {
        ResultStore {
            entries: Box::new(entries),
            description: description.into(),
        }
    }

    /// A human-readable description of where entries live.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Fetches the cached payload for `key`, or `None` on a miss.
    ///
    /// Every failure mode — absent entry, I/O error, checksum mismatch,
    /// fingerprint or run-count disagreement, unexpected record shape —
    /// collapses to a miss: the caller recomputes.  The store never
    /// returns bytes that did not validate end to end.
    pub fn load(&self, key: u64, total_runs: u64) -> Option<Vec<u8>> {
        let mut entry = (self.entries)(key);
        let bytes = entry.load().ok()??;
        let decoded = decode_checkpoint(&bytes, &entry.location()).ok()?;
        if decoded.header.fingerprint != key || decoded.header.total_runs != total_runs {
            return None;
        }
        let mut records = decoded.records;
        match (records.pop(), records.is_empty()) {
            (Some(record), true) if record.shard_index == 0 => Some(record.payload),
            _ => None,
        }
    }

    /// Persists `payload` under `key`.
    ///
    /// A save failure is reported but non-fatal to the submission that
    /// produced the payload — the response was computed either way; the
    /// next identical submission simply recomputes.
    pub fn save(&self, key: u64, total_runs: u64, payload: &[u8]) -> Result<(), String> {
        let header = CheckpointHeader {
            fingerprint: key,
            total_runs,
            shard_count: 1,
        };
        let records = [ShardRecord {
            shard_index: 0,
            payload: payload.to_vec(),
        }];
        let bytes = encode_checkpoint(&header, &records);
        let mut entry = (self.entries)(key);
        entry.save(&bytes).map_err(|err| err.to_string())
    }
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("description", &self.description)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "randmod_store_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_and_misses() {
        let dir = temp_dir("roundtrip");
        let store = ResultStore::in_dir(&dir).unwrap();
        assert_eq!(store.load(7, 10), None);
        store.save(7, 10, b"payload bytes").unwrap();
        assert_eq!(store.load(7, 10).as_deref(), Some(&b"payload bytes"[..]));
        // A different key or run count is a miss, not a wrong answer.
        assert_eq!(store.load(8, 10), None);
        assert_eq!(store.load(7, 11), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_entries_become_misses() {
        let dir = temp_dir("damage");
        let store = ResultStore::in_dir(&dir).unwrap();
        store.save(3, 5, b"good bytes").unwrap();
        let path = dir.join(format!("res_{:016x}.ckpt", 3));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load(3, 5), None, "a flipped bit must not be served");
        // Truncation likewise.
        store.save(3, 5, b"good bytes").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.load(3, 5), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
