//! The `randmod-server` binary: a persistent campaign-analysis service.
//!
//! ```text
//! randmod-server [--addr HOST:PORT] [--store DIR] [--workers N]
//!                [--max-body BYTES] [--threads N] [--lanes K]
//!                [--read-timeout-ms MS]
//! ```

use randmod_server::{start, ResultStore, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: randmod-server [--addr HOST:PORT] [--store DIR] [--workers N]\n\
         \x20                     [--max-body BYTES] [--threads N] [--lanes K]\n\
         \x20                     [--read-timeout-ms MS]\n\
         \n\
         Campaign-as-a-service analysis server: POST RMSPEC01 campaign specs\n\
         to /campaign; finished results are content-addressed into --store\n\
         and re-served on identical resubmission without recomputation."
    );
    std::process::exit(2);
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("error: {flag} needs a value");
        usage();
    };
    match raw.parse() {
        Ok(parsed) => parsed,
        Err(_) => {
            eprintln!("error: {flag} {raw:?} is not valid");
            usage();
        }
    }
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut store_dir = "randmod-results".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => config.addr = parse_value(&flag, args.next()),
            "--store" => store_dir = parse_value(&flag, args.next()),
            "--workers" => config.workers = parse_value(&flag, args.next()),
            "--max-body" => config.max_body = parse_value(&flag, args.next()),
            "--threads" => config.campaign_threads = Some(parse_value(&flag, args.next())),
            "--lanes" => config.campaign_lanes = Some(parse_value(&flag, args.next())),
            "--read-timeout-ms" => {
                config.read_timeout = Duration::from_millis(parse_value(&flag, args.next()));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
        }
    }

    let store = match ResultStore::in_dir(&store_dir) {
        Ok(store) => store,
        Err(err) => {
            eprintln!("error: cannot open result store {store_dir:?}: {err}");
            std::process::exit(1);
        }
    };
    let workers = config.workers;
    match start(config, store) {
        Ok(handle) => {
            println!(
                "randmod-server listening on {} ({} workers, store {:?})",
                handle.addr(),
                workers,
                store_dir
            );
            // Serve until killed; connections are handled by the
            // server's own threads.
            loop {
                std::thread::park();
            }
        }
        Err(err) => {
            eprintln!("error: cannot start server: {err}");
            std::process::exit(1);
        }
    }
}
