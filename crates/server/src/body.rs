//! The binary campaign-spec and result-payload codecs.
//!
//! A campaign submission is one self-describing binary body (JSON is
//! reserved for small control fields like streamed progress lines): a
//! magic/version tag, the full platform configuration, the campaign
//! seed, the mode — an explicit fixed seed schedule, or a convergence
//! criterion for adaptive campaigns — and the packed trace in the exact
//! on-disk format of [`randmod_sim::PackedTrace::to_bytes`].  Every
//! multi-byte integer goes through the audited panic-free primitives of
//! [`randmod_sim::wire`], and this module is linted under the same P1
//! (panic-freedom) and C1 (cast-audit) rules as the simulator's codecs:
//! a hostile body must decode to a contextual [`SpecError`] — answered
//! as an HTTP 400 refusal naming the offending field — never to a panic.
//!
//! Result payloads reuse the shard-record run encoding
//! ([`randmod_sim::encode_solo_runs`]) for fixed campaigns; adaptive
//! campaigns persist their convergence record (runs used, verdict,
//! pWCET trajectory) in the small binary layout defined here.

use randmod_core::{CacheGeometry, PlacementKind, ReplacementKind, WritePolicy};
use randmod_mbpta::online::{ConvergenceCheckpoint, ConvergenceCriterion};
use randmod_sim::config::{CacheConfig, LatencyConfig, PlatformConfig};
use randmod_sim::wire::read_u64;
use randmod_sim::PackedTrace;
use std::fmt;

/// Magic plus version tag of the campaign-spec body format.
pub const SPEC_MAGIC: &[u8; 8] = b"RMSPEC01";

/// How the campaign's run schedule is determined.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecMode {
    /// Run exactly these placement seeds, in order.
    Fixed(Vec<u64>),
    /// Grow the campaign until the pWCET estimate converges.
    Adaptive(ConvergenceCriterion),
}

/// A complete campaign submission: platform, seed schedule (or
/// convergence criterion) and the trace to replay.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// The platform configuration to simulate.
    pub config: PlatformConfig,
    /// The campaign-level seed (folded into adaptive cache keys; fixed
    /// campaigns carry their schedule explicitly).
    pub campaign_seed: u64,
    /// Fixed schedule or convergence criterion.
    pub mode: SpecMode,
    /// The packed trace to replay.
    pub trace: PackedTrace,
}

/// Why a campaign-spec body was refused.  The `Display` form is the
/// contextual refusal text of the HTTP 400 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The body does not start with [`SPEC_MAGIC`].
    BadMagic,
    /// The body ended before the named field.
    Truncated {
        /// The field the decoder was reading.
        field: &'static str,
    },
    /// A field holds a value outside its domain.
    Invalid {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// Bytes remained after the complete spec.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadMagic => {
                write!(f, "not a campaign spec: body does not start with RMSPEC01")
            }
            SpecError::Truncated { field } => {
                write!(f, "truncated campaign spec: body ended inside {field}")
            }
            SpecError::Invalid { field, detail } => {
                write!(f, "invalid campaign spec: {field}: {detail}")
            }
            SpecError::TrailingBytes { extra } => {
                write!(f, "malformed campaign spec: {extra} trailing byte(s) after the trace")
            }
        }
    }
}

fn push_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn take_u64(bytes: &[u8], pos: &mut usize, field: &'static str) -> Result<u64, SpecError> {
    read_u64(bytes, pos).ok_or(SpecError::Truncated { field })
}

fn take_u32(bytes: &[u8], pos: &mut usize, field: &'static str) -> Result<u32, SpecError> {
    let value = take_u64(bytes, pos, field)?;
    u32::try_from(value).map_err(|_| SpecError::Invalid {
        field,
        detail: format!("{value} does not fit in 32 bits"),
    })
}

fn take_usize(bytes: &[u8], pos: &mut usize, field: &'static str) -> Result<usize, SpecError> {
    let value = take_u64(bytes, pos, field)?;
    usize::try_from(value).map_err(|_| SpecError::Invalid {
        field,
        detail: format!("{value} does not fit in usize"),
    })
}

fn placement_tag(placement: PlacementKind) -> u64 {
    match placement {
        PlacementKind::Modulo => 0,
        PlacementKind::Xor => 1,
        PlacementKind::HashRandom => 2,
        PlacementKind::RandomModulo => 3,
    }
}

fn placement_from_tag(tag: u64, field: &'static str) -> Result<PlacementKind, SpecError> {
    match tag {
        0 => Ok(PlacementKind::Modulo),
        1 => Ok(PlacementKind::Xor),
        2 => Ok(PlacementKind::HashRandom),
        3 => Ok(PlacementKind::RandomModulo),
        other => Err(SpecError::Invalid {
            field,
            detail: format!("unknown placement tag {other} (expected 0..=3)"),
        }),
    }
}

fn replacement_tag(replacement: ReplacementKind) -> u64 {
    match replacement {
        ReplacementKind::Random => 0,
        ReplacementKind::Lru => 1,
        ReplacementKind::RoundRobin => 2,
    }
}

fn replacement_from_tag(tag: u64, field: &'static str) -> Result<ReplacementKind, SpecError> {
    match tag {
        0 => Ok(ReplacementKind::Random),
        1 => Ok(ReplacementKind::Lru),
        2 => Ok(ReplacementKind::RoundRobin),
        other => Err(SpecError::Invalid {
            field,
            detail: format!("unknown replacement tag {other} (expected 0..=2)"),
        }),
    }
}

fn write_policy_tag(policy: WritePolicy) -> u64 {
    match policy {
        WritePolicy::WriteThrough => 0,
        WritePolicy::WriteBack => 1,
    }
}

fn write_policy_from_tag(tag: u64, field: &'static str) -> Result<WritePolicy, SpecError> {
    match tag {
        0 => Ok(WritePolicy::WriteThrough),
        1 => Ok(WritePolicy::WriteBack),
        other => Err(SpecError::Invalid {
            field,
            detail: format!("unknown write-policy tag {other} (expected 0 or 1)"),
        }),
    }
}

fn push_cache_config(buf: &mut Vec<u8>, cache: &CacheConfig) {
    push_u64(buf, u64::from(cache.geometry.sets()));
    push_u64(buf, u64::from(cache.geometry.ways()));
    push_u64(buf, u64::from(cache.geometry.line_size()));
    push_u64(buf, placement_tag(cache.placement));
    push_u64(buf, replacement_tag(cache.replacement));
    push_u64(buf, write_policy_tag(cache.write_policy));
}

fn take_cache_config(
    bytes: &[u8],
    pos: &mut usize,
    field: &'static str,
) -> Result<CacheConfig, SpecError> {
    let sets = take_u32(bytes, pos, field)?;
    let ways = take_u32(bytes, pos, field)?;
    let line_size = take_u32(bytes, pos, field)?;
    let geometry = CacheGeometry::new(sets, ways, line_size).map_err(|err| SpecError::Invalid {
        field,
        detail: err.to_string(),
    })?;
    let placement = placement_from_tag(take_u64(bytes, pos, field)?, field)?;
    let replacement = replacement_from_tag(take_u64(bytes, pos, field)?, field)?;
    let write_policy = write_policy_from_tag(take_u64(bytes, pos, field)?, field)?;
    Ok(CacheConfig::new(geometry, placement, replacement, write_policy))
}

/// Mode tag of a fixed-schedule campaign.
const MODE_FIXED: u64 = 0;
/// Mode tag of an adaptive campaign.
const MODE_ADAPTIVE: u64 = 1;

/// Serializes a campaign spec into its binary body form.
pub fn encode_spec(spec: &CampaignSpec) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 * 8 + spec.trace.len() * 8);
    buf.extend_from_slice(SPEC_MAGIC);
    push_cache_config(&mut buf, &spec.config.il1);
    push_cache_config(&mut buf, &spec.config.dl1);
    push_cache_config(&mut buf, &spec.config.l2);
    push_u64(&mut buf, u64::from(spec.config.latencies.l1_hit));
    push_u64(&mut buf, u64::from(spec.config.latencies.l2_hit));
    push_u64(&mut buf, u64::from(spec.config.latencies.memory));
    push_u64(&mut buf, u64::from(spec.config.latencies.store));
    push_u64(&mut buf, spec.campaign_seed);
    match &spec.mode {
        SpecMode::Fixed(seeds) => {
            push_u64(&mut buf, MODE_FIXED);
            push_u64(&mut buf, seeds.len() as u64);
            for &seed in seeds {
                push_u64(&mut buf, seed);
            }
        }
        SpecMode::Adaptive(criterion) => {
            push_u64(&mut buf, MODE_ADAPTIVE);
            push_u64(&mut buf, criterion.target_probability.to_bits());
            push_u64(&mut buf, criterion.relative_tolerance.to_bits());
            push_u64(&mut buf, criterion.stable_checkpoints as u64);
            push_u64(&mut buf, criterion.check_interval as u64);
            push_u64(&mut buf, criterion.min_runs as u64);
            push_u64(&mut buf, criterion.max_runs as u64);
            push_u64(&mut buf, criterion.block_size as u64);
        }
    }
    let trace_bytes = spec.trace.to_bytes();
    push_u64(&mut buf, trace_bytes.len() as u64);
    buf.extend_from_slice(&trace_bytes);
    buf
}

/// Deserializes and structurally validates a campaign-spec body.
///
/// Structural validation only: cache geometries must construct and every
/// tag must be known, but platform-level validation
/// ([`PlatformConfig::validate`]) and criterion sanity are the service's
/// responsibility — they produce their own contextual refusals.
///
/// # Errors
///
/// Returns a [`SpecError`] naming the offending field; the decoder never
/// panics, whatever the bytes.
pub fn decode_spec(bytes: &[u8]) -> Result<CampaignSpec, SpecError> {
    let magic = bytes.get(..SPEC_MAGIC.len()).ok_or(SpecError::BadMagic)?;
    if magic != SPEC_MAGIC.as_slice() {
        return Err(SpecError::BadMagic);
    }
    let mut pos = SPEC_MAGIC.len();
    let il1 = take_cache_config(bytes, &mut pos, "il1 cache config")?;
    let dl1 = take_cache_config(bytes, &mut pos, "dl1 cache config")?;
    let l2 = take_cache_config(bytes, &mut pos, "l2 cache config")?;
    let latencies = LatencyConfig {
        l1_hit: take_u32(bytes, &mut pos, "l1_hit latency")?,
        l2_hit: take_u32(bytes, &mut pos, "l2_hit latency")?,
        memory: take_u32(bytes, &mut pos, "memory latency")?,
        store: take_u32(bytes, &mut pos, "store latency")?,
    };
    let campaign_seed = take_u64(bytes, &mut pos, "campaign seed")?;
    let mode = match take_u64(bytes, &mut pos, "mode tag")? {
        MODE_FIXED => {
            let count = take_usize(bytes, &mut pos, "seed count")?;
            // Refuse absurd declarations before allocating: each seed is
            // eight bytes, so the schedule cannot hold more seeds than
            // the remaining body has room for.
            let remaining = bytes.len().saturating_sub(pos) / 8;
            if count > remaining {
                return Err(SpecError::Invalid {
                    field: "seed count",
                    detail: format!("{count} seeds declared but only {remaining} encoded"),
                });
            }
            let mut seeds = Vec::with_capacity(count);
            for _ in 0..count {
                seeds.push(take_u64(bytes, &mut pos, "seed schedule")?);
            }
            SpecMode::Fixed(seeds)
        }
        MODE_ADAPTIVE => {
            let target_probability =
                f64::from_bits(take_u64(bytes, &mut pos, "target probability")?);
            let relative_tolerance =
                f64::from_bits(take_u64(bytes, &mut pos, "relative tolerance")?);
            let criterion = ConvergenceCriterion {
                target_probability,
                relative_tolerance,
                stable_checkpoints: take_usize(bytes, &mut pos, "stable checkpoints")?,
                check_interval: take_usize(bytes, &mut pos, "check interval")?,
                min_runs: take_usize(bytes, &mut pos, "min runs")?,
                max_runs: take_usize(bytes, &mut pos, "max runs")?,
                block_size: take_usize(bytes, &mut pos, "block size")?,
            };
            SpecMode::Adaptive(criterion)
        }
        other => {
            return Err(SpecError::Invalid {
                field: "mode tag",
                detail: format!("unknown mode {other} (expected 0=fixed, 1=adaptive)"),
            })
        }
    };
    let trace_len = take_usize(bytes, &mut pos, "trace length")?;
    let end = pos.checked_add(trace_len).ok_or(SpecError::Invalid {
        field: "trace length",
        detail: "length overflows the address space".into(),
    })?;
    let trace_bytes = bytes.get(pos..end).ok_or(SpecError::Truncated {
        field: "packed trace",
    })?;
    pos = end;
    let trace = PackedTrace::from_bytes(trace_bytes).map_err(|err| SpecError::Invalid {
        field: "packed trace",
        detail: err.to_string(),
    })?;
    if pos != bytes.len() {
        return Err(SpecError::TrailingBytes {
            extra: bytes.len().saturating_sub(pos),
        });
    }
    Ok(CampaignSpec {
        config: PlatformConfig {
            il1,
            dl1,
            l2,
            latencies,
        },
        campaign_seed,
        mode,
        trace,
    })
}

/// The convergence record an adaptive campaign persists and streams:
/// everything in [`randmod_sim::AdaptiveResult`] except the raw runs.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveRecord {
    /// Number of runs the campaign needed.
    pub runs_used: u64,
    /// Whether the stopping rule was met before the run cap.
    pub converged: bool,
    /// Final pWCET estimate at the criterion's target probability.
    pub pwcet_estimate: f64,
    /// The checkpoint trajectory: (runs, pWCET estimate, relative delta).
    pub trajectory: Vec<(u64, f64, f64)>,
}

impl AdaptiveRecord {
    /// Builds the record from an adaptive campaign's trajectory.
    pub fn new(
        runs_used: usize,
        converged: bool,
        pwcet_estimate: f64,
        trajectory: &[ConvergenceCheckpoint],
    ) -> Self {
        AdaptiveRecord {
            runs_used: runs_used as u64,
            converged,
            pwcet_estimate,
            trajectory: trajectory
                .iter()
                .map(|cp| (cp.runs as u64, cp.pwcet, cp.relative_delta))
                .collect(),
        }
    }
}

/// Serializes an adaptive convergence record.
pub fn encode_adaptive_record(record: &AdaptiveRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity((4 + record.trajectory.len() * 3) * 8);
    push_u64(&mut buf, record.runs_used);
    push_u64(&mut buf, u64::from(record.converged));
    push_u64(&mut buf, record.pwcet_estimate.to_bits());
    push_u64(&mut buf, record.trajectory.len() as u64);
    for &(runs, pwcet, delta) in &record.trajectory {
        push_u64(&mut buf, runs);
        push_u64(&mut buf, pwcet.to_bits());
        push_u64(&mut buf, delta.to_bits());
    }
    buf
}

/// Deserializes an adaptive convergence record.  `None` means the
/// payload is not a well-formed record (wrong length or framing) and
/// must be treated as a cache miss.
pub fn decode_adaptive_record(payload: &[u8]) -> Option<AdaptiveRecord> {
    let mut pos = 0;
    let runs_used = read_u64(payload, &mut pos)?;
    let converged = match read_u64(payload, &mut pos)? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let pwcet_estimate = f64::from_bits(read_u64(payload, &mut pos)?);
    let count = usize::try_from(read_u64(payload, &mut pos)?).ok()?;
    if count > payload.len().saturating_sub(pos) / 24 {
        return None;
    }
    let mut trajectory = Vec::with_capacity(count);
    for _ in 0..count {
        let runs = read_u64(payload, &mut pos)?;
        let pwcet = f64::from_bits(read_u64(payload, &mut pos)?);
        let delta = f64::from_bits(read_u64(payload, &mut pos)?);
        trajectory.push((runs, pwcet, delta));
    }
    (pos == payload.len()).then_some(AdaptiveRecord {
        runs_used,
        converged,
        pwcet_estimate,
        trajectory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use randmod_core::Address;
    use randmod_sim::trace::{MemEvent, Trace};

    fn sample_trace() -> PackedTrace {
        let mut trace = Trace::new();
        for i in 0..40u64 {
            trace.push(MemEvent::InstrFetch(Address::new(0x1000 + i * 32)));
            trace.push(MemEvent::Load(Address::new(0x8000 + i * 64)));
        }
        PackedTrace::from(&trace)
    }

    fn sample_spec(mode: SpecMode) -> CampaignSpec {
        CampaignSpec {
            config: PlatformConfig::leon3()
                .with_l1_placement(PlacementKind::RandomModulo)
                .with_l2_placement(PlacementKind::HashRandom),
            campaign_seed: 0xC0FFEE,
            mode,
            trace: sample_trace(),
        }
    }

    #[test]
    fn fixed_spec_round_trips() {
        let spec = sample_spec(SpecMode::Fixed(vec![3, 1, 4, 1, 5, 9]));
        let decoded = decode_spec(&encode_spec(&spec)).unwrap();
        assert_eq!(decoded, spec);
    }

    #[test]
    fn adaptive_spec_round_trips() {
        let spec = sample_spec(SpecMode::Adaptive(
            ConvergenceCriterion::default().with_min_runs(30).with_max_runs(200),
        ));
        let decoded = decode_spec(&encode_spec(&spec)).unwrap();
        assert_eq!(decoded, spec);
    }

    #[test]
    fn refusals_are_contextual() {
        assert_eq!(decode_spec(b"not a spec"), Err(SpecError::BadMagic));
        assert_eq!(decode_spec(b""), Err(SpecError::BadMagic));

        let spec = sample_spec(SpecMode::Fixed(vec![1, 2]));
        let bytes = encode_spec(&spec);
        let truncated = decode_spec(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(truncated.to_string().contains("packed trace"), "{truncated}");

        let mut trailing = bytes.clone();
        trailing.push(0xAA);
        assert_eq!(decode_spec(&trailing), Err(SpecError::TrailingBytes { extra: 1 }));

        // A hostile seed count cannot trigger an absurd allocation.
        let mut hostile = bytes;
        let seeds_at = 8 + 3 * 6 * 8 + 4 * 8 + 8 + 8;
        hostile[seeds_at..seeds_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_spec(&hostile).unwrap_err();
        assert!(err.to_string().contains("seed count"), "{err}");
    }

    #[test]
    fn every_field_is_covered_by_a_refusal() {
        let spec = sample_spec(SpecMode::Fixed(vec![7]));
        let bytes = encode_spec(&spec);
        // Truncating at every 8-byte boundary must fail with a contextual
        // error, never panic.
        for cut in (0..bytes.len()).step_by(7) {
            let err = decode_spec(&bytes[..cut]).unwrap_err();
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn unknown_tags_are_named() {
        let spec = sample_spec(SpecMode::Fixed(vec![]));
        let mut bytes = encode_spec(&spec);
        // The placement tag of the il1 is the 4th u64 after the magic.
        let at = 8 + 3 * 8;
        bytes[at..at + 8].copy_from_slice(&99u64.to_le_bytes());
        let err = decode_spec(&bytes).unwrap_err();
        assert!(err.to_string().contains("placement tag 99"), "{err}");
    }

    #[test]
    fn adaptive_record_round_trips() {
        let record = AdaptiveRecord {
            runs_used: 120,
            converged: true,
            pwcet_estimate: 171_639.25,
            trajectory: vec![
                (30, 170_000.5, f64::INFINITY),
                (80, 171_500.0, 0.0088),
                (120, 171_639.25, 0.0008),
            ],
        };
        let decoded = decode_adaptive_record(&encode_adaptive_record(&record)).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn adaptive_record_rejects_damage() {
        let record = AdaptiveRecord {
            runs_used: 10,
            converged: false,
            pwcet_estimate: 1.0,
            trajectory: vec![(10, 1.0, 0.5)],
        };
        let bytes = encode_adaptive_record(&record);
        assert!(decode_adaptive_record(&bytes[..bytes.len() - 1]).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_adaptive_record(&trailing).is_none());
        let mut bad_flag = bytes;
        bad_flag[8..16].copy_from_slice(&7u64.to_le_bytes());
        assert!(decode_adaptive_record(&bad_flag).is_none());
    }
}
