//! Load-test harness for the campaign server: measures cold
//! (compute-bound) and warm (cache-hit) submission throughput.
//!
//! ```text
//! server_load [--addr HOST:PORT] [--specs N] [--repeat R] [--runs K] [--quick]
//! ```
//!
//! Without `--addr` an in-process server is spawned on an ephemeral
//! port with a temporary store.  The harness submits `N` distinct
//! fixed-schedule campaign specs (cold phase: every one a cache miss),
//! then re-submits the same specs `R` times (warm phase: every one a
//! hit), and reports campaigns/sec for both phases plus the measured
//! hit rate.  `--quick` shrinks the matrix for CI smoke use and exits
//! nonzero if the warm phase saw no cache hit.

use randmod_core::{Address, PlacementKind};
use randmod_server::{encode_spec, start, CampaignSpec, Client, ResultStore, ServerConfig, SpecMode};
use randmod_sim::config::PlatformConfig;
use randmod_sim::trace::{MemEvent, Trace};
use randmod_sim::PackedTrace;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: server_load [--addr HOST:PORT] [--specs N] [--repeat R] [--runs K] [--quick]"
    );
    std::process::exit(2);
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|raw| raw.parse().ok()) {
        Some(parsed) => parsed,
        None => {
            eprintln!("error: {flag} needs a valid value");
            usage();
        }
    }
}

/// A small synthetic kernel: a sequential instruction stream over a
/// loop body plus a strided data working set that overflows a few L1
/// sets, so placement randomisation has something to randomise.
fn synthetic_trace() -> PackedTrace {
    let mut trace = Trace::new();
    for rep in 0..8u64 {
        for i in 0..200u64 {
            trace.push(MemEvent::InstrFetch(Address::new(0x4000 + (i % 64) * 4)));
            if i % 3 == 0 {
                trace.push(MemEvent::Load(Address::new(0x2_0000 + ((i * 7 + rep) % 96) * 256)));
            }
            if i % 11 == 0 {
                trace.push(MemEvent::Store(Address::new(0x8_0000 + (i % 16) * 32)));
            }
        }
    }
    PackedTrace::from(&trace)
}

fn main() {
    let mut addr: Option<String> = None;
    let mut specs = 8usize;
    let mut repeat = 5usize;
    let mut runs = 40usize;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => addr = Some(parse_value(&flag, args.next())),
            "--specs" => specs = parse_value(&flag, args.next()),
            "--repeat" => repeat = parse_value(&flag, args.next()),
            "--runs" => runs = parse_value(&flag, args.next()),
            "--quick" => quick = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
        }
    }
    if quick {
        specs = specs.min(3);
        repeat = repeat.min(2);
        runs = runs.min(20);
    }

    // Spawn an in-process server unless pointed at a running one.
    let mut local = None;
    let target = match addr {
        Some(addr) => addr,
        None => {
            let dir = std::env::temp_dir()
                .join(format!("randmod_server_load_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let store = ResultStore::in_dir(&dir).expect("create temp store");
            let handle = start(
                ServerConfig {
                    workers: 2,
                    ..ServerConfig::default()
                },
                store,
            )
            .expect("start in-process server");
            let target = handle.addr().to_string();
            local = Some((handle, dir));
            target
        }
    };

    let trace = synthetic_trace();
    let config = PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo);
    let bodies: Vec<Vec<u8>> = (0..specs)
        .map(|i| {
            let seeds: Vec<u64> = (0..runs as u64).map(|s| s * 1_000_003 + i as u64).collect();
            encode_spec(&CampaignSpec {
                config,
                campaign_seed: 0xC0FFEE + i as u64,
                mode: SpecMode::Fixed(seeds),
                trace: trace.clone(),
            })
        })
        .collect();

    let mut client = Client::connect(&target).expect("connect to server");
    let mut submit = |body: &[u8]| -> (u16, bool) {
        let response = client.post("/campaign", body).expect("submit campaign");
        let hit = response.header("X-Randmod-Cache") == Some("hit");
        (response.status, hit)
    };

    let cold_start = Instant::now();
    let mut cold_hits = 0usize;
    for body in &bodies {
        let (status, hit) = submit(body);
        assert_eq!(status, 200, "cold submission failed");
        cold_hits += usize::from(hit);
    }
    let cold_elapsed = cold_start.elapsed();

    let warm_start = Instant::now();
    let mut warm_hits = 0usize;
    let warm_total = specs * repeat;
    for _ in 0..repeat {
        for body in &bodies {
            let (status, hit) = submit(body);
            assert_eq!(status, 200, "warm submission failed");
            warm_hits += usize::from(hit);
        }
    }
    let warm_elapsed = warm_start.elapsed();

    let cold_rate = specs as f64 / cold_elapsed.as_secs_f64().max(1e-9);
    let warm_rate = warm_total as f64 / warm_elapsed.as_secs_f64().max(1e-9);
    println!(
        "cold: {specs} campaigns in {:.3}s ({cold_rate:.1} campaigns/s, {cold_hits} hits)",
        cold_elapsed.as_secs_f64()
    );
    println!(
        "warm: {warm_total} campaigns in {:.3}s ({warm_rate:.1} campaigns/s, {warm_hits} hits, {:.1}% hit rate)",
        warm_elapsed.as_secs_f64(),
        100.0 * warm_hits as f64 / warm_total.max(1) as f64
    );
    println!("warm/cold speedup: {:.1}x", warm_rate / cold_rate.max(1e-9));

    if let Some((handle, dir)) = local {
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    if quick && warm_hits == 0 {
        eprintln!("error: quick mode expected at least one cache hit");
        std::process::exit(1);
    }
}
