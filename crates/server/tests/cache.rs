//! Cache-correctness battery: the served bytes are the computed bytes.
//!
//! For a grid of campaign specs, three paths must agree byte for byte:
//! (a) direct [`Campaign::run_seeds`] through [`encode_solo_runs`],
//! (b) a cold server submission (cache miss, computed in-process), and
//! (c) the warm resubmission (cache hit, served from the store).  The
//! fingerprint-sensitivity tests pin the cache-key discipline — any
//! semantically meaningful change to the spec must address a different
//! entry — and the corruption tests prove a damaged store entry is
//! recomputed, never served: the checksummed container is the last line
//! of defence between the disk and the response body.

use randmod_core::{Address, PlacementKind, ReplacementKind};
use randmod_server::{encode_spec, start, CampaignSpec, Client, ResultStore, ServerConfig, SpecMode};
use randmod_sim::checkpoint::{FaultPlan, FaultyStore, FileCheckpointStore};
use randmod_sim::config::PlatformConfig;
use randmod_sim::trace::{MemEvent, Trace};
use randmod_sim::{encode_solo_runs, Campaign, PackedTrace};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("randmod_cache_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn kernel_trace(stride: u64, loads: u64) -> PackedTrace {
    let mut trace = Trace::new();
    for rep in 0..6u64 {
        for i in 0..120u64 {
            trace.push(MemEvent::InstrFetch(Address::new(0x4000 + (i % 48) * 4)));
            if i % 2 == 0 {
                trace.push(MemEvent::Load(Address::new(
                    0x2_0000 + ((i + rep) % loads) * stride,
                )));
            }
            if i % 9 == 0 {
                trace.push(MemEvent::Store(Address::new(0x9_0000 + (i % 8) * 64)));
            }
        }
    }
    PackedTrace::from(&trace)
}

fn spec(config: PlatformConfig, seeds: Vec<u64>, trace: PackedTrace) -> CampaignSpec {
    CampaignSpec {
        config,
        campaign_seed: 7,
        mode: SpecMode::Fixed(seeds),
        trace,
    }
}

#[test]
fn direct_cold_and_warm_agree_bit_for_bit_across_a_grid() {
    let (handle, dir) = {
        let dir = temp_dir("grid");
        let store = ResultStore::in_dir(&dir).unwrap();
        (start(ServerConfig::default(), store).unwrap(), dir)
    };
    let mut client = Client::connect(handle.addr()).unwrap();

    let grid = [
        (PlacementKind::RandomModulo, ReplacementKind::Random, 256u64, 64u64),
        (PlacementKind::RandomModulo, ReplacementKind::Lru, 512, 96),
        (PlacementKind::HashRandom, ReplacementKind::Random, 256, 64),
        (PlacementKind::Modulo, ReplacementKind::RoundRobin, 128, 48),
    ];
    for (index, &(placement, replacement, stride, loads)) in grid.iter().enumerate() {
        let config = PlatformConfig::leon3()
            .with_l1_placement(placement)
            .with_replacement(replacement);
        let seeds: Vec<u64> = (0..25u64).map(|s| s * 31 + index as u64).collect();
        let trace = kernel_trace(stride, loads);
        let submission = spec(config, seeds.clone(), trace.clone());

        // (a) the direct engine path
        let campaign = Campaign::new(config, seeds.len()).with_campaign_seed(7);
        let direct = encode_solo_runs(campaign.run_seeds(&trace, &seeds).unwrap().runs());

        // (b) cold, (c) warm
        let body = encode_spec(&submission);
        let cold = client.post("/campaign", &body).unwrap();
        let warm = client.post("/campaign", &body).unwrap();
        assert_eq!(cold.status, 200);
        assert_eq!(warm.status, 200);
        assert_eq!(cold.header("X-Randmod-Cache"), Some("miss"), "grid point {index}");
        assert_eq!(warm.header("X-Randmod-Cache"), Some("hit"), "grid point {index}");
        assert_eq!(cold.body, direct, "cold response differs from run_seeds at {index}");
        assert_eq!(warm.body, direct, "warm response differs from run_seeds at {index}");
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_meaningful_spec_change_addresses_a_distinct_key() {
    let dir = temp_dir("keys");
    let store = ResultStore::in_dir(&dir).unwrap();
    let handle = start(ServerConfig::default(), store).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let base_config = PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo);
    let base = spec(base_config, vec![1, 2, 3, 4, 5], kernel_trace(256, 64));

    let mut key_of = |submission: &CampaignSpec| -> String {
        let response = client.post("/campaign", &encode_spec(submission)).unwrap();
        assert_eq!(response.status, 200);
        response.header("X-Randmod-Key").unwrap().to_string()
    };

    let base_key = key_of(&base);
    // Identical resubmission: same key (and necessarily a hit).
    assert_eq!(key_of(&base), base_key);

    let mut variants: Vec<(&str, CampaignSpec)> = Vec::new();
    variants.push(("seed value", {
        let mut v = base.clone();
        v.mode = SpecMode::Fixed(vec![1, 2, 3, 4, 6]);
        v
    }));
    variants.push(("seed order", {
        let mut v = base.clone();
        v.mode = SpecMode::Fixed(vec![5, 4, 3, 2, 1]);
        v
    }));
    variants.push(("seed count", {
        let mut v = base.clone();
        v.mode = SpecMode::Fixed(vec![1, 2, 3, 4]);
        v
    }));
    variants.push(("placement", {
        let mut v = base.clone();
        v.config = base_config.with_l1_placement(PlacementKind::HashRandom);
        v
    }));
    variants.push(("replacement", {
        let mut v = base.clone();
        v.config = base_config.with_replacement(ReplacementKind::Lru);
        v
    }));
    variants.push(("latency", {
        let mut v = base.clone();
        v.config.latencies.memory += 1;
        v
    }));
    variants.push(("trace body", {
        let mut v = base.clone();
        v.trace = kernel_trace(256, 65);
        v
    }));

    let mut seen = vec![base_key];
    for (what, variant) in variants {
        let key = key_of(&variant);
        assert!(
            !seen.contains(&key),
            "changing the {what} must change the cache key (collided on {key})"
        );
        seen.push(key);
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupted_entry_is_recomputed_not_served() {
    // Silent media corruption: every save persists, then gets one bit
    // flipped on disk.  Every subsequent load must fail validation and
    // recompute — the response stays correct, the cache just never
    // warms up.
    let dir = temp_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let entry_dir = dir.clone();
    let store = ResultStore::with_entries("bit-flipping store", move |key| {
        Box::new(FaultyStore::new(
            FileCheckpointStore::new(entry_dir.join(format!("res_{key:016x}.ckpt"))),
            FaultPlan::new().bit_flip_after_save(0, 97),
        ))
    });
    let handle = start(ServerConfig::default(), store).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let config = PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo);
    let seeds: Vec<u64> = (0..10u64).collect();
    let trace = kernel_trace(256, 64);
    let submission = spec(config, seeds.clone(), trace.clone());
    let body = encode_spec(&submission);

    let campaign = Campaign::new(config, seeds.len()).with_campaign_seed(7);
    let direct = encode_solo_runs(campaign.run_seeds(&trace, &seeds).unwrap().runs());

    for round in 0..3 {
        let response = client.post("/campaign", &body).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(
            response.header("X-Randmod-Cache"),
            Some("miss"),
            "round {round}: a corrupted entry must read as a miss"
        );
        assert_eq!(response.body, direct, "round {round}: served bytes must be correct");
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_truncated_entry_on_disk_is_recomputed() {
    let dir = temp_dir("truncated");
    let store = ResultStore::in_dir(&dir).unwrap();
    let handle = start(ServerConfig::default(), store).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let config = PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo);
    let seeds: Vec<u64> = (0..8u64).collect();
    let trace = kernel_trace(512, 48);
    let body = encode_spec(&spec(config, seeds.clone(), trace.clone()));

    let cold = client.post("/campaign", &body).unwrap();
    assert_eq!(cold.header("X-Randmod-Cache"), Some("miss"));
    let key = cold.header("X-Randmod-Key").unwrap().to_string();

    // Tear the entry in half behind the server's back.
    let path = dir.join(format!("res_{key}.ckpt"));
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let after = client.post("/campaign", &body).unwrap();
    assert_eq!(after.status, 200);
    assert_eq!(after.header("X-Randmod-Cache"), Some("miss"), "torn entry must recompute");
    assert_eq!(after.body, cold.body);

    // The recompute healed the entry: the next submission hits.
    let healed = client.post("/campaign", &body).unwrap();
    assert_eq!(healed.header("X-Randmod-Cache"), Some("hit"));
    assert_eq!(healed.body, cold.body);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
