//! Adaptive-campaign streaming battery: the chunked trajectory the
//! server streams is exactly the convergence record the engine
//! produces, and a warm replay streams byte-identical lines.

use randmod_core::{Address, PlacementKind};
use randmod_mbpta::online::ConvergenceCriterion;
use randmod_server::{encode_spec, start, CampaignSpec, Client, ResultStore, ServerConfig, SpecMode};
use randmod_sim::config::PlatformConfig;
use randmod_sim::trace::{MemEvent, Trace};
use randmod_sim::{Campaign, PackedTrace};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("randmod_stream_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn kernel() -> PackedTrace {
    let mut trace = Trace::new();
    for rep in 0..4u64 {
        for i in 0..150u64 {
            trace.push(MemEvent::InstrFetch(Address::new(0x4000 + (i % 56) * 4)));
            if i % 2 == 0 {
                trace.push(MemEvent::Load(Address::new(
                    0x2_0000 + ((i * 7 + rep) % 72) * 256,
                )));
            }
        }
    }
    PackedTrace::from(&trace)
}

fn quick_criterion() -> ConvergenceCriterion {
    ConvergenceCriterion::default()
        .with_min_runs(60)
        .with_check_interval(30)
        .with_block_size(10)
        .with_max_runs(300)
        .with_relative_tolerance(0.05)
}

#[test]
fn streamed_trajectory_matches_run_adaptive_and_replays_identically() {
    let dir = temp_dir("trajectory");
    let store = ResultStore::in_dir(&dir).unwrap();
    let handle = start(ServerConfig::default(), store).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let config = PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo);
    let trace = kernel();
    let criterion = quick_criterion();
    let spec = CampaignSpec {
        config,
        campaign_seed: 0xC0FFEE,
        mode: SpecMode::Adaptive(criterion),
        trace: trace.clone(),
    };

    // The direct engine path the stream must mirror.  The server runs
    // campaigns single-threaded; the engine is bit-identical across
    // thread counts, but match it anyway so this test pins the exact
    // configuration the service uses.
    let campaign = Campaign::new(config, criterion.max_runs)
        .with_campaign_seed(0xC0FFEE)
        .with_threads(1);
    let direct = campaign.run_adaptive(&trace, &criterion).unwrap();

    let body = encode_spec(&spec);
    let cold = client.post("/campaign", &body).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("X-Randmod-Cache"), Some("miss"));
    assert_eq!(
        cold.header("Transfer-Encoding").map(str::to_ascii_lowercase),
        Some("chunked".to_string())
    );

    let text = String::from_utf8(cold.body.clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        direct.trajectory().len() + 1,
        "one line per checkpoint plus the summary: {text}"
    );

    // Prefix: the checkpoint lines, in trajectory order with the exact
    // estimates (the first checkpoint's delta is infinite -> null).
    for (line, checkpoint) in lines.iter().zip(direct.trajectory()) {
        let delta = if checkpoint.relative_delta.is_finite() {
            format!("{}", checkpoint.relative_delta)
        } else {
            "null".to_string()
        };
        let expected = format!(
            "{{\"runs\":{},\"pwcet\":{},\"delta\":{}}}",
            checkpoint.runs, checkpoint.pwcet, delta
        );
        assert_eq!(*line, expected);
    }
    let first = lines.first().unwrap();
    assert!(first.contains("\"delta\":null"), "first checkpoint has no predecessor: {first}");

    // Summary line carries the verdict and the final estimate.
    let summary = lines.last().unwrap();
    let expected_summary = format!(
        "{{\"converged\":{},\"runs_used\":{},\"pwcet\":{}}}",
        direct.converged(),
        direct.runs_used(),
        direct.pwcet_estimate()
    );
    assert_eq!(*summary, expected_summary);

    // Warm replay: a cache hit whose streamed bytes are identical.
    let warm = client.post("/campaign", &body).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("X-Randmod-Cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "warm stream must be byte-identical");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adaptive_criterion_changes_rekey_the_cache() {
    let dir = temp_dir("rekey");
    let store = ResultStore::in_dir(&dir).unwrap();
    let handle = start(ServerConfig::default(), store).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let config = PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo);
    let trace = kernel();
    let mut key_of = |criterion: ConvergenceCriterion, campaign_seed: u64| {
        let spec = CampaignSpec {
            config,
            campaign_seed,
            mode: SpecMode::Adaptive(criterion),
            trace: trace.clone(),
        };
        let response = client.post("/campaign", &encode_spec(&spec)).unwrap();
        assert_eq!(response.status, 200);
        response.header("X-Randmod-Key").unwrap().to_string()
    };

    let base = key_of(quick_criterion(), 1);
    assert_eq!(key_of(quick_criterion(), 1), base, "identical spec, identical key");
    let variants = [
        key_of(quick_criterion().with_relative_tolerance(0.04), 1),
        key_of(quick_criterion().with_max_runs(299), 1),
        key_of(quick_criterion().with_target_probability(1e-9), 1),
        key_of(quick_criterion(), 2),
    ];
    for (index, variant) in variants.iter().enumerate() {
        assert_ne!(variant, &base, "variant {index} must re-key");
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
