//! Protocol robustness battery: the HTTP layer must be total over
//! hostile bytes.
//!
//! The parser ([`randmod_server::http::read_request`]) is fed arbitrary
//! byte streams, truncations of a valid request at every length, and
//! single-byte corruptions at every position; in every case it must
//! return a contextual [`HttpError`] or a well-formed request — never
//! panic, and never buffer a body the declared limits refuse.  The
//! socket-level tests then point real TCP clients at a running server:
//! pipelined requests each get a response, and a slow-loris peer that
//! dribbles its head slower than the read timeout gets disconnected
//! instead of pinning a thread.
//!
//! Case counts scale with the `PROTOCOL_FUZZ_CASES` environment
//! variable (default 48; CI turns it up).

use proptest::prelude::*;
use randmod_server::http::{read_request, HttpError, Limits};
use randmod_server::{start, ResultStore, ServerConfig};
use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn cases() -> u32 {
    std::env::var("PROTOCOL_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

fn tight_limits() -> Limits {
    Limits {
        max_head: 1024,
        max_body: 4096,
    }
}

/// A canonical valid request, body included.
fn valid_request_bytes() -> Vec<u8> {
    b"POST /campaign HTTP/1.1\r\nHost: t\r\nContent-Length: 11\r\n\r\nhello bytes".to_vec()
}

/// Parses from an in-memory stream; the return value only matters in
/// that producing it must not panic.
fn parse(bytes: &[u8], limits: &Limits) -> Result<Option<randmod_server::http::Request>, HttpError> {
    read_request(&mut Cursor::new(bytes), limits)
}

#[test]
fn truncations_of_a_valid_request_never_panic() {
    let bytes = valid_request_bytes();
    let limits = tight_limits();
    for cut in 0..=bytes.len() {
        let outcome = parse(&bytes[..cut], &limits);
        match outcome {
            Ok(Some(request)) => {
                // Only the full request parses completely.
                assert_eq!(cut, bytes.len());
                assert_eq!(request.body, b"hello bytes");
            }
            Ok(None) => assert_eq!(cut, 0, "only empty input is a clean EOF"),
            Err(err) => {
                assert!(!err.to_string().is_empty());
            }
        }
    }
}

#[test]
fn every_single_byte_flip_is_handled() {
    let bytes = valid_request_bytes();
    let limits = tight_limits();
    for index in 0..bytes.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut mutated = bytes.clone();
            mutated[index] ^= flip;
            // No panic, and any accepted request respects the limits.
            if let Ok(Some(request)) = parse(&mutated, &limits) {
                assert!(request.body.len() <= limits.max_body);
            }
        }
    }
}

#[test]
fn oversized_declarations_are_refused_with_context() {
    let limits = tight_limits();
    let head = format!(
        "POST /campaign HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        limits.max_body + 1
    );
    match parse(head.as_bytes(), &limits) {
        Err(HttpError::BodyTooLarge { limit }) => assert_eq!(limit, limits.max_body),
        other => panic!("expected BodyTooLarge, got {other:?}"),
    }

    let huge_head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(limits.max_head + 8));
    match parse(huge_head.as_bytes(), &limits) {
        Err(HttpError::HeadTooLarge { limit }) => assert_eq!(limit, limits.max_head),
        other => panic!("expected HeadTooLarge, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Arbitrary byte soup: the parser returns, it does not panic.
    #[test]
    fn arbitrary_streams_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = parse(&bytes, &tight_limits());
    }

    /// Byte soup that starts like a request line: exercises the header
    /// and body machinery past the first-line checks.
    #[test]
    fn request_shaped_streams_never_panic(
        tail in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let mut bytes = b"POST /campaign HTTP/1.1\r\n".to_vec();
        bytes.extend_from_slice(&tail);
        let _ = parse(&bytes, &tight_limits());
    }

    /// Corruption at a random position with a random mask, over the
    /// valid request (denser coverage than the exhaustive three-mask
    /// sweep above).
    #[test]
    fn random_corruption_never_panics(index in 0usize..58, mask in 1u8..=255) {
        let mut bytes = valid_request_bytes();
        let at = index % bytes.len();
        bytes[at] ^= mask;
        let _ = parse(&bytes, &tight_limits());
    }
}

// ---------------------------------------------------------------------------
// Socket-level behaviour against a live server
// ---------------------------------------------------------------------------

fn temp_store(tag: &str) -> (ResultStore, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("randmod_protocol_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (ResultStore::in_dir(&dir).unwrap(), dir)
}

#[test]
fn pipelined_requests_each_get_a_response() {
    let (store, dir) = temp_store("pipeline");
    let handle = start(
        ServerConfig {
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
        store,
    )
    .unwrap();

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Two health checks in one write: both must be answered, in order.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\nGET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8_lossy(&response);
    let ok_count = text.matches("HTTP/1.1 200 OK").count();
    assert_eq!(ok_count, 2, "both pipelined requests must be answered: {text}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_loris_is_disconnected_by_the_read_timeout() {
    let (store, dir) = temp_store("loris");
    let handle = start(
        ServerConfig {
            read_timeout: Duration::from_millis(150),
            ..ServerConfig::default()
        },
        store,
    )
    .unwrap();

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Dribble a partial request head, then stall past the deadline.
    stream.write_all(b"GET /healthz HT").unwrap();
    std::thread::sleep(Duration::from_millis(600));
    // The server must have dropped us: the read observes EOF (possibly
    // after an error response) rather than hanging.
    let mut buf = Vec::new();
    let outcome = stream.read_to_end(&mut buf);
    assert!(
        outcome.is_ok(),
        "expected EOF from a dropped connection, got {outcome:?}"
    );

    // And the server is still healthy for well-behaved clients.
    let mut client = randmod_server::Client::connect(handle.addr()).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_refusals_are_wellformed_error_responses() {
    let (store, dir) = temp_store("refusal");
    let handle = start(ServerConfig::default(), store).unwrap();

    // An unparseable request line gets a 400 and a close.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 400 "), "{text}");

    // An unsupported version gets a 505.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(b"GET / HTTP/2.0\r\n\r\n").unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 505 "), "{text}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
