//! Concurrency battery: backpressure under saturation and graceful
//! shutdown.
//!
//! With a single worker slot, a long-running submission must push
//! concurrent cache *misses* into the `429 Retry-After` path while
//! cache *hits* keep flowing (hits never take a permit — that asymmetry
//! is the design).  And a shutdown issued while a campaign is in flight
//! must drain: the accepted campaign finishes, its response is
//! delivered in full, and the store entry it persisted validates
//! afterwards.

use randmod_core::{Address, PlacementKind};
use randmod_server::{encode_spec, start, CampaignSpec, Client, ResultStore, ServerConfig, SpecMode};
use randmod_sim::checkpoint::decode_checkpoint;
use randmod_sim::config::PlatformConfig;
use randmod_sim::trace::{MemEvent, Trace};
use randmod_sim::{encode_solo_runs, Campaign, PackedTrace};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("randmod_conc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn trace_of(events: u64, salt: u64) -> PackedTrace {
    let mut trace = Trace::new();
    for i in 0..events {
        trace.push(MemEvent::InstrFetch(Address::new(0x4000 + (i % 64) * 4)));
        if i % 2 == 0 {
            trace.push(MemEvent::Load(Address::new(
                0x2_0000 + ((i * 13 + salt) % 80) * 256,
            )));
        }
    }
    PackedTrace::from(&trace)
}

fn fixed_spec(salt: u64, runs: u64, events: u64) -> CampaignSpec {
    CampaignSpec {
        config: PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
        campaign_seed: 7,
        mode: SpecMode::Fixed((0..runs).map(|s| s * 17 + salt).collect()),
        trace: trace_of(events, salt),
    }
}

#[test]
fn saturation_yields_429_for_misses_while_hits_keep_flowing() {
    let dir = temp_dir("saturate");
    let store = ResultStore::in_dir(&dir).unwrap();
    let handle = start(
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
        store,
    )
    .unwrap();
    let addr = handle.addr();

    // Warm one cheap entry while the server is idle.
    let cheap = encode_spec(&fixed_spec(1, 5, 500));
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.post("/campaign", &cheap).unwrap().status, 200);

    // Occupy the single worker with a heavyweight submission (retrying
    // through 429s: a probe below may win the permit race first).
    let slow = encode_spec(&fixed_spec(2, 600, 20_000));
    let slow_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        loop {
            let response = client.post("/campaign", &slow).unwrap();
            if response.status != 429 {
                return response;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    });

    // While it runs: distinct specs (misses) must eventually see 429,
    // and the warmed entry must still hit.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut saw_429 = false;
    let mut saw_hit_during_saturation = false;
    let mut salt = 100u64;
    while Instant::now() < deadline && !(saw_429 && saw_hit_during_saturation) {
        let probe = encode_spec(&fixed_spec(salt, 3, 200));
        salt += 1;
        let response = client.post("/campaign", &probe).unwrap();
        match response.status {
            429 => {
                assert_eq!(response.header("Retry-After"), Some("1"));
                saw_429 = true;
                let hit = client.post("/campaign", &cheap).unwrap();
                if hit.status == 200 && hit.header("X-Randmod-Cache") == Some("hit") {
                    saw_hit_during_saturation = true;
                }
            }
            200 => {
                // The worker was momentarily free; keep probing.
            }
            other => panic!("unexpected status {other}"),
        }
        if slow_thread.is_finished() {
            break;
        }
    }
    let slow_response = slow_thread.join().unwrap();
    assert_eq!(slow_response.status, 200, "the slow campaign must complete");
    assert!(saw_429, "saturating one worker must produce a 429");
    assert!(
        saw_hit_during_saturation,
        "cache hits must not need a worker permit"
    );

    // After the drain the pool is free again: a fresh miss computes.
    let fresh = encode_spec(&fixed_spec(9999, 3, 200));
    assert_eq!(client.post("/campaign", &fresh).unwrap().status, 200);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_inflight_campaigns_and_keeps_the_store_valid() {
    let dir = temp_dir("drain");
    let store = ResultStore::in_dir(&dir).unwrap();
    let handle = start(ServerConfig::default(), store).unwrap();
    let addr = handle.addr();

    let spec = fixed_spec(5, 400, 20_000);
    let body = encode_spec(&spec);
    let inflight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.post("/campaign", &body).unwrap()
    });

    // Give the submission time to be accepted, then pull the plug.
    std::thread::sleep(Duration::from_millis(150));
    handle.shutdown();

    // The accepted campaign was not dropped: its full response arrived.
    let response = inflight.join().unwrap();
    assert_eq!(response.status, 200);
    let key = response.header("X-Randmod-Key").unwrap().to_string();

    // The bytes match the direct engine path...
    let SpecMode::Fixed(seeds) = &spec.mode else {
        unreachable!()
    };
    let campaign = Campaign::new(spec.config, seeds.len()).with_campaign_seed(7);
    let direct = encode_solo_runs(campaign.run_seeds(&spec.trace, seeds).unwrap().runs());
    assert_eq!(response.body, direct);

    // ...and the entry the drain persisted validates end to end.
    let entry = std::fs::read(dir.join(format!("res_{key}.ckpt"))).unwrap();
    let decoded = decode_checkpoint(&entry, "drained entry").unwrap();
    assert_eq!(decoded.records.len(), 1);
    assert_eq!(decoded.records[0].payload, direct);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_identical_submissions_converge_on_one_entry() {
    // Several clients race the same spec: whatever interleaving of
    // misses and hits they observe, every response carries the same
    // bytes and the store ends with one valid entry.
    let dir = temp_dir("race");
    let store = ResultStore::in_dir(&dir).unwrap();
    let handle = start(
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
        store,
    )
    .unwrap();
    let addr = handle.addr();

    let body = encode_spec(&fixed_spec(11, 20, 2_000));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Retry through transient 429s: the race partners hold
                // permits only briefly.
                loop {
                    let response = client.post("/campaign", &body).unwrap();
                    if response.status == 200 {
                        return response.body;
                    }
                    assert_eq!(response.status, 429);
                    std::thread::sleep(Duration::from_millis(50));
                }
            })
        })
        .collect();
    let bodies: Vec<Vec<u8>> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "racing clients must all see the same bytes");
    }

    handle.shutdown();

    // Exactly one entry, and it validates.
    let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(entries.len(), 1, "one spec must produce one store entry");
    let entry = std::fs::read(entries[0].as_ref().unwrap().path()).unwrap();
    let decoded = decode_checkpoint(&entry, "raced entry").unwrap();
    assert_eq!(decoded.records[0].payload, bodies[0]);

    let _ = std::fs::remove_dir_all(&dir);
}
