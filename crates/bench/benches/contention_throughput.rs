//! Contended-campaign throughput: the shared-L2 engine's perf record.
//!
//! Replays the `fig6_contention` victim (the 20KB synthetic kernel)
//! co-scheduled against the stress opponent ladder through
//! [`Campaign::run_contended`], for both arbitration policies, on one
//! worker thread.  Before timing anything the bench asserts the solo
//! equivalence gate — a contended campaign with an idle opponent must
//! reproduce `run_seeds` bit-for-bit — so this bench doubles as the CI
//! smoke check of the contention engine's defining invariant.
//!
//! In bench mode it prints a `throughput:` line per configuration in
//! events/second (total interleaved events across all tasks).
//!
//! Environment knobs:
//!
//! * `CAMPAIGN_BENCH_QUICK=1` — 20-run campaigns (CI smoke mode).
//! * `CAMPAIGN_BENCH_RUNS=N` — explicit run count (default 200).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use randmod_core::PlacementKind;
use randmod_sim::contention::Arbitration;
use randmod_sim::{Campaign, PackedTrace, PlatformConfig};
use randmod_workloads::{CoSchedule, MemoryLayout, SyntheticKernel};
use std::hint::black_box;
use std::time::Instant;

const CAMPAIGN_SEED: u64 = 0xC0DE;

fn runs() -> usize {
    if std::env::var_os("CAMPAIGN_BENCH_QUICK").is_some() {
        return 20;
    }
    std::env::var("CAMPAIGN_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn platform() -> PlatformConfig {
    PlatformConfig::leon3()
        .with_l1_placement(PlacementKind::RandomModulo)
        .with_l2_placement(PlacementKind::RandomModulo)
}

fn seeds(runs: usize) -> Vec<u64> {
    (0..runs as u64).map(|i| i.wrapping_mul(0x9E37_79B9) ^ CAMPAIGN_SEED).collect()
}

fn contention_throughput(c: &mut Criterion) {
    let runs = runs();
    let seed_list = seeds(runs);
    let campaign = |arbitration: Arbitration| {
        Campaign::new(platform(), runs)
            .with_campaign_seed(CAMPAIGN_SEED)
            .with_threads(1)
            .with_arbitration(arbitration)
    };

    // Equivalence gate: an idle co-schedule is the solo protocol.
    let victim = SyntheticKernel::fits_l2();
    let solo_sources: Vec<PackedTrace> =
        CoSchedule::pressure_level(victim, 0).packed_traces(&MemoryLayout::default());
    let gate_seeds = &seed_list[..seed_list.len().min(20)];
    let reference = campaign(Arbitration::RoundRobin)
        .run_seeds(&solo_sources[0], gate_seeds)
        .expect("valid platform");
    for arbitration in Arbitration::ALL {
        let contended = campaign(arbitration)
            .run_contended(&solo_sources, gate_seeds)
            .expect("valid platform");
        assert_eq!(
            contended.victim_result(),
            reference,
            "solo contended campaign diverged from run_seeds under {arbitration}"
        );
    }

    let mut group = c.benchmark_group("contention_throughput");
    group.sample_size(10);
    for pressure in [2usize, 3] {
        let sources: Vec<PackedTrace> =
            CoSchedule::pressure_level(victim, pressure).packed_traces(&MemoryLayout::default());
        let events: u64 = sources.iter().map(|t| t.len() as u64).sum();
        group.throughput(Throughput::Elements(events * runs as u64));
        for arbitration in Arbitration::ALL {
            if bench_mode() {
                let start = Instant::now();
                black_box(
                    campaign(arbitration)
                        .run_contended(&sources, &seed_list)
                        .expect("valid platform"),
                );
                let elapsed = start.elapsed().as_secs_f64();
                println!(
                    "throughput: contended/P{}/{} {:.3e} events/sec ({} runs x {} events)",
                    pressure,
                    arbitration,
                    (events * runs as u64) as f64 / elapsed,
                    runs,
                    events
                );
            }
            group.bench_with_input(
                BenchmarkId::new(format!("P{pressure}"), format!("{arbitration}")),
                &sources,
                |b, sources| {
                    b.iter(|| {
                        black_box(
                            campaign(arbitration)
                                .run_contended(sources, &seed_list)
                                .expect("valid platform"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, contention_throughput);
criterion_main!(benches);
