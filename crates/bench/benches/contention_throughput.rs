//! Contended-campaign throughput: the shared-L2 engine's perf record.
//!
//! Replays the `fig6_contention` victim (the 20KB synthetic kernel)
//! co-scheduled against the stress opponent ladder through
//! [`Campaign::run_contended`], on one worker thread, in three engine
//! configurations per pressure level:
//!
//! * `round-robin/batched` — the default lane count, i.e. the
//!   lane-batched [`BatchContentionCore`] path (one interleave per
//!   campaign, replayed across placement-seed lanes);
//! * `round-robin/scalar` — `with_lanes(1)`, the sequential per-seed
//!   [`ContentionCore`] escape hatch (the pre-lane-batching record);
//! * `seeded-random` — the seed-dependent schedule, always scalar.
//!
//! Before timing anything the bench asserts two equivalence gates, so it
//! doubles as the CI smoke check of the contention engine's defining
//! invariants: a contended campaign with an idle opponent must reproduce
//! `run_seeds` bit-for-bit (on the batched *and* the scalar engine), and
//! the batched round-robin path must reproduce the scalar per-seed
//! engine bit-for-bit on a real co-schedule.
//!
//! In bench mode it prints a `throughput:` line per configuration in
//! events/second (total interleaved events across all tasks).
//!
//! Environment knobs:
//!
//! * `CAMPAIGN_BENCH_QUICK=1` — 20-run campaigns (CI smoke mode).
//! * `CAMPAIGN_BENCH_RUNS=N` — explicit run count (default 200).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use randmod_core::PlacementKind;
use randmod_sim::contention::Arbitration;
use randmod_sim::{Campaign, PackedTrace, PlatformConfig};
use randmod_workloads::{CoSchedule, MemoryLayout, SyntheticKernel};
use std::hint::black_box;
use std::time::Instant;

const CAMPAIGN_SEED: u64 = 0xC0DE;

fn runs() -> usize {
    if std::env::var_os("CAMPAIGN_BENCH_QUICK").is_some() {
        return 20;
    }
    std::env::var("CAMPAIGN_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn platform() -> PlatformConfig {
    PlatformConfig::leon3()
        .with_l1_placement(PlacementKind::RandomModulo)
        .with_l2_placement(PlacementKind::RandomModulo)
}

fn seeds(runs: usize) -> Vec<u64> {
    (0..runs as u64).map(|i| i.wrapping_mul(0x9E37_79B9) ^ CAMPAIGN_SEED).collect()
}

fn contention_throughput(c: &mut Criterion) {
    let runs = runs();
    let seed_list = seeds(runs);
    let campaign = |arbitration: Arbitration| {
        Campaign::new(platform(), runs)
            .with_campaign_seed(CAMPAIGN_SEED)
            .with_threads(1)
            .with_arbitration(arbitration)
    };

    // Solo-equivalence gate: an idle co-schedule is the solo protocol —
    // on the batched engine (default lanes) and the scalar escape hatch.
    let victim = SyntheticKernel::fits_l2();
    let solo_sources: Vec<PackedTrace> =
        CoSchedule::pressure_level(victim, 0).packed_traces(&MemoryLayout::default());
    let gate_seeds = &seed_list[..seed_list.len().min(20)];
    let reference = campaign(Arbitration::RoundRobin)
        .run_seeds(&solo_sources[0], gate_seeds)
        .expect("valid platform");
    for arbitration in Arbitration::ALL {
        for lanes in [None, Some(1)] {
            let mut solo_campaign = campaign(arbitration);
            if let Some(lanes) = lanes {
                solo_campaign = solo_campaign.with_lanes(lanes);
            }
            let contended = solo_campaign
                .run_contended(&solo_sources, gate_seeds)
                .expect("valid platform");
            assert_eq!(
                contended.victim_result(),
                reference,
                "solo contended campaign diverged from run_seeds under {arbitration} (lanes {lanes:?})"
            );
        }
    }

    // Batched-vs-scalar gate: on a real co-schedule, the lane-batched
    // round-robin engine must reproduce the scalar per-seed engine
    // bit-for-bit.
    let gate_sources: Vec<PackedTrace> =
        CoSchedule::pressure_level(victim, 2).packed_traces(&MemoryLayout::default());
    let batched = campaign(Arbitration::RoundRobin)
        .run_contended(&gate_sources, gate_seeds)
        .expect("valid platform");
    let scalar = campaign(Arbitration::RoundRobin)
        .with_lanes(1)
        .run_contended(&gate_sources, gate_seeds)
        .expect("valid platform");
    assert_eq!(
        batched, scalar,
        "lane-batched round-robin campaign diverged from the scalar per-seed engine"
    );

    let configurations: [(&str, Arbitration, Option<usize>); 3] = [
        ("round-robin/batched", Arbitration::RoundRobin, None),
        ("round-robin/scalar", Arbitration::RoundRobin, Some(1)),
        ("seeded-random", Arbitration::SeededRandom, None),
    ];
    let mut group = c.benchmark_group("contention_throughput");
    group.sample_size(10);
    for pressure in [2usize, 3] {
        let sources: Vec<PackedTrace> =
            CoSchedule::pressure_level(victim, pressure).packed_traces(&MemoryLayout::default());
        let events: u64 = sources.iter().map(|t| t.len() as u64).sum();
        group.throughput(Throughput::Elements(events * runs as u64));
        for (label, arbitration, lanes) in configurations {
            let build = || {
                let mut c = campaign(arbitration);
                if let Some(lanes) = lanes {
                    c = c.with_lanes(lanes);
                }
                c
            };
            if bench_mode() {
                let start = Instant::now();
                black_box(
                    build().run_contended(&sources, &seed_list).expect("valid platform"),
                );
                let elapsed = start.elapsed().as_secs_f64();
                println!(
                    "throughput: contended/P{}/{} {:.3e} events/sec ({} runs x {} events)",
                    pressure,
                    label,
                    (events * runs as u64) as f64 / elapsed,
                    runs,
                    events
                );
            }
            group.bench_with_input(
                BenchmarkId::new(format!("P{pressure}"), label),
                &sources,
                |b, sources| {
                    b.iter(|| {
                        black_box(
                            build().run_contended(sources, &seed_list).expect("valid platform"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, contention_throughput);
criterion_main!(benches);
