//! One benchmark per table and figure of the paper's evaluation: each runs
//! a reduced-size version of the corresponding experiment through the same
//! code path as its `randmod-experiments` binary and sanity-checks the
//! result's shape, so `cargo bench` doubles as a regeneration smoke test.

use criterion::{criterion_group, criterion_main, Criterion};
use randmod_bench::BENCH_RUNS;
use randmod_experiments::cli::ExperimentOptions;
use randmod_experiments::{fig1, fig4, fig5, sec44, table1, table2};
use randmod_workloads::{EembcBenchmark, SyntheticKernel};
use std::hint::black_box;

/// Bench-sized options: `BENCH_RUNS` runs with the given campaign seed.
fn bench_options(seed: u64) -> ExperimentOptions {
    ExperimentOptions::default()
        .with_runs(BENCH_RUNS)
        .with_campaign_seed(seed)
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("paper/table1_hwcost", |b| {
        b.iter(|| {
            let report = table1::generate();
            assert!(report.area_ratio() > 5.0);
            black_box(report)
        })
    });
}

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/fig1_pwcet_curve");
    group.sample_size(10);
    group.bench_function("generate", |b| {
        b.iter(|| {
            let result = fig1::generate(&bench_options(1)).expect("valid platform");
            assert_eq!(result.points.len(), 18);
            black_box(result)
        })
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/table2_iid_tests");
    group.sample_size(10);
    group.bench_function("one_benchmark_row", |b| {
        b.iter(|| {
            let row = table2::row_for(EembcBenchmark::Puwmod, &bench_options(2)).expect("valid platform");
            assert!(row.ww_statistic.is_finite());
            black_box(row)
        })
    });
    group.finish();
}

fn bench_fig4a(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/fig4a_rm_vs_hrp");
    group.sample_size(10);
    group.bench_function("one_benchmark_row", |b| {
        b.iter(|| {
            let row = fig4::fig4a_row(EembcBenchmark::Bitmnp, &bench_options(3)).expect("valid platform");
            assert!(row.pwcet_rm > 0.0 && row.pwcet_hrp > 0.0);
            black_box(row)
        })
    });
    group.finish();
}

fn bench_fig4b(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/fig4b_rm_vs_det");
    group.sample_size(10);
    group.bench_function("one_benchmark_row", |b| {
        b.iter(|| {
            let row =
                fig4::fig4b_row(EembcBenchmark::Rspeed, 8, &bench_options(4)).expect("valid platform");
            assert!(row.deterministic_hwm.value() > 0);
            black_box(row)
        })
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/fig5_synthetic");
    group.sample_size(10);
    group.bench_function("20kb_comparison", |b| {
        b.iter(|| {
            let result = fig5::compare(
                SyntheticKernel::with_traversals(20 * 1024, 5),
                &bench_options(5),
            )
            .expect("valid platform");
            assert!(result.hrp_pwcet >= result.rm_pwcet * 0.9);
            black_box(result)
        })
    });
    group.finish();
}

fn bench_sec44(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/sec44_avg_performance");
    group.sample_size(10);
    group.bench_function("one_benchmark_row", |b| {
        b.iter(|| {
            let row = sec44::row_for(EembcBenchmark::Rspeed, &bench_options(6)).expect("valid platform");
            assert!(row.modulo_cycles > 0.0);
            black_box(row)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig1,
    bench_table2,
    bench_fig4a,
    bench_fig4b,
    bench_fig5,
    bench_sec44
);
criterion_main!(benches);
