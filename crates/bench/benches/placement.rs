//! Microbenchmarks of the placement functions: how long it takes each
//! policy to map an address to a set (the operation on the cache-access
//! critical path that `randmod-hwcost` models in hardware).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use randmod_core::{Address, CacheGeometry, PlacementKind};
use std::hint::black_box;

fn placement_throughput(c: &mut Criterion) {
    let geometry = CacheGeometry::leon3_l1();
    let addresses: Vec<Address> = (0..4096u64).map(|i| Address::new(0x4000_0000 + i * 32)).collect();

    let mut group = c.benchmark_group("placement/set_index");
    group.throughput(Throughput::Elements(addresses.len() as u64));
    for kind in PlacementKind::ALL {
        let mut policy = kind.build(geometry).expect("valid geometry");
        policy.reseed(0xBEEF);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &addresses, |b, addrs| {
            b.iter(|| {
                let mut acc = 0u32;
                for &addr in addrs {
                    acc = acc.wrapping_add(policy.set_index(black_box(addr)));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn reseed_cost(c: &mut Criterion) {
    let geometry = CacheGeometry::leon3_l1();
    let mut group = c.benchmark_group("placement/reseed");
    for kind in [PlacementKind::HashRandom, PlacementKind::RandomModulo] {
        let mut policy = kind.build(geometry).expect("valid geometry");
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(kind), &(), |b, _| {
            b.iter(|| {
                seed = seed.wrapping_add(1);
                policy.reseed(black_box(seed));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, placement_throughput, reseed_cost);
criterion_main!(benches);
