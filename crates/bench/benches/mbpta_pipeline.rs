//! Microbenchmarks of the MBPTA statistical pipeline: i.i.d. tests, Gumbel
//! fitting and pWCET projection over samples of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use randmod_mbpta::{ExecutionSample, MbptaAnalysis, MbptaConfig};
use std::hint::black_box;

fn synthetic_sample(n: usize) -> ExecutionSample {
    // Exponential-ish noise on top of a base time; deterministic stream.
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let values: Vec<u64> = (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
            700_000 + (8_000.0 * -(1.0 - u).ln()) as u64
        })
        .collect();
    ExecutionSample::from_cycles(&values)
}

fn full_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mbpta/full_analysis");
    for &runs in &[250usize, 1_000, 4_000] {
        let sample = synthetic_sample(runs);
        let analysis = MbptaAnalysis::new(MbptaConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(runs), &sample, |b, sample| {
            b.iter(|| black_box(analysis.analyze(black_box(sample))))
        });
    }
    group.finish();
}

fn pwcet_projection(c: &mut Criterion) {
    let sample = synthetic_sample(1_000);
    let report = MbptaAnalysis::new(MbptaConfig::default()).analyze(&sample);
    c.bench_function("mbpta/pwcet_projection", |b| {
        b.iter(|| black_box(report.pwcet_at(black_box(1e-15))))
    });
}

criterion_group!(benches, full_analysis, pwcet_projection);
criterion_main!(benches);
