//! Adaptive vs fixed MBPTA campaigns: the runs-saved record.
//!
//! Runs the convergence-driven campaign engine on two opposite workload
//! shapes and compares it against the fixed-schedule protocol at the same
//! campaign seed:
//!
//! * **low variance** — an EEMBC-like kernel under Random Modulo, whose
//!   execution time is (near-)constant across seeds: the convergence loop
//!   stops at its floor instead of paying the full schedule;
//! * **high variance** — the 20KB synthetic kernel under hRP, the widest
//!   execution-time spread in the evaluation: convergence genuinely needs
//!   checkpoints of runs.
//!
//! Before timing, the bench asserts the tentpole guarantee — the adaptive
//! campaign's runs are a bit-identical prefix of `run_seeds` with the same
//! seeds — and in `--bench` mode prints one `adaptive:` line per scenario
//! recording runs used vs the fixed schedule (the numbers EXPERIMENTS.md
//! tracks).
//!
//! Environment knobs:
//!
//! * `CAMPAIGN_BENCH_QUICK=1` — smoke-test sizes (CI mode).
//! * `CAMPAIGN_BENCH_RUNS=N` — fixed-schedule size (default 1,000).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use randmod_bench::{bench_kernel, bench_platform};
use randmod_core::prng::SeedSequence;
use randmod_core::PlacementKind;
use randmod_mbpta::ConvergenceCriterion;
use randmod_sim::{Campaign, PackedTrace, PlatformConfig};
use randmod_workloads::{EembcBenchmark, MemoryLayout, Workload};
use std::hint::black_box;

/// The campaign seed used by every configuration (fixed so recorded
/// numbers are comparable across machines and PRs).
const CAMPAIGN_SEED: u64 = 0xBEEF;

fn fixed_runs() -> usize {
    if std::env::var_os("CAMPAIGN_BENCH_QUICK").is_some() {
        return 40;
    }
    std::env::var("CAMPAIGN_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn criterion_for(max_runs: usize) -> ConvergenceCriterion {
    let quick = std::env::var_os("CAMPAIGN_BENCH_QUICK").is_some();
    let base = if quick {
        ConvergenceCriterion::default()
            .with_min_runs(20)
            .with_check_interval(10)
            .with_stable_checkpoints(2)
    } else {
        ConvergenceCriterion::default()
    };
    base.with_max_runs(max_runs)
}

fn campaign(platform: PlatformConfig) -> Campaign {
    Campaign::new(platform, fixed_runs())
        .with_campaign_seed(CAMPAIGN_SEED)
        .with_threads(1)
}

fn campaign_adaptive(c: &mut Criterion) {
    let scenarios: [(&str, PlatformConfig, PackedTrace); 2] = [
        (
            "low-variance-rm",
            bench_platform(PlacementKind::RandomModulo),
            EembcBenchmark::A2time.packed_trace(&MemoryLayout::default()),
        ),
        (
            "high-variance-hrp",
            bench_platform(PlacementKind::HashRandom),
            bench_kernel().packed_trace(&MemoryLayout::default()),
        ),
    ];
    let runs = fixed_runs();
    let criterion = criterion_for(runs);

    let mut group = c.benchmark_group("campaign_adaptive");
    group.sample_size(10);

    for (label, platform, trace) in &scenarios {
        // Equivalence gate: the adaptive schedule must be a bit-identical
        // prefix of the fixed seed schedule before its runtime means
        // anything.
        let adaptive = campaign(*platform)
            .run_adaptive(trace, &criterion)
            .expect("valid platform");
        let seeds: Vec<u64> = SeedSequence::new(CAMPAIGN_SEED)
            .take(adaptive.runs_used())
            .collect();
        let fixed_prefix = campaign(*platform)
            .run_seeds(trace, &seeds)
            .expect("valid platform");
        assert_eq!(
            adaptive.result(),
            &fixed_prefix,
            "adaptive prefix diverged from run_seeds for {label}"
        );

        if bench_mode() {
            println!(
                "adaptive: {} {} runs vs {} fixed ({} saved, {}, pWCET(1e-12) estimate {:.0})",
                label,
                adaptive.runs_used(),
                runs,
                runs.saturating_sub(adaptive.runs_used()),
                if adaptive.converged() { "converged" } else { "run cap reached" },
                adaptive.pwcet_estimate()
            );
        }

        group.bench_with_input(BenchmarkId::new(*label, "adaptive"), trace, |b, trace| {
            b.iter(|| black_box(campaign(*platform).run_adaptive(trace, &criterion).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new(*label, "fixed"), trace, |b, trace| {
            b.iter(|| black_box(campaign(*platform).run(trace).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, campaign_adaptive);
criterion_main!(benches);
