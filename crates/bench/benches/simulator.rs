//! Microbenchmarks of the cache-hierarchy simulator: trace-replay
//! throughput for each placement policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use randmod_bench::{bench_platform, bench_trace};
use randmod_core::PlacementKind;
use randmod_sim::InOrderCore;
use std::hint::black_box;

fn trace_replay(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("simulator/trace_replay");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(20);
    for kind in [
        PlacementKind::Modulo,
        PlacementKind::HashRandom,
        PlacementKind::RandomModulo,
    ] {
        let mut core = InOrderCore::new(&bench_platform(kind)).expect("valid platform");
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(kind), &trace, |b, trace| {
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let (cycles, _) = core.execute_isolated(black_box(trace), seed);
                black_box(cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, trace_replay);
criterion_main!(benches);
