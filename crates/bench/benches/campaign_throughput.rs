//! Campaign throughput: the repo's recorded perf baseline.
//!
//! Replays the 1,000-seed EEMBC-style measurement campaign (the paper's
//! MBPTA protocol on the `cacheb` kernel) through [`Campaign`] in both
//! engine shapes — `batched` (the default, [`Campaign::DEFAULT_LANES`]
//! seed lanes per trace decode) and `sequential` (`with_lanes(1)`, one
//! hierarchy per decode pass) — for every placement kind, on one worker
//! thread so the numbers measure the replay engine rather than the host's
//! core count.
//!
//! Before timing anything the bench asserts that both shapes produce the
//! same `CampaignResult` bit-for-bit; a divergence aborts the bench (this
//! is the equivalence gate the `bench-smoke` CI step relies on).  In bench
//! mode it also prints a `throughput:` line per configuration in
//! events/second — the numbers recorded in `BENCH_baseline.json` and
//! EXPERIMENTS.md.
//!
//! Environment knobs:
//!
//! * `CAMPAIGN_BENCH_QUICK=1` — 40-run campaigns (CI smoke mode).
//! * `CAMPAIGN_BENCH_RUNS=N` — explicit run count (default 1,000).
//! * `CAMPAIGN_BENCH_LANES=1,4,8,16` — lane-width sweep: the equivalence
//!   gate runs once per width (each width must reproduce the sequential
//!   engine bit-for-bit), and bench mode prints one `throughput:` line
//!   per width.  Defaults to [`Campaign::DEFAULT_LANES`] alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use randmod_bench::bench_platform;
use randmod_core::PlacementKind;
use randmod_sim::{Campaign, CampaignResult, PackedTrace, PlatformConfig};
use randmod_workloads::{EembcBenchmark, MemoryLayout, Workload};
use std::hint::black_box;
use std::time::Instant;

/// The campaign seed used by every timed configuration (fixed so recorded
/// numbers are comparable across machines and PRs).
const CAMPAIGN_SEED: u64 = 0xBEEF;

fn runs() -> usize {
    if std::env::var_os("CAMPAIGN_BENCH_QUICK").is_some() {
        return 40;
    }
    std::env::var("CAMPAIGN_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Lane widths to gate and time (`CAMPAIGN_BENCH_LANES`, comma-separated).
fn lane_widths() -> Vec<usize> {
    let Ok(spec) = std::env::var("CAMPAIGN_BENCH_LANES") else {
        return vec![Campaign::DEFAULT_LANES];
    };
    let widths: Vec<usize> = spec
        .split(',')
        .map(|tok| {
            let width = tok
                .trim()
                .parse()
                .expect("CAMPAIGN_BENCH_LANES takes comma-separated lane widths");
            assert!(width >= 1, "lane widths must be at least 1");
            width
        })
        .collect();
    assert!(!widths.is_empty(), "CAMPAIGN_BENCH_LANES must name at least one width");
    widths
}

fn campaign(platform: PlatformConfig, runs: usize, lanes: usize) -> Campaign {
    Campaign::new(platform, runs)
        .with_campaign_seed(CAMPAIGN_SEED)
        .with_threads(1)
        .with_lanes(lanes)
}

fn run_campaign(platform: PlatformConfig, runs: usize, lanes: usize, trace: &PackedTrace) -> CampaignResult {
    campaign(platform, runs, lanes)
        .run(trace)
        .expect("valid platform")
}

fn campaign_throughput(c: &mut Criterion) {
    let trace = EembcBenchmark::Cacheb.packed_trace(&MemoryLayout::default());
    let events = trace.len() as u64;
    let runs = runs();
    let widths = lane_widths();
    let lanes = widths[0];

    let mut group = c.benchmark_group("campaign_throughput");
    group.throughput(Throughput::Elements(events * runs as u64));
    group.sample_size(10);

    for kind in PlacementKind::ALL {
        let platform = bench_platform(kind);

        // Equivalence gate: the batched engine must reproduce the
        // sequential engine bit-for-bit before its throughput means
        // anything.  `assert_eq!` on the full CampaignResult covers cycles
        // and per-run HierarchyStats.  Under `cargo test` (no `--bench`)
        // the gate still runs, on a reduced campaign, so plain test runs
        // keep smoke-checking the equivalence cheaply.
        let gate_runs = if bench_mode() { runs } else { runs.min(40) };
        let sequential_result = run_campaign(platform, gate_runs, 1, &trace);
        for &width in &widths {
            let batched_result = run_campaign(platform, gate_runs, width, &trace);
            assert_eq!(
                batched_result, sequential_result,
                "batched ({width} lanes) and sequential campaigns diverged for {kind}"
            );
        }

        if bench_mode() {
            // One manually timed pass per shape, reported as events/sec
            // (the criterion stub reports wall-clock medians only).
            let mut shapes: Vec<(&str, usize)> =
                widths.iter().map(|&w| ("batched", w)).collect();
            shapes.push(("sequential", 1));
            for (label, shape_lanes) in shapes {
                let start = Instant::now();
                black_box(run_campaign(platform, runs, shape_lanes, &trace));
                let elapsed = start.elapsed().as_secs_f64();
                let events_per_sec = (events * runs as u64) as f64 / elapsed;
                println!(
                    "throughput: {}/{}/{} {:.3e} events/sec ({} runs x {} events)",
                    kind, label, shape_lanes, events_per_sec, runs, events
                );
            }
        }

        group.bench_with_input(
            BenchmarkId::new(format!("{kind}"), "batched"),
            &trace,
            |b, trace| b.iter(|| black_box(run_campaign(platform, runs, lanes, trace))),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}"), "sequential"),
            &trace,
            |b, trace| b.iter(|| black_box(run_campaign(platform, runs, 1, trace))),
        );
    }
    group.finish();
}

criterion_group!(benches, campaign_throughput);
criterion_main!(benches);
