//! Packed versus boxed trace replay: the representation benchmark behind
//! the streaming pipeline.  Replays the same kernel through [`InOrderCore`]
//! from the boxed `Vec<MemEvent>` [`Trace`] (16 bytes/event) and from the
//! 8-byte-per-event [`PackedTrace`], plus the encode cost of producing
//! each representation from the workload generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use randmod_bench::{bench_kernel, bench_packed_trace, bench_platform, bench_trace};
use randmod_core::PlacementKind;
use randmod_sim::{InOrderCore, SinkFn};
use randmod_workloads::{MemoryLayout, Workload};
use std::hint::black_box;

fn replay(c: &mut Criterion) {
    let boxed = bench_trace();
    let packed = bench_packed_trace();
    assert_eq!(packed.to_trace(), boxed, "representations must agree");

    let mut group = c.benchmark_group("trace_replay/replay");
    group.throughput(Throughput::Elements(boxed.len() as u64));
    group.sample_size(20);

    let mut core =
        InOrderCore::new(&bench_platform(PlacementKind::RandomModulo)).expect("valid platform");
    let mut seed = 0u64;
    group.bench_with_input(BenchmarkId::from_parameter("boxed"), &boxed, |b, trace| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let (cycles, _) = core.execute_isolated(black_box(trace), seed);
            black_box(cycles)
        })
    });
    let mut seed = 0u64;
    group.bench_with_input(BenchmarkId::from_parameter("packed"), &packed, |b, trace| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let (cycles, _) = core.execute_isolated(black_box(trace), seed);
            black_box(cycles)
        })
    });
    group.finish();
}

fn encode(c: &mut Criterion) {
    let kernel = bench_kernel();
    let layout = MemoryLayout::default();
    // Count the emission through the constant-memory sink instead of
    // boxing a throwaway Trace.
    let mut events = 0u64;
    kernel.emit(&layout, &mut SinkFn(|_| events += 1));

    let mut group = c.benchmark_group("trace_replay/encode");
    group.throughput(Throughput::Elements(events));
    group.sample_size(20);
    group.bench_function("boxed", |b| {
        b.iter(|| black_box(kernel.trace(black_box(&layout))))
    });
    group.bench_function("packed", |b| {
        b.iter(|| black_box(kernel.packed_trace(black_box(&layout))))
    });
    group.finish();
}

criterion_group!(benches, replay, encode);
criterion_main!(benches);
