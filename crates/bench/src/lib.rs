//! # randmod-bench
//!
//! Criterion benchmark harness of the Random Modulo reproduction.
//!
//! Two kinds of benches live here:
//!
//! * **Microbenchmarks** (`placement`, `simulator`, `mbpta_pipeline`):
//!   throughput of the placement functions, the cache-hierarchy simulator
//!   and the statistical pipeline — useful when optimising the library
//!   itself.
//! * **Table/figure benches** (`tables_and_figures`): each benchmark runs a
//!   reduced-size version of one experiment of the paper (Table 1, Table 2,
//!   Figure 1, Figure 4(a), Figure 4(b), Figure 5, Section 4.4) through the
//!   exact code path the corresponding `randmod-experiments` binary uses,
//!   so `cargo bench` both times them and checks that they keep producing
//!   results with the expected shape.
//!
//! This crate intentionally has no library API: everything lives in the
//! `benches/` targets.  The helpers below are shared by those targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use randmod_core::PlacementKind;
use randmod_sim::{PackedTrace, PlatformConfig, Trace};
use randmod_workloads::{MemoryLayout, SyntheticKernel, Workload};

/// Number of runs per campaign used by the table/figure benches (kept small
/// so `cargo bench` completes quickly; the experiment binaries use more).
pub const BENCH_RUNS: usize = 60;

// Keep the bench campaigns above the MBPTA pipeline floor.
const _: () = assert!(BENCH_RUNS >= randmod_mbpta::iid::ET_MIN_OBSERVATIONS);

/// A reduced version of the paper's 20KB synthetic kernel used by several
/// benches (fewer traversals to keep iteration times reasonable).
pub fn bench_kernel() -> SyntheticKernel {
    SyntheticKernel::with_traversals(20 * 1024, 5)
}

/// The boxed trace of [`bench_kernel`] under the default memory layout.
pub fn bench_trace() -> Trace {
    bench_kernel().trace(&MemoryLayout::default())
}

/// The packed trace of [`bench_kernel`] under the default memory layout.
pub fn bench_packed_trace() -> PackedTrace {
    bench_kernel().packed_trace(&MemoryLayout::default())
}

/// The platform used by the benches: the given placement in the L1 caches,
/// hRP in the L2.
pub fn bench_platform(l1_placement: PlacementKind) -> PlatformConfig {
    PlatformConfig::leon3()
        .with_l1_placement(l1_placement)
        .with_l2_placement(PlacementKind::HashRandom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_helpers_produce_consistent_objects() {
        assert_eq!(bench_kernel().footprint_bytes(), 20 * 1024);
        assert!(!bench_trace().is_empty());
        assert_eq!(bench_packed_trace().to_trace(), bench_trace());
        assert_eq!(
            bench_platform(PlacementKind::RandomModulo).il1.placement,
            PlacementKind::RandomModulo
        );
    }
}
