//! Decomposes campaign wave cost by stream component (fetch/load/store).
//!
//! Replays cut-down `cacheb`-shaped kernels — hot-loop fetches only,
//! fetches + streaming loads, fetches + stores, and the full kernel —
//! through the wavefront campaign engine and reports ns/wave for each,
//! so regressions can be attributed to a wave shape instead of a whole
//! benchmark.  `MIXPROBE_LANES` overrides the lane width (default 8).
//!
//! Run with `cargo run --release -p randmod-bench --example mixprobe`.
use randmod_bench::bench_platform;
use randmod_core::PlacementKind;
use randmod_sim::Campaign;
use randmod_sim::trace::EventSink;
use randmod_workloads::{EembcBenchmark, KernelBuilder, MemoryLayout, Workload};
use std::time::Instant;

struct Part(&'static str, fn(&mut KernelBuilder<'_>, u64));

impl Workload for Part {
    fn name(&self) -> String {
        self.0.to_string()
    }
    fn emit(&self, layout: &MemoryLayout, sink: &mut dyn EventSink) {
        let mut b = KernelBuilder::new(*layout, 0xCB, sink);
        b.loop_with(900, 100, |b, i| (self.1)(b, i));
    }
}

fn main() {
    let lanes: usize = std::env::var("MIXPROBE_LANES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let parts: Vec<(Box<dyn Workload>, &str)> = vec![
        (Box::new(Part("fetch-only", |_, _| {})), "hot-loop fetches"),
        (
            Box::new(Part("loads", |b, i| {
                b.sequential_loads((i % 4) * 5 * 1024, 160, 32)
            })),
            "fetch + streaming loads",
        ),
        (
            Box::new(Part("stores", |b, i| {
                b.sequential_stores((i % 4) * 5 * 1024 + 256, 32, 32)
            })),
            "fetch + stores",
        ),
        (Box::new(EembcBenchmark::Cacheb), "full cacheb"),
    ];
    let layout = MemoryLayout::default();
    for kind in [PlacementKind::Modulo, PlacementKind::HashRandom] {
        for (w, label) in &parts {
            let trace = w.packed_trace(&layout);
            let runs = 64usize;
            let start = Instant::now();
            let r = Campaign::new(bench_platform(kind), runs)
                .with_campaign_seed(0xBEEF)
                .with_threads(1)
                .with_lanes(lanes)
                .run(&trace)
                .unwrap();
            std::hint::black_box(&r);
            let el = start.elapsed().as_secs_f64();
            let waves = trace.len() as f64 * runs as f64 / lanes as f64;
            println!(
                "{kind:>13} {label:<24} {:>8} events  {:6.1} ns/wave ({lanes} lanes)",
                trace.len(),
                el / waves * 1e9
            );
        }
    }
}
