//! Micro-benchmark of the wavefront probe against K scalar probes.
//!
//! Times `SetAssocCacheLanes::access_lean_lanes` against a loop over K
//! scalar `SetAssocCache::access_lean_line` calls on the same access
//! stream, per placement kind — the apples-to-apples core of the
//! `campaign_throughput` gap, without trace decode or hierarchy booking.
//!
//! Run with `cargo run --release -p randmod-bench --example probe_microbench`.

use randmod_core::cache::{AccessKind, SetAssocCache, SetAssocCacheLanes, WritePolicy};
use randmod_core::{CacheGeometry, LineAddr, PlacementKind, ReplacementKind};
use std::hint::black_box;
use std::time::Instant;

const LANES: usize = 8;
const STEPS: usize = 2_000_000;

/// A synthetic L1-like access stream: a small hot code/data footprint with
/// a cold streaming component, similar in hit ratio to the collapsed
/// campaign replay.
fn access_stream() -> Vec<(u64, AccessKind)> {
    let mut stream = Vec::with_capacity(STEPS);
    for i in 0..STEPS as u64 {
        let (line, kind) = match i % 4 {
            0 => (0x40 + (i % 24), AccessKind::InstructionFetch),
            1 => (0x8000 + (i % 4096), AccessKind::Load),
            2 => (0x40 + (i % 24), AccessKind::InstructionFetch),
            _ => {
                if i % 20 == 3 {
                    (0x10_000 + (i % 128), AccessKind::Store)
                } else {
                    (0x8000 + ((i * 7) % 4096), AccessKind::Load)
                }
            }
        };
        stream.push((line, kind));
    }
    stream
}

fn main() {
    let geometry = CacheGeometry::new(128, 4, 32).unwrap();
    let stream = access_stream();
    let seeds: Vec<u64> = (0..LANES as u64).map(|l| 0xBEEF ^ (l * 0x9E37)).collect();

    for kind in PlacementKind::ALL {
        // Wavefront bank.
        let mut bank = SetAssocCacheLanes::with_kinds(
            geometry,
            kind,
            ReplacementKind::Random,
            WritePolicy::WriteThrough,
            LANES,
        )
        .unwrap();
        bank.reseed_wave(&seeds);
        let mut flags = [Default::default(); LANES];
        let start = Instant::now();
        for &(line, access) in &stream {
            bank.access_lean_lanes(LineAddr::new(line), access, &mut flags);
            black_box(&flags);
        }
        let wave = start.elapsed().as_secs_f64();

        // K scalar caches.
        let mut scalars: Vec<SetAssocCache> = seeds
            .iter()
            .map(|&s| {
                let mut c = SetAssocCache::with_kinds(
                    geometry,
                    kind,
                    ReplacementKind::Random,
                    WritePolicy::WriteThrough,
                )
                .unwrap();
                c.reseed(s);
                c
            })
            .collect();
        let start = Instant::now();
        for &(line, access) in &stream {
            for cache in scalars.iter_mut() {
                black_box(cache.access_lean_line(LineAddr::new(line), access));
            }
        }
        let scalar = start.elapsed().as_secs_f64();

        let per_wave = wave / STEPS as f64 * 1e9;
        let per_scalar = scalar / STEPS as f64 * 1e9;
        println!(
            "{kind:>14}: wave {per_wave:7.1} ns/op  scalar-x{LANES} {per_scalar:7.1} ns/op  speedup {:.2}x",
            per_scalar / per_wave
        );
    }
}
