//! Incremental (online) MBPTA analysis for adaptive campaigns.
//!
//! The paper's measurement protocol does not run a fixed number of
//! experiments: runs are collected *until the EVT fit stabilises*, and the
//! quoted ~1,000-run campaigns are the outcome of that convergence loop,
//! not an input.  This module provides the streaming counterpart of the
//! batch statistics in [`crate::sample`] and [`crate::evt`]:
//!
//! * [`OnlineSample`] — count / mean / variance (Welford) and the extremes
//!   of a growing sample, mergeable across lanes or threads;
//! * [`BlockMaxima`] — incremental block-maxima maintenance, so the Gumbel
//!   refit at each checkpoint touches only the completed blocks instead of
//!   re-scanning the whole sample;
//! * [`ConvergenceCriterion`] / [`ConvergenceTracker`] — the stopping rule:
//!   refit the Gumbel on the growing block maxima at regular checkpoints
//!   and declare convergence once the pWCET estimate at the target
//!   exceedance probability stays put (within a relative tolerance) over a
//!   number of consecutive checkpoints.  Degenerate zero-variance samples
//!   converge at the first checkpoint instead of looping to the cap.
//!
//! The simulation crate's adaptive campaign engine drives a
//! [`ConvergenceTracker`] with one observation per run; see
//! `randmod_sim::Campaign::run_adaptive`.

use crate::evt::PwcetCurve;

/// Streaming summary statistics of an execution-time sample: count, mean,
/// variance (Welford's algorithm, numerically stable for long campaigns)
/// and the extremes, in constant space.
///
/// Two `OnlineSample`s accumulated over disjoint observation streams can
/// be [`merge`](Self::merge)d into the summary of the concatenated stream
/// (Chan et al.'s parallel variance update), which is what per-lane or
/// per-thread accumulation needs.
///
/// ```
/// use randmod_mbpta::OnlineSample;
///
/// let mut s = OnlineSample::new();
/// for c in [10u64, 20, 30, 40, 50] {
///     s.push(c);
/// }
/// assert_eq!(s.count(), 5);
/// assert_eq!(s.mean(), 30.0);
/// assert_eq!(s.max(), 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineSample {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
    min: u64,
    max: u64,
}

impl OnlineSample {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineSample {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Accumulates one observation (a cycle count).
    pub fn push(&mut self, cycles: u64) {
        self.count += 1;
        let value = cycles as f64;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(cycles);
        self.max = self.max.max(cycles);
    }

    /// Merges two accumulators built over disjoint streams into the
    /// summary of the concatenated stream.
    pub fn merge(&self, other: &Self) -> Self {
        if self.count == 0 {
            return *other;
        }
        if other.count == 0 {
            return *self;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        OnlineSample {
            count: self.count + other.count,
            mean: self.mean + delta * n2 / n,
            m2: self.m2 + other.m2 + delta * delta * n1 * n2 / n,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Number of observations accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation so far (0 for an empty accumulator).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation so far — the running high-water mark (0 for an
    /// empty accumulator).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether every observation so far is identical (also true for empty
    /// and single-observation accumulators).  Decided on the exact integer
    /// extremes, not the floating-point variance, so merged accumulators
    /// cannot mis-report a constant stream as noisy.
    pub fn is_degenerate(&self) -> bool {
        self.min() == self.max
    }
}

/// Incrementally maintained block maxima: observations are pushed one at a
/// time and the maximum of every completed block of `block_size`
/// observations is retained (the trailing partial block is excluded,
/// matching [`crate::evt::block_maxima`]).
///
/// ```
/// use randmod_mbpta::BlockMaxima;
///
/// let mut blocks = BlockMaxima::new(3);
/// for c in [1u64, 5, 3, 9, 2, 4, 8] {
///     blocks.push(c as f64);
/// }
/// // Two complete blocks; the trailing [8] is still open.
/// assert_eq!(blocks.completed(), &[5.0, 9.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMaxima {
    block_size: usize,
    completed: Vec<f64>,
    current_max: f64,
    current_len: usize,
}

impl BlockMaxima {
    /// Creates an accumulator with the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        BlockMaxima {
            block_size,
            completed: Vec::new(),
            current_max: f64::NEG_INFINITY,
            current_len: 0,
        }
    }

    /// The block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Accumulates one observation.
    pub fn push(&mut self, value: f64) {
        self.current_max = self.current_max.max(value);
        self.current_len += 1;
        if self.current_len == self.block_size {
            self.completed.push(self.current_max);
            self.current_max = f64::NEG_INFINITY;
            self.current_len = 0;
        }
    }

    /// The maxima of every completed block, in arrival order.
    pub fn completed(&self) -> &[f64] {
        &self.completed
    }

    /// Total number of observations pushed.
    pub fn observations(&self) -> usize {
        self.completed.len() * self.block_size + self.current_len
    }
}

/// The stopping rule of an adaptive MBPTA campaign.
///
/// At every checkpoint (every [`check_interval`](Self::check_interval)
/// runs once [`min_runs`](Self::min_runs) have been collected) the Gumbel
/// model is refitted on the block maxima accumulated so far and projected
/// to [`target_probability`](Self::target_probability).  The campaign has
/// converged once [`stable_checkpoints`](Self::stable_checkpoints)
/// consecutive checkpoints each move the estimate by at most
/// [`relative_tolerance`](Self::relative_tolerance) relative to the
/// previous checkpoint.  A degenerate (zero-variance) sample converges at
/// its first checkpoint: its pWCET is the observed value at every
/// probability, so waiting for more runs cannot change the answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceCriterion {
    /// Per-run exceedance probability the estimates are projected to
    /// (the paper quotes pWCET at 10⁻¹² and 10⁻¹⁵).
    pub target_probability: f64,
    /// Maximum relative movement between consecutive checkpoint estimates
    /// that still counts as "stable".
    pub relative_tolerance: f64,
    /// Number of consecutive stable checkpoints required to declare
    /// convergence.
    pub stable_checkpoints: usize,
    /// Number of runs between checkpoints.
    pub check_interval: usize,
    /// Runs collected before the first checkpoint (the statistical floor
    /// of the pipeline; the i.i.d. tests and the Gumbel fit need a
    /// non-trivial sample).
    pub min_runs: usize,
    /// Hard cap on the campaign size: the engine stops here even if the
    /// estimate never stabilises (and reports non-convergence).
    pub max_runs: usize,
    /// Block size of the incremental block-maxima extraction.
    pub block_size: usize,
}

impl Default for ConvergenceCriterion {
    fn default() -> Self {
        ConvergenceCriterion {
            target_probability: 1e-12,
            relative_tolerance: 0.01,
            stable_checkpoints: 3,
            check_interval: 50,
            min_runs: 100,
            max_runs: 2_000,
            block_size: 25,
        }
    }
}

impl ConvergenceCriterion {
    /// Overrides the target exceedance probability.
    pub fn with_target_probability(mut self, p: f64) -> Self {
        self.target_probability = p;
        self
    }

    /// Overrides the relative tolerance.
    pub fn with_relative_tolerance(mut self, tolerance: f64) -> Self {
        self.relative_tolerance = tolerance;
        self
    }

    /// Overrides the run cap.
    pub fn with_max_runs(mut self, max_runs: usize) -> Self {
        self.max_runs = max_runs;
        self
    }

    /// Overrides the pre-checkpoint floor.
    pub fn with_min_runs(mut self, min_runs: usize) -> Self {
        self.min_runs = min_runs;
        self
    }

    /// Overrides the checkpoint interval.
    pub fn with_check_interval(mut self, interval: usize) -> Self {
        self.check_interval = interval;
        self
    }

    /// Overrides the number of consecutive stable checkpoints required.
    pub fn with_stable_checkpoints(mut self, checkpoints: usize) -> Self {
        self.stable_checkpoints = checkpoints;
        self
    }

    /// Overrides the block size of the block-maxima extraction.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }
}

/// One refit of the convergence loop: how many runs backed it, what the
/// pWCET estimate was, and how far it moved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceCheckpoint {
    /// Number of runs collected when this checkpoint fired.
    pub runs: usize,
    /// pWCET estimate at the criterion's target probability.
    pub pwcet: f64,
    /// Relative movement against the previous checkpoint
    /// (`f64::INFINITY` for the first checkpoint, which has no
    /// predecessor to compare against).
    pub relative_delta: f64,
}

/// Drives a [`ConvergenceCriterion`] over a stream of per-run execution
/// times.
///
/// ```
/// use randmod_mbpta::{ConvergenceCriterion, ConvergenceTracker};
///
/// // A constant-time workload converges at the first checkpoint.
/// let criterion = ConvergenceCriterion::default().with_min_runs(30);
/// let mut tracker = ConvergenceTracker::new(criterion);
/// for _ in 0..criterion.max_runs {
///     if tracker.is_converged() {
///         break;
///     }
///     tracker.push(42_000);
/// }
/// assert!(tracker.is_converged());
/// assert_eq!(tracker.runs(), 30);
/// assert_eq!(tracker.current_estimate(), 42_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceTracker {
    criterion: ConvergenceCriterion,
    sample: OnlineSample,
    maxima: BlockMaxima,
    since_last_check: usize,
    stable: usize,
    trajectory: Vec<ConvergenceCheckpoint>,
    converged: bool,
}

impl ConvergenceTracker {
    /// Creates a tracker for the given criterion.
    ///
    /// # Panics
    ///
    /// Panics if the criterion is malformed: target probability outside
    /// `(0, 1)`, non-positive or non-finite tolerance, or a zero block
    /// size, checkpoint interval or stable-checkpoint count.
    pub fn new(criterion: ConvergenceCriterion) -> Self {
        assert!(
            criterion.target_probability > 0.0 && criterion.target_probability < 1.0,
            "target exceedance probability must be in (0, 1)"
        );
        assert!(
            criterion.relative_tolerance > 0.0 && criterion.relative_tolerance.is_finite(),
            "relative tolerance must be positive and finite"
        );
        assert!(criterion.stable_checkpoints > 0, "stable checkpoint count must be non-zero");
        assert!(criterion.check_interval > 0, "checkpoint interval must be non-zero");
        assert!(criterion.block_size > 0, "block size must be non-zero");
        ConvergenceTracker {
            criterion,
            sample: OnlineSample::new(),
            maxima: BlockMaxima::new(criterion.block_size),
            since_last_check: 0,
            stable: 0,
            trajectory: Vec::new(),
            converged: false,
        }
    }

    /// The criterion being tracked.
    pub fn criterion(&self) -> &ConvergenceCriterion {
        &self.criterion
    }

    /// Accumulates one run's execution time; fires a checkpoint when due.
    /// Observations pushed after convergence still update the summary
    /// statistics but no longer move the verdict.
    pub fn push(&mut self, cycles: u64) {
        self.sample.push(cycles);
        self.maxima.push(cycles as f64);
        if self.converged {
            return;
        }
        self.since_last_check += 1;
        // The first checkpoint fires as soon as the floor is reached; the
        // following ones every `check_interval` runs.
        let due = if self.trajectory.is_empty() {
            self.runs() >= self.criterion.min_runs.max(1)
        } else {
            self.since_last_check >= self.criterion.check_interval
        };
        if due {
            self.checkpoint();
        }
    }

    /// Forces a final checkpoint at the current run count (unless the last
    /// checkpoint is already current).  The adaptive engine calls this
    /// when it stops at the run cap, so the trajectory always ends with an
    /// estimate over the full collected sample.  The convergence verdict
    /// is *not* updated: the trailing checkpoint can cover an arbitrarily
    /// short interval (whatever remained before the cap), and a near-zero
    /// delta over a handful of runs must not retroactively turn a
    /// cap-terminated campaign into a "converged" one.
    pub fn finalize(&mut self) {
        let current = self.runs();
        if current == 0 || self.trajectory.last().is_some_and(|c| c.runs == current) {
            return;
        }
        self.checkpoint_with_verdict(false);
    }

    /// Whether the stopping rule has been met.
    pub fn is_converged(&self) -> bool {
        self.converged
    }

    /// Number of observations pushed so far.
    pub fn runs(&self) -> usize {
        self.sample.count() as usize
    }

    /// The checkpoint history, oldest first.
    pub fn trajectory(&self) -> &[ConvergenceCheckpoint] {
        &self.trajectory
    }

    /// The streaming summary statistics of the observations so far.
    pub fn sample(&self) -> &OnlineSample {
        &self.sample
    }

    /// The current pWCET estimate at the criterion's target probability:
    /// a Gumbel refit over the completed block maxima, or the observed
    /// maximum when the sample (or its maxima) is degenerate.
    pub fn current_estimate(&self) -> f64 {
        if self.sample.is_degenerate() {
            // A constant sample's pWCET is the observed value, exactly.
            return self.sample.max() as f64;
        }
        self.current_curve().pwcet(self.criterion.target_probability)
    }

    /// The pWCET curve behind [`Self::current_estimate`].
    pub fn current_curve(&self) -> PwcetCurve {
        let observed_max = self.sample.max() as f64;
        if self.sample.is_degenerate() {
            return PwcetCurve::from_block_maxima(&[], 1, observed_max);
        }
        PwcetCurve::from_block_maxima(
            self.maxima.completed(),
            self.criterion.block_size,
            observed_max,
        )
    }

    /// Refits, records a checkpoint and updates the convergence verdict.
    fn checkpoint(&mut self) {
        self.checkpoint_with_verdict(true);
    }

    /// Refits and records a checkpoint; updates the stability counter and
    /// the convergence verdict only when `update_verdict` is set (regular
    /// cadenced checkpoints — a forced trailing checkpoint keeps the
    /// verdict untouched).
    fn checkpoint_with_verdict(&mut self, update_verdict: bool) {
        self.since_last_check = 0;
        let pwcet = self.current_estimate();
        let relative_delta = match self.trajectory.last() {
            None => f64::INFINITY,
            Some(prev) if prev.pwcet == 0.0 && pwcet == 0.0 => 0.0,
            Some(prev) if prev.pwcet == 0.0 => f64::INFINITY,
            Some(prev) => ((pwcet - prev.pwcet) / prev.pwcet).abs(),
        };
        self.trajectory.push(ConvergenceCheckpoint {
            runs: self.runs(),
            pwcet,
            relative_delta,
        });
        if !update_verdict {
            return;
        }
        self.stable = if relative_delta <= self.criterion.relative_tolerance {
            self.stable + 1
        } else {
            0
        };
        // Zero-variance samples converge immediately: every refit would
        // return the same observed value, so looping to the cap is waste.
        if self.sample.is_degenerate() || self.stable >= self.criterion.stable_checkpoints {
            self.converged = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evt::block_maxima;
    use crate::sample::ExecutionSample;

    fn noisy_cycles(seed: u64, n: usize, base: u64, spread: u64) -> Vec<u64> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                    / (1u64 << 53) as f64;
                base + (spread as f64 * 0.2 * -(1.0 - u).ln()) as u64
            })
            .collect()
    }

    #[test]
    fn online_sample_matches_batch_statistics() {
        let cycles = noisy_cycles(5, 500, 100_000, 10_000);
        let batch = ExecutionSample::from_cycles(&cycles);
        let mut online = OnlineSample::new();
        for &c in &cycles {
            online.push(c);
        }
        assert_eq!(online.count(), 500);
        assert_eq!(online.min(), batch.min());
        assert_eq!(online.max(), batch.max());
        assert!((online.mean() - batch.mean()).abs() / batch.mean() < 1e-12);
        assert!((online.std_dev() - batch.std_dev()).abs() / batch.std_dev() < 1e-9);
    }

    #[test]
    fn merged_accumulators_match_the_concatenated_stream() {
        let cycles = noisy_cycles(9, 301, 50_000, 5_000);
        for split in [0usize, 1, 150, 300, 301] {
            let mut a = OnlineSample::new();
            let mut b = OnlineSample::new();
            for &c in &cycles[..split] {
                a.push(c);
            }
            for &c in &cycles[split..] {
                b.push(c);
            }
            let merged = a.merge(&b);
            let mut whole = OnlineSample::new();
            for &c in &cycles {
                whole.push(c);
            }
            assert_eq!(merged.count(), whole.count());
            assert_eq!(merged.min(), whole.min());
            assert_eq!(merged.max(), whole.max());
            assert!((merged.mean() - whole.mean()).abs() / whole.mean() < 1e-12);
            assert!(
                (merged.variance() - whole.variance()).abs() / whole.variance() < 1e-9,
                "split at {split}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_accumulators_are_well_behaved() {
        let empty = OnlineSample::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.min(), 0);
        assert_eq!(empty.max(), 0);
        assert!(empty.is_degenerate());
        let mut one = OnlineSample::new();
        one.push(7);
        assert_eq!(one.variance(), 0.0);
        assert!(one.is_degenerate());
        assert_eq!(one.merge(&empty), one);
        assert_eq!(empty.merge(&one), one);
    }

    #[test]
    fn constant_stream_is_degenerate_noisy_stream_is_not() {
        let mut constant = OnlineSample::new();
        let mut noisy = OnlineSample::new();
        for i in 0..100u64 {
            constant.push(500);
            noisy.push(500 + i % 3);
        }
        assert!(constant.is_degenerate());
        assert_eq!(constant.variance(), 0.0);
        assert!(!noisy.is_degenerate());
    }

    #[test]
    fn incremental_block_maxima_match_the_batch_extraction() {
        let cycles = noisy_cycles(13, 333, 70_000, 9_000);
        let sample = ExecutionSample::from_cycles(&cycles);
        for block_size in [1usize, 7, 25, 100] {
            let mut incremental = BlockMaxima::new(block_size);
            for &c in &cycles {
                incremental.push(c as f64);
            }
            assert_eq!(
                incremental.completed(),
                block_maxima(&sample, block_size).as_slice(),
                "block size {block_size}"
            );
            assert_eq!(incremental.observations(), cycles.len());
        }
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        BlockMaxima::new(0);
    }

    #[test]
    fn degenerate_stream_converges_at_the_first_checkpoint() {
        let criterion = ConvergenceCriterion::default().with_min_runs(40);
        let mut tracker = ConvergenceTracker::new(criterion);
        for _ in 0..criterion.max_runs {
            if tracker.is_converged() {
                break;
            }
            tracker.push(123_456);
        }
        assert!(tracker.is_converged());
        assert_eq!(tracker.runs(), 40);
        assert_eq!(tracker.trajectory().len(), 1);
        assert_eq!(tracker.current_estimate(), 123_456.0);
        assert!(tracker.trajectory()[0].relative_delta.is_infinite());
    }

    #[test]
    fn stationary_noise_converges_before_the_cap() {
        let criterion = ConvergenceCriterion::default()
            .with_relative_tolerance(0.05)
            .with_max_runs(5_000);
        let mut tracker = ConvergenceTracker::new(criterion);
        for c in noisy_cycles(21, criterion.max_runs, 200_000, 4_000) {
            if tracker.is_converged() {
                break;
            }
            tracker.push(c);
        }
        assert!(tracker.is_converged(), "trajectory: {:?}", tracker.trajectory());
        assert!(tracker.runs() < criterion.max_runs);
        // The estimate is a plausible pWCET: above the observed maximum.
        assert!(tracker.current_estimate() >= tracker.sample().max() as f64);
    }

    #[test]
    fn impossible_tolerance_never_converges() {
        // A tolerance below f64 resolution cannot be met by a noisy
        // stream, so the tracker must still be unconverged at the cap.
        let criterion = ConvergenceCriterion::default()
            .with_relative_tolerance(1e-300)
            .with_max_runs(400);
        let mut tracker = ConvergenceTracker::new(criterion);
        for c in noisy_cycles(3, criterion.max_runs, 900_000, 50_000) {
            tracker.push(c);
        }
        assert!(!tracker.is_converged());
        assert!(tracker.trajectory().len() > 2);
    }

    #[test]
    fn checkpoints_fire_at_the_configured_cadence() {
        let criterion = ConvergenceCriterion::default()
            .with_min_runs(60)
            .with_check_interval(30)
            .with_relative_tolerance(1e-300);
        let mut tracker = ConvergenceTracker::new(criterion);
        for c in noisy_cycles(7, 180, 400_000, 30_000) {
            tracker.push(c);
        }
        let runs: Vec<usize> = tracker.trajectory().iter().map(|c| c.runs).collect();
        assert_eq!(runs, vec![60, 90, 120, 150, 180]);
        // Deltas after the first are finite and recorded.
        for checkpoint in &tracker.trajectory()[1..] {
            assert!(checkpoint.relative_delta.is_finite());
        }
    }

    #[test]
    fn finalize_records_a_trailing_checkpoint_once() {
        let criterion = ConvergenceCriterion::default().with_min_runs(50);
        let mut tracker = ConvergenceTracker::new(criterion);
        for c in noisy_cycles(11, 75, 100_000, 8_000) {
            tracker.push(c);
        }
        assert_eq!(tracker.trajectory().len(), 1); // at 50 runs
        tracker.finalize();
        assert_eq!(tracker.trajectory().len(), 2);
        assert_eq!(tracker.trajectory().last().unwrap().runs, 75);
        tracker.finalize(); // idempotent
        assert_eq!(tracker.trajectory().len(), 2);
        let mut empty = ConvergenceTracker::new(criterion);
        empty.finalize(); // no observations, nothing to record
        assert!(empty.trajectory().is_empty());
    }

    #[test]
    fn finalize_never_upgrades_the_verdict_to_converged() {
        // Every delta is within this tolerance, but only two cadenced
        // checkpoints fit before the engine would stop at 210 runs:
        // stable = 2 of the required 3.  The forced trailing checkpoint
        // over the last 10 runs must not count as the third.
        let criterion = ConvergenceCriterion::default()
            .with_min_runs(100)
            .with_check_interval(50)
            .with_stable_checkpoints(3)
            .with_relative_tolerance(1e9);
        let mut tracker = ConvergenceTracker::new(criterion);
        for c in noisy_cycles(17, 210, 300_000, 20_000) {
            tracker.push(c);
        }
        assert!(!tracker.is_converged());
        tracker.finalize();
        assert!(
            !tracker.is_converged(),
            "a short trailing checkpoint must not satisfy the stopping rule"
        );
        // The trailing estimate is still recorded.
        assert_eq!(tracker.trajectory().last().unwrap().runs, 210);
    }

    #[test]
    fn pushes_after_convergence_keep_statistics_but_not_checkpoints() {
        let criterion = ConvergenceCriterion::default().with_min_runs(30);
        let mut tracker = ConvergenceTracker::new(criterion);
        for _ in 0..30 {
            tracker.push(10);
        }
        assert!(tracker.is_converged());
        let checkpoints = tracker.trajectory().len();
        for _ in 0..100 {
            tracker.push(10);
        }
        assert_eq!(tracker.runs(), 130);
        assert_eq!(tracker.trajectory().len(), checkpoints);
    }

    #[test]
    fn all_zero_stream_converges_without_dividing_by_zero() {
        let criterion = ConvergenceCriterion::default().with_min_runs(25);
        let mut tracker = ConvergenceTracker::new(criterion);
        for _ in 0..25 {
            tracker.push(0);
        }
        assert!(tracker.is_converged());
        assert_eq!(tracker.current_estimate(), 0.0);
    }

    #[test]
    fn criterion_builders_apply() {
        let criterion = ConvergenceCriterion::default()
            .with_target_probability(1e-15)
            .with_relative_tolerance(0.02)
            .with_max_runs(777)
            .with_min_runs(33)
            .with_check_interval(11)
            .with_stable_checkpoints(5)
            .with_block_size(10);
        assert_eq!(criterion.target_probability, 1e-15);
        assert_eq!(criterion.relative_tolerance, 0.02);
        assert_eq!(criterion.max_runs, 777);
        assert_eq!(criterion.min_runs, 33);
        assert_eq!(criterion.check_interval, 11);
        assert_eq!(criterion.stable_checkpoints, 5);
        assert_eq!(criterion.block_size, 10);
        assert_eq!(ConvergenceTracker::new(criterion).criterion(), &criterion);
    }

    #[test]
    #[should_panic(expected = "target exceedance probability")]
    fn malformed_target_probability_panics() {
        ConvergenceTracker::new(ConvergenceCriterion::default().with_target_probability(0.0));
    }

    #[test]
    #[should_panic(expected = "relative tolerance")]
    fn malformed_tolerance_panics() {
        ConvergenceTracker::new(ConvergenceCriterion::default().with_relative_tolerance(0.0));
    }
}
