//! The industrial high-water-mark baseline.
//!
//! The common measurement-based practice in safety-critical industry (the
//! comparison point of Section 4.4 of the paper) is to record the largest
//! execution time observed across stress tests — the *high-water mark* —
//! and add an engineering margin, usually 20%, to obtain the WCET bound.
//! The margin has no scientific basis, which is precisely the weakness
//! MBPTA addresses.

use crate::sample::ExecutionSample;
use std::fmt;

/// The default engineering margin applied on top of the high-water mark
/// (20%, the value quoted in the paper).
pub const DEFAULT_ENGINEERING_MARGIN: f64 = 0.20;

/// A high-water-mark record.
///
/// ```
/// use randmod_mbpta::{ExecutionSample, HighWaterMark};
///
/// let sample = ExecutionSample::from_cycles(&[900, 1000, 950]);
/// let hwm = HighWaterMark::from_sample(&sample);
/// assert_eq!(hwm.value(), 1000);
/// assert_eq!(hwm.with_default_margin(), 1200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HighWaterMark {
    value: u64,
    observations: usize,
}

impl HighWaterMark {
    /// Records the high-water mark of a sample.
    pub fn from_sample(sample: &ExecutionSample) -> Self {
        HighWaterMark {
            value: sample.max(),
            observations: sample.len(),
        }
    }

    /// Creates a high-water mark from a raw value.
    pub fn new(value: u64, observations: usize) -> Self {
        HighWaterMark {
            value,
            observations,
        }
    }

    /// The largest observed execution time.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of observations behind this high-water mark.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// The WCET bound obtained by adding an engineering margin
    /// (e.g. `0.20` for +20%).
    ///
    /// A WCET bound must never shrink, so every lossy step rounds up: the
    /// `u64 -> f64` conversion of the high-water mark (exact only below
    /// 2⁵³ cycles) is bumped to the next representable value when it
    /// rounds down, and the margin is charged in whole cycles, rounded up.
    /// The result is therefore always at least the observed high-water
    /// mark, for every cycle count.
    ///
    /// # Panics
    ///
    /// Panics if the margin is negative or not finite.
    pub fn with_margin(&self, margin: f64) -> f64 {
        assert!(
            margin >= 0.0 && margin.is_finite(),
            "the engineering margin cannot be negative"
        );
        let nearest = self.value as f64;
        // `as` rounds to nearest: detect a round-down (possible from 2^53
        // cycles up) and take the next representable value instead.
        let base = if (nearest as u64) < self.value {
            f64::from_bits(nearest.to_bits() + 1)
        } else {
            nearest
        };
        base + (base * margin).ceil()
    }

    /// The WCET bound with the customary 20% margin.
    pub fn with_default_margin(&self) -> f64 {
        self.with_margin(DEFAULT_ENGINEERING_MARGIN)
    }

    /// The ratio of a pWCET estimate to this high-water mark (the metric of
    /// Figure 4(b): RM pWCET estimates stay within a few percent of the
    /// deterministic hwm).
    ///
    /// # Panics
    ///
    /// Panics if the high-water mark is zero.
    pub fn ratio_of(&self, pwcet: f64) -> f64 {
        assert!(self.value > 0, "cannot normalise against a zero high-water mark");
        pwcet / self.value as f64
    }
}

impl fmt::Display for HighWaterMark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hwm {} cycles over {} observations (+20% margin: {:.0})",
            self.value,
            self.observations,
            self.with_default_margin()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_sample_maximum() {
        let sample = ExecutionSample::from_cycles(&[5, 9, 7]);
        let hwm = HighWaterMark::from_sample(&sample);
        assert_eq!(hwm.value(), 9);
        assert_eq!(hwm.observations(), 3);
    }

    #[test]
    fn margin_arithmetic() {
        let hwm = HighWaterMark::new(1000, 10);
        assert_eq!(hwm.with_margin(0.0), 1000.0);
        assert_eq!(hwm.with_margin(0.5), 1500.0);
        assert_eq!(hwm.with_default_margin(), 1200.0);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_margin_panics() {
        HighWaterMark::new(1000, 1).with_margin(-0.1);
    }

    #[test]
    fn margin_rounds_up_to_whole_cycles() {
        // 999 * 0.1 = 99.9 cycles of margin: the bound charges 100.
        assert_eq!(HighWaterMark::new(999, 1).with_margin(0.1), 1099.0);
        assert_eq!(HighWaterMark::new(3, 1).with_margin(0.2), 4.0);
    }

    #[test]
    fn bound_never_shrinks_below_the_hwm_near_2_pow_53() {
        // (2^53 + 1) is the first u64 the f64 conversion rounds *down*;
        // the old `value as f64 * (1 + m)` returned a bound below the
        // observed high-water mark for margin 0.
        let value = (1u64 << 53) + 1;
        assert!(((value as f64) as u64) < value, "test premise: conversion rounds down");
        for margin in [0.0, 0.1, 0.2, 1.0] {
            let bound = HighWaterMark::new(value, 1).with_margin(margin);
            assert!(
                bound as u64 >= value,
                "bound {bound} shrank below hwm {value} at margin {margin}"
            );
        }
        // Exactly representable values stay exact.
        assert_eq!(HighWaterMark::new(1u64 << 53, 1).with_margin(0.0), (1u64 << 53) as f64);
    }

    #[test]
    fn ratio_of_pwcet() {
        let hwm = HighWaterMark::new(1000, 1);
        assert!((hwm.ratio_of(1070.0) - 1.07).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero high-water mark")]
    fn ratio_against_zero_panics() {
        HighWaterMark::new(0, 0).ratio_of(10.0);
    }

    #[test]
    fn display_mentions_margin() {
        let text = HighWaterMark::new(1000, 5).to_string();
        assert!(text.contains("1200"));
    }
}
