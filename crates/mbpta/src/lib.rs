//! # randmod-mbpta
//!
//! Measurement-Based Probabilistic Timing Analysis (MBPTA) tooling.
//!
//! MBPTA takes a few hundred to a few thousand execution-time observations
//! collected on a time-randomised platform, checks that they can be treated
//! as independent and identically distributed (i.i.d.), fits an extreme
//! value distribution to their tail, and reads off the probabilistic WCET
//! (pWCET): the execution time whose per-run exceedance probability is below
//! a target such as 10⁻¹⁵.  This crate implements the statistical machinery
//! the paper relies on:
//!
//! * [`sample`] — execution-time samples and summary statistics.
//! * [`iid`] — the Wald–Wolfowitz runs test (independence), the two-sample
//!   Kolmogorov–Smirnov test (identical distribution) and an
//!   exponential-tail (ET) test for Gumbel convergence.
//! * [`evt`] — the Gumbel distribution, block-maxima extraction, fitting and
//!   the [`evt::PwcetCurve`] (a complementary CDF in log scale, Figure 1 of
//!   the paper).
//! * [`analysis`] — the end-to-end MBPTA procedure producing an
//!   [`analysis::MbptaReport`].
//! * [`online`] — incremental analysis for adaptive campaigns: streaming
//!   moments ([`online::OnlineSample`]), incremental block maxima and the
//!   convergence stopping rule ([`online::ConvergenceTracker`]) that
//!   decides when an adaptive campaign has collected enough runs.
//! * [`hwm`] — the industrial high-water-mark + engineering-margin baseline.
//! * [`histogram`] — execution-time histograms (the PDFs of Figure 5).
//!
//! ## Quick example
//!
//! ```
//! use randmod_mbpta::analysis::{MbptaAnalysis, MbptaConfig};
//! use randmod_mbpta::sample::ExecutionSample;
//!
//! // A toy sample: in a real campaign these are measured cycle counts.
//! let times: Vec<u64> = (0..400).map(|i| 100_000 + (i * 7919) % 1_000).collect();
//! let sample = ExecutionSample::from_cycles(&times);
//! let report = MbptaAnalysis::new(MbptaConfig::default()).analyze(&sample);
//! assert!(report.pwcet_at(1e-15) >= sample.max() as f64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod evt;
pub mod histogram;
pub mod hwm;
pub mod iid;
pub mod online;
pub mod sample;

pub use analysis::{MbptaAnalysis, MbptaConfig, MbptaReport};
pub use evt::{Gumbel, PwcetCurve};
pub use histogram::Histogram;
pub use hwm::HighWaterMark;
pub use iid::{EtTest, KsTest, WwTest};
pub use online::{
    BlockMaxima, ConvergenceCheckpoint, ConvergenceCriterion, ConvergenceTracker, OnlineSample,
};
pub use sample::ExecutionSample;
