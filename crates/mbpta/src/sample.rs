//! Execution-time samples.

use std::fmt;

/// A sample of execution-time observations (cycles), the raw input of
/// MBPTA.
///
/// ```
/// use randmod_mbpta::ExecutionSample;
///
/// let sample = ExecutionSample::from_cycles(&[10, 20, 30, 40]);
/// assert_eq!(sample.len(), 4);
/// assert_eq!(sample.max(), 40);
/// assert_eq!(sample.mean(), 25.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionSample {
    values: Vec<f64>,
}

impl ExecutionSample {
    /// Creates a sample from raw cycle counts.
    pub fn from_cycles(cycles: &[u64]) -> Self {
        Self::from_cycles_iter(cycles.iter().copied())
    }

    /// Creates a sample by draining an iterator of cycle counts, without
    /// an intermediate `Vec<u64>` (feed it `CampaignResult::cycles_iter`).
    pub fn from_cycles_iter<I: IntoIterator<Item = u64>>(cycles: I) -> Self {
        cycles.into_iter().collect()
    }

    /// Splits a run-major interleaved cycle stream into one sample per
    /// task — the extraction step for contended (multi-task) campaigns,
    /// whose engines report `runs × tasks` observations flattened as
    /// `run0·task0, run0·task1, …, run1·task0, …`.  Task 0 (the victim)
    /// comes first; observation order within each task is campaign order,
    /// so every per-task sample feeds the i.i.d. tests and EVT fit
    /// unchanged.
    ///
    /// ```
    /// use randmod_mbpta::ExecutionSample;
    ///
    /// let per_task = ExecutionSample::split_interleaved([10, 99, 11, 98], 2);
    /// assert_eq!(per_task[0], ExecutionSample::from_cycles(&[10, 11]));
    /// assert_eq!(per_task[1], ExecutionSample::from_cycles(&[99, 98]));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is zero or the stream length is not a multiple of
    /// `tasks` (a truncated run).
    pub fn split_interleaved<I: IntoIterator<Item = u64>>(cycles: I, tasks: usize) -> Vec<Self> {
        assert!(tasks > 0, "a contended sample needs at least one task");
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); tasks];
        let mut next = 0usize;
        for value in cycles {
            samples[next].push(value as f64);
            next = (next + 1) % tasks;
        }
        assert_eq!(
            next, 0,
            "interleaved stream length is not a multiple of the task count"
        );
        samples.into_iter().map(|values| ExecutionSample { values }).collect()
    }

    /// Creates a sample from floating-point observations.
    ///
    /// # Panics
    ///
    /// Panics if any observation is not finite.
    pub fn from_values(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "execution times must be finite"
        );
        ExecutionSample { values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The observations in collection order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The observations sorted ascending.
    pub fn sorted(&self) -> Vec<f64> {
        let mut v = self.values.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
        v
    }

    /// Arithmetic mean (0 for an empty sample).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Sample standard deviation (unbiased, 0 for fewer than two values).
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (self.values.len() - 1) as f64;
        var.sqrt()
    }

    /// Smallest observation (0 for an empty sample).
    pub fn min(&self) -> u64 {
        self.values.iter().cloned().fold(f64::INFINITY, f64::min) as u64
    }

    /// Largest observation — the *high-water mark* (0 for an empty sample).
    pub fn max(&self) -> u64 {
        if self.values.is_empty() {
            0
        } else {
            self.values.iter().cloned().fold(f64::NEG_INFINITY, f64::max) as u64
        }
    }

    /// The `p`-quantile (0 ≤ p ≤ 1) by linear interpolation of the sorted
    /// sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(!self.values.is_empty(), "quantile of an empty sample");
        assert!((0.0..=1.0).contains(&p), "quantile level must be in [0, 1]");
        let sorted = self.sorted();
        if sorted.len() == 1 {
            return sorted[0];
        }
        let pos = p * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }

    /// The median.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Splits the sample in two halves (first half, second half), the shape
    /// the two-sample Kolmogorov–Smirnov identical-distribution test
    /// consumes.
    pub fn halves(&self) -> (ExecutionSample, ExecutionSample) {
        let mid = self.values.len() / 2;
        (
            ExecutionSample {
                values: self.values[..mid].to_vec(),
            },
            ExecutionSample {
                values: self.values[mid..].to_vec(),
            },
        )
    }
}

impl fmt::Display for ExecutionSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "empty sample");
        }
        write!(
            f,
            "{} observations: min {}, mean {:.0}, max {}",
            self.len(),
            self.min(),
            self.mean(),
            self.max()
        )
    }
}

impl FromIterator<u64> for ExecutionSample {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        ExecutionSample {
            values: iter.into_iter().map(|c| c as f64).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = ExecutionSample::from_cycles(&[10, 20, 30, 40, 50]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean(), 30.0);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 50);
        assert_eq!(s.median(), 30.0);
        assert!((s.std_dev() - 15.811388).abs() < 1e-5);
    }

    #[test]
    fn empty_sample_is_well_behaved() {
        let s = ExecutionSample::from_cycles(&[]);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.to_string(), "empty sample");
    }

    #[test]
    fn quantile_interpolates() {
        let s = ExecutionSample::from_cycles(&[0, 10, 20, 30, 40]);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 40.0);
        assert_eq!(s.quantile(0.5), 20.0);
        assert_eq!(s.quantile(0.125), 5.0);
    }

    #[test]
    fn quantile_of_single_value() {
        let s = ExecutionSample::from_cycles(&[7]);
        assert_eq!(s.quantile(0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_of_empty_panics() {
        ExecutionSample::from_cycles(&[]).quantile(0.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn quantile_out_of_range_panics() {
        ExecutionSample::from_cycles(&[1, 2]).quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_values_panic() {
        ExecutionSample::from_values(vec![1.0, f64::NAN]);
    }

    #[test]
    fn halves_split_in_order() {
        let s = ExecutionSample::from_cycles(&[1, 2, 3, 4, 5]);
        let (a, b) = s.halves();
        assert_eq!(a.values(), &[1.0, 2.0]);
        assert_eq!(b.values(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn sorted_does_not_mutate_order() {
        let s = ExecutionSample::from_cycles(&[3, 1, 2]);
        assert_eq!(s.sorted(), vec![1.0, 2.0, 3.0]);
        assert_eq!(s.values(), &[3.0, 1.0, 2.0]);
    }

    #[test]
    fn collect_from_iterator() {
        let s: ExecutionSample = (1u64..=4).collect();
        assert_eq!(s.len(), 4);
        assert_eq!(s.max(), 4);
        assert!(s.to_string().contains("4 observations"));
    }

    #[test]
    fn from_cycles_iter_matches_from_cycles() {
        let cycles = [10u64, 20, 30];
        assert_eq!(
            ExecutionSample::from_cycles_iter(cycles.iter().copied()),
            ExecutionSample::from_cycles(&cycles)
        );
    }

    #[test]
    fn split_interleaved_extracts_per_task_samples() {
        let per_task = ExecutionSample::split_interleaved([1, 10, 100, 2, 20, 200], 3);
        assert_eq!(per_task.len(), 3);
        assert_eq!(per_task[0], ExecutionSample::from_cycles(&[1, 2]));
        assert_eq!(per_task[1], ExecutionSample::from_cycles(&[10, 20]));
        assert_eq!(per_task[2], ExecutionSample::from_cycles(&[100, 200]));
        // One task degenerates to the identity.
        assert_eq!(
            ExecutionSample::split_interleaved([5, 6, 7], 1),
            vec![ExecutionSample::from_cycles(&[5, 6, 7])]
        );
        // An empty stream yields empty per-task samples.
        assert!(ExecutionSample::split_interleaved([], 2).iter().all(|s| s.is_empty()));
    }

    #[test]
    #[should_panic(expected = "multiple of the task count")]
    fn split_interleaved_rejects_truncated_runs() {
        ExecutionSample::split_interleaved([1, 2, 3], 2);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn split_interleaved_rejects_zero_tasks() {
        ExecutionSample::split_interleaved([1, 2], 0);
    }
}
