//! Execution-time histograms.
//!
//! Figure 5(a)(b) of the paper shows the probability density functions of
//! the execution times collected for the synthetic kernel under RM and hRP.
//! [`Histogram`] bins a sample into equal-width bins and exposes counts and
//! empirical densities for exactly that kind of plot.

use crate::sample::ExecutionSample;
use std::fmt;

/// One bin of a histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Lower edge (inclusive).
    pub lower: f64,
    /// Upper edge (exclusive, except for the last bin).
    pub upper: f64,
    /// Number of observations in the bin.
    pub count: u64,
    /// Empirical probability density over the bin.
    pub density: f64,
}

impl Bin {
    /// The centre of the bin.
    pub fn center(&self) -> f64 {
        (self.lower + self.upper) / 2.0
    }
}

/// An equal-width histogram of an execution-time sample.
///
/// ```
/// use randmod_mbpta::{ExecutionSample, Histogram};
///
/// let sample = ExecutionSample::from_cycles(&[10, 11, 12, 20, 21, 30]);
/// let histogram = Histogram::from_sample(&sample, 4);
/// assert_eq!(histogram.bins().len(), 4);
/// assert_eq!(histogram.total_count(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bins: Vec<Bin>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning the sample
    /// range.  A sample whose values are all identical produces a single
    /// bin of width 1 centred on that value.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `bins` is zero.
    pub fn from_sample(sample: &ExecutionSample, bins: usize) -> Self {
        assert!(!sample.is_empty(), "cannot build a histogram of an empty sample");
        assert!(bins > 0, "a histogram needs at least one bin");
        let min = sample.min() as f64;
        let max = sample.max() as f64;
        if max <= min {
            let count = sample.len() as u64;
            return Histogram {
                bins: vec![Bin {
                    lower: min - 0.5,
                    upper: min + 0.5,
                    count,
                    density: 1.0,
                }],
                total: count,
            };
        }
        let width = (max - min) / bins as f64;
        let mut counts = vec![0u64; bins];
        for &v in sample.values() {
            let mut idx = ((v - min) / width) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            counts[idx] += 1;
        }
        let total = sample.len() as u64;
        let bins = counts
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let lower = min + i as f64 * width;
                Bin {
                    lower,
                    upper: lower + width,
                    count,
                    density: count as f64 / (total as f64 * width),
                }
            })
            .collect();
        Histogram { bins, total }
    }

    /// The bins, in increasing order of execution time.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Total number of observations.
    pub fn total_count(&self) -> u64 {
        self.total
    }

    /// The bin with the largest count (the mode of the distribution).
    pub fn mode(&self) -> &Bin {
        self.bins
            .iter()
            .max_by_key(|b| b.count)
            .expect("histogram has at least one bin")
    }

    /// Fraction of observations strictly above `threshold` — used to
    /// quantify the long tail hRP exhibits in Figure 5(b).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        let above: u64 = self
            .bins
            .iter()
            .filter(|b| b.lower >= threshold)
            .map(|b| b.count)
            .sum();
        above as f64 / self.total as f64
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "histogram of {} observations:", self.total)?;
        let max_count = self.bins.iter().map(|b| b.count).max().unwrap_or(1).max(1);
        for bin in &self.bins {
            let bar = "#".repeat(((bin.count * 50) / max_count) as usize);
            writeln!(f, "  [{:>12.0}, {:>12.0})  {:>7}  {bar}", bin.lower, bin.upper, bin.count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_range_and_counts_sum() {
        let sample = ExecutionSample::from_cycles(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let h = Histogram::from_sample(&sample, 5);
        assert_eq!(h.bins().len(), 5);
        assert_eq!(h.total_count(), 10);
        let total: u64 = h.bins().iter().map(|b| b.count).sum();
        assert_eq!(total, 10);
        assert_eq!(h.bins()[0].lower, 0.0);
        assert_eq!(h.bins()[4].upper, 9.0);
    }

    #[test]
    fn densities_integrate_to_one() {
        let values: Vec<u64> = (0..1000).map(|i| (i * 37) % 500).collect();
        let h = Histogram::from_sample(&ExecutionSample::from_cycles(&values), 20);
        let integral: f64 = h
            .bins()
            .iter()
            .map(|b| b.density * (b.upper - b.lower))
            .sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn maximum_value_lands_in_last_bin() {
        let sample = ExecutionSample::from_cycles(&[0, 100]);
        let h = Histogram::from_sample(&sample, 4);
        assert_eq!(h.bins().last().unwrap().count, 1);
        assert_eq!(h.bins().first().unwrap().count, 1);
    }

    #[test]
    fn constant_sample_yields_single_bin() {
        let sample = ExecutionSample::from_cycles(&[42; 10]);
        let h = Histogram::from_sample(&sample, 8);
        assert_eq!(h.bins().len(), 1);
        assert_eq!(h.total_count(), 10);
        assert_eq!(h.mode().count, 10);
        assert!((h.bins()[0].center() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn mode_and_fraction_above() {
        let mut values = vec![100u64; 90];
        values.extend(vec![1000u64; 10]);
        let h = Histogram::from_sample(&ExecutionSample::from_cycles(&values), 9);
        assert_eq!(h.mode().count, 90);
        let frac = h.fraction_above(500.0);
        assert!((frac - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        Histogram::from_sample(&ExecutionSample::from_cycles(&[]), 3);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::from_sample(&ExecutionSample::from_cycles(&[1]), 0);
    }

    #[test]
    fn display_draws_bars() {
        let h = Histogram::from_sample(&ExecutionSample::from_cycles(&[1, 2, 2, 3]), 3);
        let text = h.to_string();
        assert!(text.contains("histogram of 4 observations"));
        assert!(text.contains('#'));
    }
}
