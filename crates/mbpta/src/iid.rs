//! Independence and identical-distribution tests.
//!
//! Before EVT can be applied, MBPTA checks that the execution-time
//! observations behave like an i.i.d. sample (Cucu-Grosjean et al.,
//! ECRTS 2012).  The paper applies, and this module implements:
//!
//! * the **Wald–Wolfowitz runs test** for independence — values below 1.96
//!   (the 5% two-sided critical value of the standard normal) pass;
//! * the **two-sample Kolmogorov–Smirnov test** for identical distribution
//!   — p-values at or above 0.05 pass;
//! * the **ET (exponential-tail) test** of Garrido & Diebolt for Gumbel
//!   convergence of the tail.

use crate::sample::ExecutionSample;
use std::fmt;

/// Significance level used throughout the paper (5%).
pub const SIGNIFICANCE: f64 = 0.05;

/// Two-sided 5% critical value of the standard normal distribution, the
/// pass threshold of the Wald–Wolfowitz statistic quoted in the paper.
pub const WW_CRITICAL_VALUE: f64 = 1.96;

/// Result of the Wald–Wolfowitz runs test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WwTest {
    /// Absolute value of the normal-approximation statistic.
    pub statistic: f64,
    /// Number of runs observed.
    pub runs: u64,
    /// Number of observations above the median.
    pub above: u64,
    /// Number of observations below the median.
    pub below: u64,
}

impl WwTest {
    /// Whether the independence hypothesis is accepted at the 5% level
    /// (statistic below 1.96).
    pub fn passed(&self) -> bool {
        self.statistic < WW_CRITICAL_VALUE
    }
}

impl fmt::Display for WwTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WW statistic {:.2} ({} runs) -> {}",
            self.statistic,
            self.runs,
            if self.passed() { "independent" } else { "dependent" }
        )
    }
}

/// Runs the Wald–Wolfowitz (runs) test for independence.
///
/// Observations are dichotomised around the sample median; ties (values
/// equal to the median) are discarded, as is standard.  The number of runs
/// of consecutive same-side observations is compared against its
/// expectation under independence using the normal approximation.
///
/// # Panics
///
/// Panics if fewer than 2 observations remain after removing ties.
pub fn wald_wolfowitz(sample: &ExecutionSample) -> WwTest {
    let median = sample.median();
    let signs: Vec<bool> = sample
        .values()
        .iter()
        .filter(|&&v| v != median)
        .map(|&v| v > median)
        .collect();
    assert!(
        signs.len() >= 2,
        "the runs test needs at least two observations distinct from the median"
    );
    let n_above = signs.iter().filter(|&&s| s).count() as f64;
    let n_below = signs.len() as f64 - n_above;
    let mut runs = 1u64;
    for pair in signs.windows(2) {
        if pair[0] != pair[1] {
            runs += 1;
        }
    }
    let n = n_above + n_below;
    let expected = 2.0 * n_above * n_below / n + 1.0;
    let variance = (2.0 * n_above * n_below * (2.0 * n_above * n_below - n)) / (n * n * (n - 1.0));
    let statistic = if variance <= 0.0 {
        0.0
    } else {
        ((runs as f64 - expected) / variance.sqrt()).abs()
    };
    WwTest {
        statistic,
        runs,
        above: n_above as u64,
        below: n_below as u64,
    }
}

/// Result of the two-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic (maximum distance between the two empirical CDFs).
    pub statistic: f64,
    /// Asymptotic p-value.
    pub p_value: f64,
}

impl KsTest {
    /// Whether the identical-distribution hypothesis is accepted at the 5%
    /// level (p-value at or above 0.05).
    pub fn passed(&self) -> bool {
        self.p_value >= SIGNIFICANCE
    }
}

impl fmt::Display for KsTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KS statistic {:.3}, p = {:.3} -> {}",
            self.statistic,
            self.p_value,
            if self.passed() {
                "identically distributed"
            } else {
                "distributions differ"
            }
        )
    }
}

/// Kolmogorov distribution survival function `Q(lambda)`, the asymptotic
/// p-value of the KS statistic.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Runs the two-sample Kolmogorov–Smirnov test.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn kolmogorov_smirnov(a: &ExecutionSample, b: &ExecutionSample) -> KsTest {
    assert!(!a.is_empty() && !b.is_empty(), "KS test needs non-empty samples");
    let xs = a.sorted();
    let ys = b.sorted();
    let (n, m) = (xs.len(), ys.len());
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d: f64 = 0.0;
    while i < n && j < m {
        let x = xs[i];
        let y = ys[j];
        let value = x.min(y);
        while i < n && xs[i] <= value {
            i += 1;
        }
        while j < m && ys[j] <= value {
            j += 1;
        }
        let f1 = i as f64 / n as f64;
        let f2 = j as f64 / m as f64;
        d = d.max((f1 - f2).abs());
    }
    let en = (n as f64 * m as f64) / (n as f64 + m as f64);
    let lambda = (en.sqrt() + 0.12 + 0.11 / en.sqrt()) * d;
    KsTest {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// Splits the sample into its two halves and tests them against each other —
/// the standard way the identical-distribution check is applied in MBPTA.
///
/// # Panics
///
/// Panics if the sample has fewer than 4 observations.
pub fn kolmogorov_smirnov_split(sample: &ExecutionSample) -> KsTest {
    assert!(sample.len() >= 4, "split KS test needs at least 4 observations");
    let (a, b) = sample.halves();
    kolmogorov_smirnov(&a, &b)
}

/// Result of the exponential-tail (ET) test for Gumbel convergence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtTest {
    /// One-sample KS distance between the empirical distribution of the
    /// threshold excesses and the fitted exponential.
    pub statistic: f64,
    /// Asymptotic p-value of that distance.
    pub p_value: f64,
    /// Number of tail observations used.
    pub tail_size: usize,
    /// The threshold above which excesses were taken.
    pub threshold: f64,
}

impl EtTest {
    /// Whether the exponential-tail (Gumbel domain of attraction)
    /// hypothesis is accepted at the 5% level.
    pub fn passed(&self) -> bool {
        self.p_value >= SIGNIFICANCE
    }
}

impl fmt::Display for EtTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ET statistic {:.3}, p = {:.3} over {} tail points -> {}",
            self.statistic,
            self.p_value,
            self.tail_size,
            if self.passed() { "Gumbel tail plausible" } else { "tail not exponential" }
        )
    }
}

/// Smallest sample the exponential-tail test accepts — and therefore the
/// floor on MBPTA campaign sizes (the other tests need less).  Consumers
/// that clamp user-provided run counts should clamp to this.
pub const ET_MIN_OBSERVATIONS: usize = 20;

/// Runs the exponential-tail test: the excesses over a high threshold
/// (by default the 1 - `tail_fraction` quantile) are compared against an
/// exponential distribution fitted by maximum likelihood, using a
/// one-sample Kolmogorov–Smirnov distance.
///
/// A distribution lies in the Gumbel (light-tailed) domain of attraction
/// exactly when its excesses over high thresholds become exponential, so
/// passing this test supports applying the Gumbel fit of [`crate::evt`].
///
/// # Panics
///
/// Panics if the sample has fewer than [`ET_MIN_OBSERVATIONS`]
/// observations or `tail_fraction` is not in `(0, 0.5]`.
pub fn exponential_tail(sample: &ExecutionSample, tail_fraction: f64) -> EtTest {
    assert!(
        sample.len() >= ET_MIN_OBSERVATIONS,
        "ET test needs at least {ET_MIN_OBSERVATIONS} observations"
    );
    assert!(
        tail_fraction > 0.0 && tail_fraction <= 0.5,
        "tail fraction must be in (0, 0.5]"
    );
    let threshold = sample.quantile(1.0 - tail_fraction);
    let excesses: Vec<f64> = sample
        .sorted()
        .into_iter()
        .filter(|&v| v > threshold)
        .map(|v| v - threshold)
        .collect();
    if excesses.is_empty() || excesses.iter().all(|&e| e == 0.0) {
        // A degenerate (constant) tail is trivially compatible with any
        // light-tailed model: report a pass with zero distance.
        return EtTest {
            statistic: 0.0,
            p_value: 1.0,
            tail_size: excesses.len(),
            threshold,
        };
    }
    let mean_excess = excesses.iter().sum::<f64>() / excesses.len() as f64;
    let rate = 1.0 / mean_excess;
    // One-sample KS distance against Exp(rate).
    let n = excesses.len();
    let mut d: f64 = 0.0;
    for (k, &e) in excesses.iter().enumerate() {
        let model = 1.0 - (-rate * e).exp();
        let emp_hi = (k + 1) as f64 / n as f64;
        let emp_lo = k as f64 / n as f64;
        d = d.max((model - emp_hi).abs()).max((model - emp_lo).abs());
    }
    let en = n as f64;
    let lambda = (en.sqrt() + 0.12 + 0.11 / en.sqrt()) * d;
    EtTest {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        tail_size: n,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random uniform stream for test data.
    fn uniform_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                // xorshift64*
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                (v >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn iid_sample(seed: u64, n: usize) -> ExecutionSample {
        ExecutionSample::from_values(
            uniform_stream(seed, n)
                .into_iter()
                .map(|u| 100_000.0 + 5_000.0 * u)
                .collect(),
        )
    }

    #[test]
    fn ww_accepts_an_iid_sample() {
        let test = wald_wolfowitz(&iid_sample(7, 1000));
        assert!(test.passed(), "statistic {}", test.statistic);
        assert!(test.above > 400 && test.below > 400);
    }

    #[test]
    fn ww_rejects_a_strongly_trending_sample() {
        // A monotonically increasing sequence has exactly 2 runs around the
        // median: maximal dependence.
        let values: Vec<u64> = (0..500).map(|i| 1000 + i).collect();
        let test = wald_wolfowitz(&ExecutionSample::from_cycles(&values));
        assert!(!test.passed());
        assert_eq!(test.runs, 2);
    }

    #[test]
    fn ww_rejects_a_perfectly_alternating_sample() {
        // Perfect alternation produces the maximum number of runs, which is
        // also inconsistent with independence.
        let values: Vec<u64> = (0..500).map(|i| if i % 2 == 0 { 10 } else { 20 }).collect();
        let test = wald_wolfowitz(&ExecutionSample::from_cycles(&values));
        assert!(!test.passed());
    }

    #[test]
    fn ww_display_mentions_verdict() {
        let text = wald_wolfowitz(&iid_sample(3, 500)).to_string();
        assert!(text.contains("WW statistic"));
    }

    #[test]
    #[should_panic(expected = "at least two observations")]
    fn ww_panics_on_constant_sample() {
        wald_wolfowitz(&ExecutionSample::from_cycles(&[5, 5, 5, 5]));
    }

    #[test]
    fn ks_accepts_two_samples_from_the_same_distribution() {
        let test = kolmogorov_smirnov(&iid_sample(11, 500), &iid_sample(23, 500));
        assert!(test.passed(), "p = {}", test.p_value);
    }

    #[test]
    fn ks_rejects_shifted_distributions() {
        let a = iid_sample(11, 500);
        let shifted =
            ExecutionSample::from_values(a.values().iter().map(|v| v + 3_000.0).collect());
        let b = iid_sample(23, 500);
        let test = kolmogorov_smirnov(&shifted, &b);
        assert!(!test.passed());
        assert!(test.statistic > 0.3);
    }

    #[test]
    fn ks_split_matches_manual_split() {
        let sample = iid_sample(5, 600);
        let (a, b) = sample.halves();
        assert_eq!(kolmogorov_smirnov_split(&sample), kolmogorov_smirnov(&a, &b));
    }

    #[test]
    fn ks_statistic_is_zero_for_identical_samples() {
        let a = iid_sample(9, 300);
        let test = kolmogorov_smirnov(&a, &a.clone());
        assert!(test.statistic.abs() < 1e-12);
        assert!((test.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ks_panics_on_empty_sample() {
        kolmogorov_smirnov(&ExecutionSample::from_cycles(&[]), &iid_sample(1, 10));
    }

    #[test]
    fn kolmogorov_q_is_monotone_and_bounded() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        let q1 = kolmogorov_q(0.5);
        let q2 = kolmogorov_q(1.0);
        let q3 = kolmogorov_q(2.0);
        assert!(q1 > q2 && q2 > q3);
        assert!(q3 > 0.0 && q1 <= 1.0);
        // Reference value: Q(1.0) ~= 0.27.
        assert!((q2 - 0.27).abs() < 0.01);
    }

    #[test]
    fn et_accepts_an_exponential_like_tail() {
        // Exponentially distributed values are their own excess
        // distribution, so the ET test should comfortably pass.
        let values: Vec<f64> = uniform_stream(17, 2000)
            .into_iter()
            .map(|u| 50_000.0 + 1_000.0 * (-(1.0 - u).ln()))
            .collect();
        let test = exponential_tail(&ExecutionSample::from_values(values), 0.1);
        assert!(test.passed(), "p = {}", test.p_value);
        assert!(test.tail_size > 150);
    }

    #[test]
    fn et_rejects_a_heavy_tail() {
        // A Pareto-like (heavy) tail is not exponential.
        let values: Vec<f64> = uniform_stream(29, 4000)
            .into_iter()
            .map(|u| 50_000.0 * (1.0 - u).powf(-1.5))
            .collect();
        let test = exponential_tail(&ExecutionSample::from_values(values), 0.1);
        assert!(!test.passed(), "p = {}", test.p_value);
    }

    #[test]
    fn et_handles_degenerate_constant_tail() {
        let values = vec![100.0; 200];
        let test = exponential_tail(&ExecutionSample::from_values(values), 0.1);
        assert!(test.passed());
        assert_eq!(test.statistic, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 20 observations")]
    fn et_panics_on_tiny_sample() {
        exponential_tail(&iid_sample(1, 10), 0.1);
    }

    #[test]
    #[should_panic(expected = "tail fraction")]
    fn et_panics_on_bad_fraction() {
        exponential_tail(&iid_sample(1, 100), 0.9);
    }

    #[test]
    fn displays_are_informative() {
        let sample = iid_sample(2, 200);
        assert!(kolmogorov_smirnov_split(&sample).to_string().contains("KS"));
        assert!(exponential_tail(&sample, 0.2).to_string().contains("ET"));
    }
}
