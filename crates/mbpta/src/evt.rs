//! Extreme Value Theory: the Gumbel distribution, block maxima and pWCET
//! curves.
//!
//! MBPTA approximates the tail of the execution-time distribution with an
//! extreme value distribution fitted to block maxima of the measured runs.
//! On time-randomised hardware the execution-time distribution is light
//! tailed, so the Gumbel family (shape parameter zero) is the appropriate
//! model — the ET test of [`crate::iid`] checks exactly this.  The fitted
//! model is then projected to very low exceedance probabilities (10⁻¹²,
//! 10⁻¹⁵ per run in the paper) to obtain the pWCET.

use crate::sample::ExecutionSample;
use std::f64::consts::PI;
use std::fmt;

/// The Euler–Mascheroni constant, used by the method-of-moments fit.
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// A Gumbel (type-I extreme value) distribution.
///
/// ```
/// use randmod_mbpta::Gumbel;
///
/// let g = Gumbel::new(100.0, 10.0);
/// let x = g.quantile(0.999);
/// assert!((g.cdf(x) - 0.999).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gumbel {
    location: f64,
    scale: f64,
}

impl Gumbel {
    /// Creates a Gumbel distribution with the given location (mu) and scale
    /// (beta) parameters.
    ///
    /// # Panics
    ///
    /// Panics if the scale is not strictly positive or either parameter is
    /// not finite.
    pub fn new(location: f64, scale: f64) -> Self {
        assert!(location.is_finite(), "location must be finite");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        Gumbel { location, scale }
    }

    /// The location parameter (mu).
    pub fn location(&self) -> f64 {
        self.location
    }

    /// The scale parameter (beta).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.location + EULER_GAMMA * self.scale
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        (-(-(x - self.location) / self.scale).exp()).exp()
    }

    /// Survival function (1 - CDF), computed accurately for the far tail.
    pub fn survival(&self, x: f64) -> f64 {
        -(-(-(x - self.location) / self.scale).exp()).exp_m1()
    }

    /// Quantile function (inverse CDF).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly between 0 and 1.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile level must be in (0, 1)");
        self.location - self.scale * (-p.ln()).ln()
    }

    /// Quantile expressed through the log of the CDF value, which stays
    /// accurate when `ln p` is a tiny negative number (far tail
    /// projections).
    pub fn quantile_from_ln_p(&self, ln_p: f64) -> f64 {
        assert!(ln_p < 0.0, "ln of a probability must be negative");
        self.location - self.scale * (-ln_p).ln()
    }

    /// Fits a Gumbel distribution by the method of moments, or `None` when
    /// the fit is undefined: fewer than two values, zero variance (all
    /// values identical, so the scale would be zero), or moments that
    /// overflow to non-finite numbers.  This is the total entry point the
    /// adaptive refit loop uses; callers wanting the degenerate fallback
    /// should go through [`PwcetCurve::from_block_maxima`].
    pub fn try_fit_moments(values: &[f64]) -> Option<Self> {
        if values.len() < 2 {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        let std_dev = var.sqrt();
        let scale = std_dev * 6.0_f64.sqrt() / PI;
        let location = mean - EULER_GAMMA * scale;
        if !scale.is_finite() || scale <= 0.0 || !location.is_finite() {
            return None;
        }
        Some(Gumbel { location, scale })
    }

    /// Fits a Gumbel distribution by the method of moments.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two distinct values are provided (the scale
    /// would be zero); [`Self::try_fit_moments`] is the non-panicking
    /// variant.
    pub fn fit_moments(values: &[f64]) -> Self {
        assert!(values.len() >= 2, "fitting needs at least two values");
        Self::try_fit_moments(values).expect("fitting needs at least two distinct values")
    }
}

impl fmt::Display for Gumbel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gumbel(mu = {:.1}, beta = {:.1})", self.location, self.scale)
    }
}

/// Extracts block maxima: the sample is cut into consecutive blocks of
/// `block_size` observations and the maximum of each complete block is
/// returned (a trailing partial block is discarded).
///
/// # Panics
///
/// Panics if `block_size` is zero.
pub fn block_maxima(sample: &ExecutionSample, block_size: usize) -> Vec<f64> {
    assert!(block_size > 0, "block size must be non-zero");
    sample
        .values()
        .chunks_exact(block_size)
        .map(|block| block.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
        .collect()
}

/// A pWCET curve: the per-run exceedance probability as a function of the
/// execution-time bound (the CCDF of Figure 1, drawn in log scale).
///
/// The curve is backed by a Gumbel model of the distribution of the
/// maximum of `block_size` runs; per-run probabilities are obtained from
/// the identity `F_run(x) = F_block(x)^(1/B)`.
///
/// ```
/// use randmod_mbpta::{ExecutionSample, PwcetCurve};
///
/// let times: Vec<u64> = (0..500).map(|i| 1_000_000 + (i * 3557) % 20_000).collect();
/// let sample = ExecutionSample::from_cycles(&times);
/// let curve = PwcetCurve::fit(&sample, 25);
/// let p12 = curve.pwcet(1e-12);
/// let p15 = curve.pwcet(1e-15);
/// assert!(p15 > p12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PwcetCurve {
    gumbel: Gumbel,
    block_size: usize,
    observed_max: f64,
}

impl PwcetCurve {
    /// Fits a pWCET curve to a sample using block maxima of `block_size`
    /// observations.  Samples whose block maxima leave nothing for EVT to
    /// model — fewer than two complete blocks, or maxima that are all
    /// identical — fall back to the degenerate curve (pWCET = observed
    /// maximum at every probability) instead of panicking, so this entry
    /// point is total for any sample and any non-zero block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn fit(sample: &ExecutionSample, block_size: usize) -> Self {
        Self::from_block_maxima(
            &block_maxima(sample, block_size),
            block_size,
            sample.max() as f64,
        )
    }

    /// Builds a curve from pre-extracted block maxima (the incremental
    /// refit path of [`crate::online::ConvergenceTracker`]): fits a Gumbel
    /// to `maxima`, or falls back to the degenerate curve at
    /// `observed_max` when the fit is undefined.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn from_block_maxima(maxima: &[f64], block_size: usize, observed_max: f64) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        match Gumbel::try_fit_moments(maxima) {
            Some(gumbel) => PwcetCurve {
                gumbel,
                block_size,
                observed_max,
            },
            None => Self::degenerate_at(observed_max),
        }
    }

    /// Builds a degenerate curve for samples with (near-)constant execution
    /// time: the pWCET equals the observed maximum at every exceedance
    /// probability.  Used by the full analysis as a fallback, since a zero
    /// sample variance leaves nothing for EVT to model.
    pub fn fit_degenerate(sample: &ExecutionSample) -> Self {
        Self::degenerate_at(sample.max() as f64)
    }

    /// The degenerate curve pinned at `max`.
    fn degenerate_at(max: f64) -> Self {
        PwcetCurve {
            gumbel: Gumbel::new(max, f64::MIN_POSITIVE.max(1e-9)),
            block_size: 1,
            observed_max: max,
        }
    }

    /// The underlying Gumbel model of the block maxima.
    pub fn gumbel(&self) -> Gumbel {
        self.gumbel
    }

    /// The block size used for the fit.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The largest observation of the sample the curve was fitted to.
    pub fn observed_max(&self) -> f64 {
        self.observed_max
    }

    /// The pWCET estimate at a per-run exceedance probability `p`
    /// (e.g. `1e-15`), never smaller than the observed maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly between 0 and 1.
    pub fn pwcet(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "exceedance probability must be in (0, 1)");
        // F_block(x) = (1 - p)^B  =>  ln F_block = B * ln(1 - p).
        let ln_p_block = self.block_size as f64 * (-p).ln_1p();
        let projected = self.gumbel.quantile_from_ln_p(ln_p_block);
        projected.max(self.observed_max)
    }

    /// The per-run exceedance probability of the bound `x`.
    pub fn exceedance_probability(&self, x: f64) -> f64 {
        // p_run = 1 - F_block(x)^(1/B) = -expm1(ln F_block(x) / B).
        let ln_f_block = -(-(x - self.gumbel.location()) / self.gumbel.scale()).exp();
        (-(ln_f_block / self.block_size as f64).exp_m1()).clamp(0.0, 1.0)
    }

    /// Samples the curve at the given exceedance probabilities, returning
    /// `(probability, execution-time bound)` pairs — the data behind the
    /// log-scale CCDF plots of Figures 1 and 5(c).
    pub fn points(&self, probabilities: &[f64]) -> Vec<(f64, f64)> {
        probabilities.iter().map(|&p| (p, self.pwcet(p))).collect()
    }

    /// A standard set of exceedance probabilities, 10⁰ down to 10⁻¹⁸.
    pub fn standard_probabilities() -> Vec<f64> {
        (1..=18).map(|k| 10f64.powi(-k)).collect()
    }
}

impl fmt::Display for PwcetCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pWCET curve: {} over blocks of {}, pWCET(1e-15) = {:.0}",
            self.gumbel,
            self.block_size,
            self.pwcet(1e-15)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn gumbel_sample(g: Gumbel, seed: u64, n: usize) -> Vec<f64> {
        uniform_stream(seed, n)
            .into_iter()
            .map(|u| g.quantile(u.clamp(1e-12, 1.0 - 1e-12)))
            .collect()
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let g = Gumbel::new(500.0, 25.0);
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.999, 0.999999] {
            let x = g.quantile(p);
            assert!((g.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn survival_is_complement_of_cdf() {
        let g = Gumbel::new(0.0, 1.0);
        for &x in &[-2.0, 0.0, 1.0, 5.0, 20.0] {
            assert!((g.survival(x) - (1.0 - g.cdf(x))).abs() < 1e-12);
        }
        // Far tail: survival stays positive where 1 - cdf would round to 0.
        assert!(g.survival(40.0) > 0.0);
    }

    #[test]
    fn mean_matches_formula() {
        let g = Gumbel::new(10.0, 2.0);
        assert!((g.mean() - (10.0 + 0.5772156649 * 2.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn non_positive_scale_panics() {
        Gumbel::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn quantile_out_of_range_panics() {
        Gumbel::new(0.0, 1.0).quantile(1.0);
    }

    #[test]
    fn moments_fit_recovers_parameters() {
        let truth = Gumbel::new(1_000_000.0, 50_000.0);
        let sample = gumbel_sample(truth, 99, 20_000);
        let fitted = Gumbel::fit_moments(&sample);
        assert!((fitted.location() - truth.location()).abs() / truth.location() < 0.01);
        assert!((fitted.scale() - truth.scale()).abs() / truth.scale() < 0.05);
    }

    #[test]
    #[should_panic(expected = "distinct values")]
    fn fit_constant_values_panics() {
        Gumbel::fit_moments(&[5.0, 5.0, 5.0]);
    }

    #[test]
    fn try_fit_moments_is_total() {
        assert!(Gumbel::try_fit_moments(&[]).is_none());
        assert!(Gumbel::try_fit_moments(&[3.0]).is_none());
        assert!(Gumbel::try_fit_moments(&[5.0, 5.0, 5.0]).is_none());
        assert!(Gumbel::try_fit_moments(&[1.0, f64::INFINITY]).is_none());
        assert!(Gumbel::try_fit_moments(&[1.0, f64::NAN]).is_none());
        let fitted = Gumbel::try_fit_moments(&[10.0, 20.0, 30.0]).unwrap();
        assert_eq!(
            Gumbel::fit_moments(&[10.0, 20.0, 30.0]),
            fitted,
            "try_fit_moments and fit_moments must agree on well-posed inputs"
        );
    }

    #[test]
    fn fit_falls_back_to_degenerate_on_constant_samples() {
        // Direct calls used to panic inside Gumbel::fit_moments; a constant
        // sample now yields the degenerate curve (pWCET = observed max).
        let constant = ExecutionSample::from_cycles(&[9_999; 120]);
        let curve = PwcetCurve::fit(&constant, 25);
        assert_eq!(curve, PwcetCurve::fit_degenerate(&constant));
        assert!((curve.pwcet(1e-15) - 9_999.0).abs() < 1e-3);
        // Too few observations for even two blocks: same fallback.
        let short = ExecutionSample::from_cycles(&[1, 2, 3]);
        let curve = PwcetCurve::fit(&short, 25);
        assert_eq!(curve.block_size(), 1);
        assert!((curve.pwcet(1e-12) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn from_block_maxima_matches_fit_on_well_posed_samples() {
        let times: Vec<u64> = (0..500).map(|i| 40_000 + (i * 7919) % 6_000).collect();
        let sample = ExecutionSample::from_cycles(&times);
        let direct = PwcetCurve::fit(&sample, 25);
        let via_maxima =
            PwcetCurve::from_block_maxima(&block_maxima(&sample, 25), 25, sample.max() as f64);
        assert_eq!(direct, via_maxima);
    }

    #[test]
    fn block_maxima_takes_per_block_maximum() {
        let sample = ExecutionSample::from_cycles(&[1, 5, 3, 9, 2, 4, 8, 7, 6]);
        assert_eq!(block_maxima(&sample, 3), vec![5.0, 9.0, 8.0]);
        // Trailing partial blocks are dropped.
        assert_eq!(block_maxima(&sample, 4), vec![9.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        block_maxima(&ExecutionSample::from_cycles(&[1]), 0);
    }

    #[test]
    fn pwcet_is_monotone_in_exceedance_probability() {
        let times: Vec<u64> = (0..1000).map(|i| 700_000 + (i * 7919) % 25_000).collect();
        let curve = PwcetCurve::fit(&ExecutionSample::from_cycles(&times), 50);
        let p9 = curve.pwcet(1e-9);
        let p12 = curve.pwcet(1e-12);
        let p15 = curve.pwcet(1e-15);
        assert!(p9 <= p12 && p12 <= p15);
        assert!(p15 >= curve.observed_max());
    }

    #[test]
    fn pwcet_never_below_observed_max() {
        let times: Vec<u64> = (0..500).map(|i| 1_000 + (i * 37) % 97).collect();
        let sample = ExecutionSample::from_cycles(&times);
        let curve = PwcetCurve::fit(&sample, 25);
        assert!(curve.pwcet(0.4) >= sample.max() as f64);
    }

    #[test]
    fn exceedance_probability_inverts_pwcet() {
        let times: Vec<u64> = (0..1000).map(|i| 500_000 + (i * 3571) % 40_000).collect();
        let curve = PwcetCurve::fit(&ExecutionSample::from_cycles(&times), 40);
        for &p in &[1e-6, 1e-9, 1e-12] {
            let x = curve.pwcet(p);
            let back = curve.exceedance_probability(x);
            assert!(
                (back.log10() - p.log10()).abs() < 0.05,
                "p = {p}, back = {back}"
            );
        }
    }

    #[test]
    fn exceedance_probability_decreases_with_bound() {
        let times: Vec<u64> = (0..800).map(|i| 100_000 + (i * 1237) % 9_000).collect();
        let curve = PwcetCurve::fit(&ExecutionSample::from_cycles(&times), 40);
        let base = curve.gumbel().location();
        let probs: Vec<f64> = (0..6)
            .map(|k| curve.exceedance_probability(base + k as f64 * 5_000.0))
            .collect();
        for pair in probs.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn gumbel_fit_projection_approximates_true_quantiles() {
        // Fit on 1,000 observations from a known Gumbel distribution and
        // check the projected 1e-6 per-run quantile is close to the truth.
        let truth = Gumbel::new(2_000_000.0, 30_000.0);
        let values = gumbel_sample(truth, 7, 1000);
        let sample = ExecutionSample::from_values(values);
        let curve = PwcetCurve::fit(&sample, 50);
        let projected = curve.pwcet(1e-6);
        let true_quantile = truth.quantile(1.0 - 1e-6);
        let rel = (projected - true_quantile).abs() / true_quantile;
        assert!(rel < 0.02, "projection off by {:.3}%", rel * 100.0);
    }

    #[test]
    fn degenerate_curve_returns_observed_max_everywhere() {
        let sample = ExecutionSample::from_cycles(&[42_000; 100]);
        let curve = PwcetCurve::fit_degenerate(&sample);
        assert!((curve.pwcet(1e-15) - 42_000.0).abs() < 1e-3);
        assert!((curve.pwcet(1e-3) - 42_000.0).abs() < 1e-3);
    }

    #[test]
    fn points_and_standard_probabilities() {
        let times: Vec<u64> = (0..500).map(|i| 10_000 + (i * 97) % 500).collect();
        let curve = PwcetCurve::fit(&ExecutionSample::from_cycles(&times), 25);
        let probs = PwcetCurve::standard_probabilities();
        assert_eq!(probs.len(), 18);
        let points = curve.points(&probs);
        assert_eq!(points.len(), 18);
        for pair in points.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "curve must be monotone");
        }
        assert!(curve.to_string().contains("pWCET curve"));
    }
}
