//! The end-to-end MBPTA procedure.
//!
//! [`MbptaAnalysis`] chains the steps the paper follows for every benchmark:
//!
//! 1. run the i.i.d. checks (Wald–Wolfowitz, split-sample Kolmogorov–Smirnov
//!    and the exponential-tail test for Gumbel convergence),
//! 2. extract block maxima and fit a Gumbel model,
//! 3. project the fitted model to the target exceedance probabilities
//!    (10⁻¹² and 10⁻¹⁵ per run in the paper) to obtain pWCET estimates,
//! 4. record the high-water mark for the comparison against the industrial
//!    practice of Figure 4(b).

use crate::evt::PwcetCurve;
use crate::hwm::HighWaterMark;
use crate::iid::{self, EtTest, KsTest, WwTest};
use crate::sample::ExecutionSample;
use std::fmt;

/// Configuration of an MBPTA analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct MbptaConfig {
    /// Block size for block-maxima extraction.
    pub block_size: usize,
    /// Fraction of the sample treated as the tail by the ET test.
    pub tail_fraction: f64,
    /// Exceedance probabilities at which pWCET estimates are reported.
    pub exceedance_probabilities: Vec<f64>,
    /// Minimum number of observations required.
    pub minimum_runs: usize,
}

impl Default for MbptaConfig {
    fn default() -> Self {
        MbptaConfig {
            block_size: 25,
            tail_fraction: 0.1,
            exceedance_probabilities: vec![1e-12, 1e-15],
            minimum_runs: 100,
        }
    }
}

impl MbptaConfig {
    /// Overrides the block size.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Overrides the minimum number of runs.
    pub fn with_minimum_runs(mut self, minimum_runs: usize) -> Self {
        self.minimum_runs = minimum_runs;
        self
    }
}

/// The full result of one MBPTA analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct MbptaReport {
    /// Independence test result.
    pub ww: WwTest,
    /// Identical-distribution test result (split-sample KS).
    pub ks: KsTest,
    /// Gumbel-convergence (exponential tail) test result.
    pub et: EtTest,
    /// The fitted pWCET curve.
    pub curve: PwcetCurve,
    /// The observed high-water mark.
    pub hwm: HighWaterMark,
    /// pWCET estimates at the configured exceedance probabilities, as
    /// `(probability, estimate)` pairs.
    pub pwcet_estimates: Vec<(f64, f64)>,
    /// Number of observations analysed.
    pub runs: usize,
}

impl MbptaReport {
    /// Whether all MBPTA applicability checks passed.
    pub fn iid_passed(&self) -> bool {
        self.ww.passed() && self.ks.passed() && self.et.passed()
    }

    /// The pWCET estimate at exceedance probability `p` (interpolating the
    /// fitted curve, not restricted to the configured probabilities).
    pub fn pwcet_at(&self, p: f64) -> f64 {
        self.curve.pwcet(p)
    }

    /// The ratio of the pWCET at `p` to the observed high-water mark.
    pub fn pwcet_over_hwm(&self, p: f64) -> f64 {
        self.hwm.ratio_of(self.pwcet_at(p))
    }
}

impl fmt::Display for MbptaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "MBPTA report over {} runs", self.runs)?;
        writeln!(f, "  {}", self.ww)?;
        writeln!(f, "  {}", self.ks)?;
        writeln!(f, "  {}", self.et)?;
        writeln!(f, "  {}", self.hwm)?;
        for &(p, estimate) in &self.pwcet_estimates {
            writeln!(f, "  pWCET @ {p:.0e}: {estimate:.0} cycles")?;
        }
        Ok(())
    }
}

/// The MBPTA analysis driver.
///
/// ```
/// use randmod_mbpta::{ExecutionSample, MbptaAnalysis, MbptaConfig};
///
/// let times: Vec<u64> = (0..500).map(|i| 250_000 + (i * 6151) % 4_000).collect();
/// let report = MbptaAnalysis::new(MbptaConfig::default())
///     .analyze(&ExecutionSample::from_cycles(&times));
/// assert_eq!(report.runs, 500);
/// assert!(report.pwcet_at(1e-15) >= report.hwm.value() as f64);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MbptaAnalysis {
    config: MbptaConfig,
}

impl MbptaAnalysis {
    /// Creates an analysis driver with the given configuration.
    pub fn new(config: MbptaConfig) -> Self {
        MbptaAnalysis { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MbptaConfig {
        &self.config
    }

    /// Runs the full MBPTA procedure on a sample of execution times.
    ///
    /// # Panics
    ///
    /// Panics if the sample holds fewer than the configured minimum number
    /// of runs.
    pub fn analyze(&self, sample: &ExecutionSample) -> MbptaReport {
        assert!(
            sample.len() >= self.config.minimum_runs,
            "MBPTA needs at least {} runs, got {}",
            self.config.minimum_runs,
            sample.len()
        );
        let spread = sample.max().saturating_sub(sample.min());
        let degenerate = spread == 0 || sample.std_dev() == 0.0;

        // The runs test dichotomises around the median and drops ties; it
        // is undefined (not merely degenerate) whenever fewer than two
        // observations differ from the median — e.g. a constant sample
        // with a single outlier — so those samples take the trivial
        // "independent" verdict instead of panicking inside the test.
        let median = sample.median();
        let distinct_from_median = sample.values().iter().filter(|&&v| v != median).count();
        let ww = if degenerate || distinct_from_median < 2 {
            WwTest {
                statistic: 0.0,
                runs: 1,
                above: 0,
                below: 0,
            }
        } else {
            iid::wald_wolfowitz(sample)
        };
        let ks = if degenerate {
            KsTest {
                statistic: 0.0,
                p_value: 1.0,
            }
        } else {
            iid::kolmogorov_smirnov_split(sample)
        };
        let et = iid::exponential_tail(sample, self.config.tail_fraction);

        // `fit` is total: constant samples and all-identical block maxima
        // fall back to the degenerate curve internally.
        let curve = PwcetCurve::fit(sample, self.config.block_size);
        let hwm = HighWaterMark::from_sample(sample);
        let pwcet_estimates = self
            .config
            .exceedance_probabilities
            .iter()
            .map(|&p| (p, curve.pwcet(p)))
            .collect();
        MbptaReport {
            ww,
            ks,
            et,
            curve,
            hwm,
            pwcet_estimates,
            runs: sample.len(),
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_sample(seed: u64, n: usize, base: u64, spread: u64) -> ExecutionSample {
        // Exponentially distributed noise on top of a base time: a light
        // (Gumbel-domain) tail, the regime MBPTA targets.
        let mut state = seed.max(1);
        let values: Vec<u64> = (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                    / (1u64 << 53) as f64;
                base + (spread as f64 * 0.2 * -(1.0 - u).ln()) as u64
            })
            .collect();
        ExecutionSample::from_cycles(&values)
    }

    #[test]
    fn full_analysis_on_an_iid_sample_passes_all_tests() {
        let sample = noisy_sample(3, 1000, 600_000, 20_000);
        let report = MbptaAnalysis::new(MbptaConfig::default()).analyze(&sample);
        assert!(report.iid_passed(), "{report}");
        assert_eq!(report.runs, 1000);
        assert_eq!(report.pwcet_estimates.len(), 2);
        assert!(report.pwcet_at(1e-15) >= report.pwcet_at(1e-12));
        assert!(report.pwcet_over_hwm(1e-15) >= 1.0);
    }

    #[test]
    fn degenerate_sample_is_handled_gracefully() {
        let sample = ExecutionSample::from_cycles(&[77_777; 200]);
        let report = MbptaAnalysis::new(MbptaConfig::default()).analyze(&sample);
        assert!(report.iid_passed());
        assert!((report.pwcet_at(1e-15) - 77_777.0).abs() < 1e-3);
        assert_eq!(report.hwm.value(), 77_777);
    }

    #[test]
    fn nearly_degenerate_sample_does_not_panic() {
        // Two distinct values only: block maxima may all coincide.
        let values: Vec<u64> = (0..300).map(|i| 1000 + (i % 2)).collect();
        let report = MbptaAnalysis::new(MbptaConfig::default()).analyze(&ExecutionSample::from_cycles(&values));
        assert!(report.pwcet_at(1e-15) >= 1001.0);
    }

    #[test]
    fn single_outlier_sample_does_not_panic() {
        // One observation distinct from the median: the runs test is
        // undefined (it would panic after dropping ties), so the analysis
        // must take the trivial-independence branch.
        let mut values = vec![50_000u64; 200];
        values[137] = 50_001;
        let report =
            MbptaAnalysis::new(MbptaConfig::default()).analyze(&ExecutionSample::from_cycles(&values));
        assert!(report.ww.passed());
        assert!(report.pwcet_at(1e-15) >= 50_001.0);
    }

    #[test]
    #[should_panic(expected = "at least 100 runs")]
    fn too_few_runs_panics() {
        MbptaAnalysis::new(MbptaConfig::default())
            .analyze(&ExecutionSample::from_cycles(&[1, 2, 3]));
    }

    #[test]
    fn config_builders_apply() {
        let config = MbptaConfig::default()
            .with_block_size(10)
            .with_minimum_runs(50);
        assert_eq!(config.block_size, 10);
        assert_eq!(config.minimum_runs, 50);
        let analysis = MbptaAnalysis::new(config.clone());
        assert_eq!(analysis.config(), &config);
        let sample = noisy_sample(9, 60, 1_000, 100);
        let report = analysis.analyze(&sample);
        assert_eq!(report.curve.block_size(), 10);
    }

    #[test]
    fn report_display_lists_estimates() {
        let sample = noisy_sample(11, 500, 100_000, 5_000);
        let report = MbptaAnalysis::new(MbptaConfig::default()).analyze(&sample);
        let text = report.to_string();
        assert!(text.contains("pWCET @ 1e-12"));
        assert!(text.contains("pWCET @ 1e-15"));
        assert!(text.contains("MBPTA report over 500 runs"));
    }

    #[test]
    fn pwcet_tracks_sample_spread() {
        // A sample with a wider spread must yield a larger pWCET (same base).
        let narrow = MbptaAnalysis::new(MbptaConfig::default())
            .analyze(&noisy_sample(5, 800, 500_000, 1_000));
        let wide = MbptaAnalysis::new(MbptaConfig::default())
            .analyze(&noisy_sample(5, 800, 500_000, 100_000));
        assert!(wide.pwcet_at(1e-15) > narrow.pwcet_at(1e-15));
    }
}
