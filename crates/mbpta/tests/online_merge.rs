//! Edge-case coverage for `OnlineSample::merge` — the statistical half of
//! the shard-merge story.
//!
//! Sharded campaigns accumulate per-shard `OnlineSample`s and merge them
//! into the campaign summary, so merge must behave at the shard-protocol
//! corners: empty shards are identities, single-element shards merge like
//! pushes, and *any* shard-tree shape over the same observations yields
//! the same moments.  Count, min and max are integer-exact under every
//! shape; mean and M2 use Chan's parallel update, which is not exactly
//! float-associative, so those compare to tight relative tolerance.

use proptest::prelude::*;
use randmod_mbpta::OnlineSample;

/// Relative tolerance for the float moments across merge-tree shapes.
const REL_TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= REL_TOL * scale
}

fn sample_of(values: &[u64]) -> OnlineSample {
    let mut s = OnlineSample::new();
    for &v in values {
        s.push(v);
    }
    s
}

/// Asserts the integer fields exactly and the float moments approximately.
fn assert_equivalent(a: &OnlineSample, b: &OnlineSample) {
    assert_eq!(a.count(), b.count());
    assert_eq!(a.min(), b.min());
    assert_eq!(a.max(), b.max());
    assert!(
        close(a.mean(), b.mean()),
        "means diverged: {} vs {}",
        a.mean(),
        b.mean()
    );
    assert!(
        close(a.variance(), b.variance()),
        "variances diverged: {} vs {}",
        a.variance(),
        b.variance()
    );
}

#[test]
fn empty_shard_is_a_two_sided_identity() {
    let empty = OnlineSample::new();
    let sample = sample_of(&[10, 20, 30, 40]);
    // Empty on either side returns the other operand bit-for-bit.
    assert_eq!(sample.merge(&empty), sample);
    assert_eq!(empty.merge(&sample), sample);
    // Empty-with-empty stays empty and its accessors stay well-defined.
    let both = empty.merge(&empty);
    assert_eq!(both.count(), 0);
    assert_eq!(both.mean(), 0.0);
    assert_eq!(both.variance(), 0.0);
    assert_eq!(both.min(), 0);
    assert_eq!(both.max(), 0);
}

#[test]
fn single_element_shards_merge_like_pushes() {
    // Building a sample one singleton shard at a time must match the
    // streaming accumulator exactly at the integer fields and to
    // tolerance at the moments.
    let values = [100u64, 250, 99, 250, 1_000_000, 3];
    let streamed = sample_of(&values);
    let mut merged = OnlineSample::new();
    for &v in &values {
        merged = merged.merge(&sample_of(&[v]));
    }
    assert_eq!(merged.count(), streamed.count());
    assert_eq!(merged.min(), streamed.min());
    assert_eq!(merged.max(), streamed.max());
    assert!(close(merged.mean(), streamed.mean()));
    assert!(close(merged.variance(), streamed.variance()));
    // A lone singleton also round-trips: variance of one observation is 0.
    let one = sample_of(&[42]);
    assert_eq!(one.merge(&OnlineSample::new()).variance(), 0.0);
    assert_eq!(one.min(), 42);
    assert_eq!(one.max(), 42);
}

/// Recursively merges `values` split at the given pivot fractions (in
/// per-mille), producing an arbitrary-shape merge tree over contiguous
/// shards.
fn merge_tree(values: &[u64], pivots: &[usize]) -> OnlineSample {
    if values.len() <= 1 || pivots.is_empty() {
        return sample_of(values);
    }
    let (frac, rest) = pivots.split_first().unwrap();
    let cut = (values.len() - 1) * (frac % 1000) / 1000 + 1;
    let half = rest.len() / 2;
    merge_tree(&values[..cut], &rest[..half]).merge(&merge_tree(&values[cut..], &rest[half..]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge-order invariance: any shard-tree shape over the same
    /// observations yields the same count/min/max exactly and the same
    /// mean/variance to tight relative tolerance.
    #[test]
    fn any_merge_tree_shape_yields_the_same_moments(
        values in prop::collection::vec(0u64..2_000_000_000, 1..120),
        pivots in prop::collection::vec(0usize..1000, 0..12),
    ) {
        let streamed = sample_of(&values);
        let treed = merge_tree(&values, &pivots);
        assert_equivalent(&streamed, &treed);
    }

    /// The two-shard split in particular — the exact shape the sharded
    /// campaign drivers produce (left-fold over contiguous shards) — is
    /// equivalent to streaming for every cut point, including the
    /// degenerate all-left and all-right cuts.
    #[test]
    fn every_contiguous_cut_matches_streaming(
        values in prop::collection::vec(0u64..u64::MAX / 2, 2..60),
    ) {
        let streamed = sample_of(&values);
        for cut in 0..=values.len() {
            let merged = sample_of(&values[..cut]).merge(&sample_of(&values[cut..]));
            assert_equivalent(&streamed, &merged);
        }
    }

    /// Merge is symmetric on the integer fields and tolerance-symmetric
    /// on the moments (Chan's update treats the operands asymmetrically,
    /// so this is worth pinning separately).
    #[test]
    fn merge_is_commutative_to_tolerance(
        left in prop::collection::vec(0u64..1_000_000, 0..40),
        right in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let a = sample_of(&left).merge(&sample_of(&right));
        let b = sample_of(&right).merge(&sample_of(&left));
        assert_equivalent(&a, &b);
    }
}
