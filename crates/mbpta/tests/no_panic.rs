//! The statistical pipeline must be total over measured data: whatever
//! cycle counts a campaign produces — constant, near-constant, huge,
//! adversarially spread — `MbptaAnalysis::analyze` and the public EVT
//! entry points return a result instead of panicking.  These properties
//! pin the degeneracy hardening of the EVT fit (`Gumbel::try_fit_moments`,
//! the `PwcetCurve::fit` fallback) and of the runs-test guard in the
//! analysis driver.

use proptest::prelude::*;
use randmod_mbpta::{
    ConvergenceCriterion, ConvergenceTracker, ExecutionSample, Gumbel, MbptaAnalysis, MbptaConfig,
    PwcetCurve,
};

/// Cycle counts biased towards the pathological corners: tight clusters,
/// exact repetitions, zeros and values far beyond 2^53.
fn cycles_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just((1u64 << 53) + 1),
        Just(u64::MAX),
        0u64..1_000,
        1_000_000u64..1_001_000,
        any::<u64>(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full analysis never panics on arbitrary samples that satisfy
    /// the configured minimum-run floor, and its pWCET estimates never
    /// fall below the observed high-water mark.
    #[test]
    fn analyze_is_total_over_arbitrary_samples(
        cycles in prop::collection::vec(cycles_strategy(), 100..300),
    ) {
        let sample = ExecutionSample::from_cycles(&cycles);
        let report = MbptaAnalysis::new(MbptaConfig::default()).analyze(&sample);
        prop_assert_eq!(report.runs, cycles.len());
        for &(p, estimate) in &report.pwcet_estimates {
            prop_assert!(p > 0.0 && p < 1.0);
            prop_assert!(estimate >= sample.max() as f64, "pWCET below the hwm");
        }
    }

    /// Near-constant samples — the shapes the degeneracy guards exist
    /// for: constant everywhere, or constant with a handful of outliers
    /// (including exactly one, which makes the runs test undefined).
    #[test]
    fn analyze_is_total_over_near_constant_samples(
        base in cycles_strategy(),
        outlier in cycles_strategy(),
        outlier_count in 0usize..4,
        len in 100usize..250,
    ) {
        let mut cycles = vec![base; len];
        for i in 0..outlier_count.min(len) {
            cycles[(i * 37) % len] = outlier;
        }
        let sample = ExecutionSample::from_cycles(&cycles);
        let report = MbptaAnalysis::new(MbptaConfig::default()).analyze(&sample);
        prop_assert!(report.pwcet_at(1e-15) >= sample.max() as f64);
    }

    /// The public EVT entry points are total for every block size.
    #[test]
    fn evt_entry_points_are_total(
        cycles in prop::collection::vec(cycles_strategy(), 1..200),
        block_size in 1usize..60,
    ) {
        let sample = ExecutionSample::from_cycles(&cycles);
        let curve = PwcetCurve::fit(&sample, block_size);
        prop_assert!(curve.pwcet(1e-12) >= sample.max() as f64);
        let values: Vec<f64> = cycles.iter().map(|&c| c as f64).collect();
        if let Some(gumbel) = Gumbel::try_fit_moments(&values) {
            prop_assert!(gumbel.scale() > 0.0);
        }
    }

    /// The convergence tracker is total too: any stream either converges
    /// or runs to the cap, and its estimate tracks the running maximum.
    #[test]
    fn convergence_tracker_is_total(
        cycles in prop::collection::vec(cycles_strategy(), 60..250),
    ) {
        let criterion = ConvergenceCriterion::default()
            .with_min_runs(30)
            .with_check_interval(20)
            .with_max_runs(250);
        let mut tracker = ConvergenceTracker::new(criterion);
        for &c in &cycles {
            tracker.push(c);
        }
        tracker.finalize();
        prop_assert_eq!(tracker.runs(), cycles.len());
        prop_assert!(!tracker.trajectory().is_empty());
        prop_assert!(tracker.current_estimate() >= tracker.sample().max() as f64);
    }
}
