//! Structural cost model of the Random Modulo module.
//!
//! RM adds a Benes network of pass-gate switches on the `N` index bits plus
//! one XOR stage that combines the upper address bits with the seed to form
//! the network's control word (Figure 3 of the paper).  The index bits
//! travel through pass transistors only, which is why the module is both
//! small and fast; for a write-through cache no index bits need to be added
//! to the tag array.

use crate::gates::{AreaDelay, CellLibrary};
use randmod_core::benes::BenesNetwork;
use std::fmt;

/// Cost model of the RM module for one cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RmModule {
    index_bits: u32,
    control_bits: u32,
    write_back: bool,
}

impl RmModule {
    /// Creates the model for a cache with `index_bits` set-index bits.
    /// `write_back` selects whether the cache keeps dirty lines (in which
    /// case the index bits must still be stored in the tag array so victim
    /// addresses can be rebuilt).
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is zero.
    pub fn new(index_bits: u32, write_back: bool) -> Self {
        assert!(index_bits > 0, "index width must be non-zero");
        let control_bits = BenesNetwork::new(index_bits as usize).control_bits() as u32;
        RmModule {
            index_bits,
            control_bits,
            write_back,
        }
    }

    /// The write-through configuration used for the paper's first-level
    /// caches.
    pub fn paper_config(index_bits: u32) -> Self {
        Self::new(index_bits, false)
    }

    /// Number of 2x2 switches in the Benes network (equals the number of
    /// control bits).
    pub fn switch_count(&self) -> u32 {
        self.control_bits
    }

    /// Number of 2-input XOR gates deriving the control word from the upper
    /// address bits and the seed.
    pub fn xor_count(&self) -> u32 {
        self.control_bits
    }

    /// Flip-flops holding the seed bits consumed by the control derivation.
    pub fn register_bits(&self) -> u32 {
        self.control_bits + 1
    }

    /// Extra SRAM bits per line in the tag array (zero for write-through,
    /// the index width for write-back).
    pub fn extra_tag_bits_per_line(&self) -> u32 {
        if self.write_back {
            self.index_bits
        } else {
            0
        }
    }

    /// Area and critical-path delay of the RM module.
    pub fn area_delay(&self, library: &CellLibrary) -> AreaDelay {
        // Each 2x2 switch is two transmission-gate legs.
        let area_cells = self.switch_count() as f64 * 2.0 * library.passgate_area_um2
            + self.xor_count() as f64 * library.xor2_area_um2
            + self.register_bits() as f64 * library.dff_area_um2;
        let area = area_cells * library.routing_overhead;
        // The index traverses 2*ceil(log2 N) - 1 switch stages of pass
        // gates; the control word costs one XOR plus the register overhead,
        // in parallel with (and typically dominating) the first stages.
        let stages = (2 * crate::hrp::ceil_log2(self.index_bits).max(1)).saturating_sub(1).max(1);
        let delay = stages as f64 * library.passgate_delay_ns
            + library.xor2_delay_ns
            + library.dff_overhead_ns;
        AreaDelay::new(area, delay)
    }

    /// Tag-array area overhead for a cache with `lines` lines.
    pub fn tag_overhead_area(&self, lines: u32, library: &CellLibrary) -> f64 {
        lines as f64 * self.extra_tag_bits_per_line() as f64 * library.sram_bit_area_um2
    }
}

impl fmt::Display for RmModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RM module: {}-bit index, {} switches, {} control XORs",
            self.index_bits,
            self.switch_count(),
            self.xor_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_bit_index_uses_twenty_control_bits() {
        let module = RmModule::paper_config(8);
        assert_eq!(module.switch_count(), 20);
        assert_eq!(module.xor_count(), 20);
        assert!(module.to_string().contains("20 switches"));
    }

    #[test]
    fn write_through_needs_no_extra_tag_bits() {
        assert_eq!(RmModule::new(7, false).extra_tag_bits_per_line(), 0);
        assert_eq!(RmModule::new(7, true).extra_tag_bits_per_line(), 7);
    }

    #[test]
    fn area_lands_in_the_papers_neighbourhood() {
        // The paper reports 336.6 µm² for the RM module.
        let cost = RmModule::paper_config(7).area_delay(&CellLibrary::generic_45nm());
        assert!(
            cost.area_um2 > 150.0 && cost.area_um2 < 700.0,
            "RM area {} µm² outside the plausible band",
            cost.area_um2
        );
    }

    #[test]
    fn delay_lands_in_the_papers_neighbourhood() {
        // The paper reports 0.46 ns.
        let cost = RmModule::paper_config(7).area_delay(&CellLibrary::generic_45nm());
        assert!(
            cost.delay_ns > 0.2 && cost.delay_ns < 0.7,
            "RM delay {} ns outside the plausible band",
            cost.delay_ns
        );
    }

    #[test]
    fn tag_overhead_is_zero_for_write_through() {
        let lib = CellLibrary::generic_45nm();
        assert_eq!(RmModule::new(7, false).tag_overhead_area(2048, &lib), 0.0);
        assert!(RmModule::new(7, true).tag_overhead_area(2048, &lib) > 0.0);
    }

    #[test]
    fn wider_indices_cost_more() {
        let lib = CellLibrary::generic_45nm();
        let narrow = RmModule::paper_config(7).area_delay(&lib);
        let wide = RmModule::paper_config(10).area_delay(&lib);
        assert!(wide.area_um2 > narrow.area_um2);
        assert!(wide.delay_ns >= narrow.delay_ns);
    }

    #[test]
    #[should_panic(expected = "index width")]
    fn zero_index_bits_panics() {
        RmModule::new(0, false);
    }
}
