//! Primitive cells and their area/delay figures.

use std::fmt;
use std::ops::Add;

/// Area and critical-path delay of a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaDelay {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Critical-path delay in nanoseconds.
    pub delay_ns: f64,
}

impl AreaDelay {
    /// Creates a new area/delay pair.
    pub fn new(area_um2: f64, delay_ns: f64) -> Self {
        AreaDelay { area_um2, delay_ns }
    }
}

impl Add for AreaDelay {
    type Output = AreaDelay;

    /// Composes two circuit sections in series: areas add, delays add.
    fn add(self, other: AreaDelay) -> AreaDelay {
        AreaDelay {
            area_um2: self.area_um2 + other.area_um2,
            delay_ns: self.delay_ns + other.delay_ns,
        }
    }
}

impl fmt::Display for AreaDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}um2 / {:.2}ns", self.area_um2, self.delay_ns)
    }
}

/// Per-cell area and delay figures of a generic 45nm-class standard-cell
/// library, plus global derating factors.
///
/// The values are representative of published 45nm cell libraries; the
/// reproduction's claim is the *relative* cost of the two modules, which
/// depends on gate counts rather than on these constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellLibrary {
    /// Area of a 2-input XOR gate, µm².
    pub xor2_area_um2: f64,
    /// Propagation delay of a 2-input XOR gate, ns.
    pub xor2_delay_ns: f64,
    /// Area of a 2:1 multiplexer (one leg of a barrel-shifter stage), µm².
    pub mux2_area_um2: f64,
    /// Propagation delay of a 2:1 multiplexer, ns.
    pub mux2_delay_ns: f64,
    /// Area of a pass-gate switch leg (Benes switch transmission gate), µm².
    pub passgate_area_um2: f64,
    /// Propagation delay through a pass-gate stage, ns.
    pub passgate_delay_ns: f64,
    /// Area of a flip-flop (seed/control registers), µm².
    pub dff_area_um2: f64,
    /// Flip-flop clock-to-q plus setup contribution charged once per
    /// registered path, ns.
    pub dff_overhead_ns: f64,
    /// Area of one SRAM bit in the tag array, µm² (used to account for the
    /// index bits hRP must store).
    pub sram_bit_area_um2: f64,
    /// Multiplicative overhead for wiring/placement utilisation.
    pub routing_overhead: f64,
}

impl CellLibrary {
    /// A generic 45nm-class library calibrated so that the two modules land
    /// in the neighbourhood of the paper's absolute figures.
    pub fn generic_45nm() -> Self {
        CellLibrary {
            xor2_area_um2: 3.0,
            xor2_delay_ns: 0.065,
            mux2_area_um2: 2.5,
            mux2_delay_ns: 0.055,
            passgate_area_um2: 1.2,
            passgate_delay_ns: 0.035,
            dff_area_um2: 4.5,
            dff_overhead_ns: 0.09,
            sram_bit_area_um2: 0.35,
            routing_overhead: 1.30,
        }
    }

    /// A conservative (slower, denser-wiring) corner of the same library,
    /// useful for sensitivity checks: relative results must not change.
    pub fn slow_corner_45nm() -> Self {
        let nominal = Self::generic_45nm();
        CellLibrary {
            xor2_delay_ns: nominal.xor2_delay_ns * 1.3,
            mux2_delay_ns: nominal.mux2_delay_ns * 1.3,
            passgate_delay_ns: nominal.passgate_delay_ns * 1.3,
            dff_overhead_ns: nominal.dff_overhead_ns * 1.3,
            routing_overhead: 1.45,
            ..nominal
        }
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::generic_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_delay_series_composition() {
        let a = AreaDelay::new(10.0, 0.1);
        let b = AreaDelay::new(5.0, 0.2);
        let c = a + b;
        assert!((c.area_um2 - 15.0).abs() < 1e-12);
        assert!((c.delay_ns - 0.3).abs() < 1e-12);
        assert_eq!(c.to_string(), "15.0um2 / 0.30ns");
    }

    #[test]
    fn default_library_is_generic_45nm() {
        assert_eq!(CellLibrary::default(), CellLibrary::generic_45nm());
    }

    #[test]
    fn library_values_are_positive() {
        let lib = CellLibrary::generic_45nm();
        for v in [
            lib.xor2_area_um2,
            lib.xor2_delay_ns,
            lib.mux2_area_um2,
            lib.mux2_delay_ns,
            lib.passgate_area_um2,
            lib.passgate_delay_ns,
            lib.dff_area_um2,
            lib.dff_overhead_ns,
            lib.sram_bit_area_um2,
        ] {
            assert!(v > 0.0);
        }
        assert!(lib.routing_overhead >= 1.0);
    }

    #[test]
    fn slow_corner_is_slower_but_same_area_cells() {
        let nominal = CellLibrary::generic_45nm();
        let slow = CellLibrary::slow_corner_45nm();
        assert!(slow.xor2_delay_ns > nominal.xor2_delay_ns);
        assert_eq!(slow.xor2_area_um2, nominal.xor2_area_um2);
        assert!(slow.routing_overhead > nominal.routing_overhead);
    }

    #[test]
    fn pass_gates_are_cheaper_and_faster_than_muxes() {
        // The premise of the paper's delay argument: RM's index bits travel
        // through pass transistors, cheaper than full multiplexer cells.
        let lib = CellLibrary::generic_45nm();
        assert!(lib.passgate_area_um2 < lib.mux2_area_um2);
        assert!(lib.passgate_delay_ns < lib.mux2_delay_ns);
    }
}
