//! FPGA integration model.
//!
//! The FPGA half of Table 1 integrates the chosen placement module into all
//! cache memories of the 4-core LEON3 prototype (an instruction and a data
//! L1 per core plus the shared L2, nine caches in total) and reports the
//! logic occupancy of the Stratix-IV device and the maximum operating
//! frequency.  The baseline (modulo-placement) design occupies 70% of the
//! device and runs at 100 MHz; hRP pushes occupancy to 80% and forces the
//! clock down to 80 MHz, while RM costs two occupancy points and keeps the
//! full 100 MHz.
//!
//! This model derives both quantities from the structural ASIC costs: logic
//! occupancy grows proportionally to the added cell area, and the clock is
//! derated whenever the module's added delay exceeds the slack available in
//! the cache-access path of the baseline design.

use crate::gates::{AreaDelay, CellLibrary};
use crate::hrp::HrpModule;
use crate::rm::RmModule;
use std::fmt;

/// Occupancy and frequency of one FPGA integration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaReport {
    /// Logic occupancy of the device, in percent.
    pub occupancy_percent: f64,
    /// Maximum operating frequency, in MHz.
    pub frequency_mhz: f64,
}

impl fmt::Display for FpgaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0}% occupation, {:.0} MHz",
            self.occupancy_percent, self.frequency_mhz
        )
    }
}

/// The FPGA prototype model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaModel {
    /// Logic occupancy of the baseline (modulo placement) design, percent.
    pub baseline_occupancy_percent: f64,
    /// Baseline operating frequency, MHz.
    pub baseline_frequency_mhz: f64,
    /// Number of caches the module is instantiated in (IL1 + DL1 per core
    /// on four cores, plus the shared L2).
    pub cache_instances: u32,
    /// Equivalent ASIC cell area corresponding to one occupancy point of
    /// the device, µm² (calibrated against the prototype).
    pub area_per_occupancy_point_um2: f64,
    /// Delay slack available in the baseline cache-access path before the
    /// clock must be stretched, ns.
    pub slack_ns: f64,
}

impl FpgaModel {
    /// The Stratix-IV prototype of the paper.
    pub fn stratix_iv() -> Self {
        FpgaModel {
            baseline_occupancy_percent: 70.0,
            baseline_frequency_mhz: 100.0,
            cache_instances: 9,
            area_per_occupancy_point_um2: 3_000.0,
            slack_ns: 0.47,
        }
    }

    /// Integrates a module with the given per-cache cost into every cache
    /// and reports occupancy and frequency.
    pub fn integrate(&self, module_cost: AreaDelay) -> FpgaReport {
        let added_area = module_cost.area_um2 * self.cache_instances as f64;
        let occupancy =
            self.baseline_occupancy_percent + added_area / self.area_per_occupancy_point_um2;
        let frequency = if module_cost.delay_ns <= self.slack_ns {
            self.baseline_frequency_mhz
        } else {
            // The cache access path sets the clock: stretching it by the
            // excess delay reduces the frequency proportionally.
            self.baseline_frequency_mhz * self.slack_ns / module_cost.delay_ns
        };
        FpgaReport {
            occupancy_percent: occupancy.min(100.0),
            frequency_mhz: frequency,
        }
    }

    /// Convenience: integrate the hRP module of every cache.
    pub fn integrate_hrp(&self, module: &HrpModule, library: &CellLibrary) -> FpgaReport {
        self.integrate(module.area_delay(library))
    }

    /// Convenience: integrate the RM module of every cache.
    pub fn integrate_rm(&self, module: &RmModule, library: &CellLibrary) -> FpgaReport {
        self.integrate(module.area_delay(library))
    }
}

impl Default for FpgaModel {
    fn default() -> Self {
        Self::stratix_iv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rm_keeps_the_baseline_frequency() {
        let model = FpgaModel::stratix_iv();
        let report = model.integrate_rm(&RmModule::paper_config(7), &CellLibrary::generic_45nm());
        assert_eq!(report.frequency_mhz, 100.0);
        // RM adds only a couple of occupancy points.
        assert!(report.occupancy_percent > 70.0);
        assert!(report.occupancy_percent < 75.0);
    }

    #[test]
    fn hrp_derates_the_clock_and_costs_more_logic() {
        let model = FpgaModel::stratix_iv();
        let lib = CellLibrary::generic_45nm();
        let hrp = model.integrate_hrp(&HrpModule::paper_config(7), &lib);
        let rm = model.integrate_rm(&RmModule::paper_config(7), &lib);
        assert!(hrp.frequency_mhz < 100.0, "hRP should not close timing at 100 MHz");
        assert!(hrp.frequency_mhz > 60.0);
        assert!(hrp.occupancy_percent > rm.occupancy_percent + 4.0);
        assert!(hrp.occupancy_percent <= 100.0);
    }

    #[test]
    fn occupancy_is_capped_at_100_percent() {
        let model = FpgaModel {
            area_per_occupancy_point_um2: 1.0,
            ..FpgaModel::stratix_iv()
        };
        let report = model.integrate(AreaDelay::new(10_000.0, 0.1));
        assert_eq!(report.occupancy_percent, 100.0);
    }

    #[test]
    fn default_is_stratix_iv() {
        assert_eq!(FpgaModel::default(), FpgaModel::stratix_iv());
    }

    #[test]
    fn report_display() {
        let report = FpgaReport {
            occupancy_percent: 72.0,
            frequency_mhz: 100.0,
        };
        assert_eq!(report.to_string(), "72% occupation, 100 MHz");
    }
}
