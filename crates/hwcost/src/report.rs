//! Table-1-shaped report generation.

use crate::fpga::{FpgaModel, FpgaReport};
use crate::gates::{AreaDelay, CellLibrary};
use crate::hrp::HrpModule;
use crate::rm::RmModule;
use std::fmt;

/// The reproduction of Table 1: ASIC area/delay of the two modules in
/// isolation, and FPGA occupancy/frequency of the full integration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Report {
    /// ASIC cost of the RM module.
    pub asic_rm: AreaDelay,
    /// ASIC cost of the hRP module.
    pub asic_hrp: AreaDelay,
    /// FPGA integration of RM in all caches.
    pub fpga_rm: FpgaReport,
    /// FPGA integration of hRP in all caches.
    pub fpga_hrp: FpgaReport,
}

impl Table1Report {
    /// Generates the report for a cache with `index_bits` set-index bits
    /// (the paper synthesises the modules for a 128-set cache).
    pub fn generate(index_bits: u32, library: &CellLibrary) -> Self {
        let rm = RmModule::paper_config(index_bits);
        let hrp = HrpModule::paper_config(index_bits);
        let fpga = FpgaModel::stratix_iv();
        Table1Report {
            asic_rm: rm.area_delay(library),
            asic_hrp: hrp.area_delay(library),
            fpga_rm: fpga.integrate_rm(&rm, library),
            fpga_hrp: fpga.integrate_hrp(&hrp, library),
        }
    }

    /// The hRP-to-RM area ratio (the paper reports roughly 10x).
    pub fn area_ratio(&self) -> f64 {
        self.asic_hrp.area_um2 / self.asic_rm.area_um2
    }

    /// The relative delay reduction of RM over hRP (the paper reports
    /// roughly 27%).
    pub fn delay_reduction(&self) -> f64 {
        1.0 - self.asic_rm.delay_ns / self.asic_hrp.delay_ns
    }
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: ASIC & FPGA implementation results")?;
        writeln!(f, "                       Area                    Delay/Frequency")?;
        writeln!(f, "                RM           hRP           RM        hRP")?;
        writeln!(
            f,
            "  ASIC 45nm     {:>8.1}um2  {:>8.1}um2   {:>6.2}ns  {:>6.2}ns",
            self.asic_rm.area_um2, self.asic_hrp.area_um2, self.asic_rm.delay_ns, self.asic_hrp.delay_ns
        )?;
        writeln!(
            f,
            "  FPGA Stratix  {:>5.0}% occ.  {:>5.0}% occ.   {:>5.0}MHz  {:>5.0}MHz",
            self.fpga_rm.occupancy_percent,
            self.fpga_hrp.occupancy_percent,
            self.fpga_rm.frequency_mhz,
            self.fpga_hrp.frequency_mhz
        )?;
        writeln!(
            f,
            "  (hRP/RM area ratio {:.1}x, RM delay reduction {:.0}%)",
            self.area_ratio(),
            self.delay_reduction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_reproduces_the_papers_shape() {
        let report = Table1Report::generate(7, &CellLibrary::generic_45nm());
        // Paper: ~10.4x area ratio; accept a generous band since the
        // absolute numbers depend on the cell library.
        assert!(
            report.area_ratio() > 5.0 && report.area_ratio() < 16.0,
            "area ratio {}",
            report.area_ratio()
        );
        // Paper: ~27% lower delay for RM (ratio check keeps the shape).
        assert!(
            report.delay_reduction() > 0.10 && report.delay_reduction() < 0.45,
            "delay reduction {}",
            report.delay_reduction()
        );
        // FPGA: RM keeps 100 MHz, hRP does not; RM costs fewer points.
        assert_eq!(report.fpga_rm.frequency_mhz, 100.0);
        assert!(report.fpga_hrp.frequency_mhz < 95.0);
        assert!(report.fpga_rm.occupancy_percent < report.fpga_hrp.occupancy_percent);
    }

    #[test]
    fn report_shape_is_stable_across_library_corners() {
        let nominal = Table1Report::generate(7, &CellLibrary::generic_45nm());
        let slow = Table1Report::generate(7, &CellLibrary::slow_corner_45nm());
        for report in [nominal, slow] {
            assert!(report.area_ratio() > 5.0);
            assert!(report.asic_rm.delay_ns < report.asic_hrp.delay_ns);
        }
    }

    #[test]
    fn display_contains_both_rows() {
        let text = Table1Report::generate(8, &CellLibrary::generic_45nm()).to_string();
        assert!(text.contains("ASIC 45nm"));
        assert!(text.contains("FPGA Stratix"));
        assert!(text.contains("area ratio"));
    }
}
