//! # randmod-hwcost
//!
//! Gate-level area and delay cost models for the two random-placement
//! modules compared in Table 1 of the paper:
//!
//! * the **hRP parametric hash** — a layer of rotate blocks (barrel
//!   shifters) acting on the address bits and the random seed, folded by a
//!   cascade of 2-input XOR gates, plus the extra index bits it forces into
//!   the tag array;
//! * the **RM module** — a Benes network of pass-gate switches on the index
//!   bits plus a single XOR stage that derives the control word from the
//!   upper address bits and the seed.
//!
//! The paper reports ASIC synthesis results (45nm TSMC, Synopsys DC) of
//! 3514.7 µm² / 0.59 ns for hRP against 336.6 µm² / 0.46 ns for RM — a
//! roughly 10× area gap and a 27% delay. Those gaps are consequences of
//! circuit *structure* (number of rotators and XOR gates versus a thin layer
//! of pass gates), so a structural gate count with per-cell area/delay
//! figures representative of a 45nm library reproduces them; exact absolute
//! numbers depend on the standard-cell library and are not the claim being
//! reproduced.  The FPGA half of Table 1 (logic occupancy and maximum
//! frequency) is derived from the same structural counts.
//!
//! ```
//! use randmod_hwcost::{Table1Report, CellLibrary};
//!
//! let report = Table1Report::generate(8, &CellLibrary::generic_45nm());
//! assert!(report.asic_hrp.area_um2 > 5.0 * report.asic_rm.area_um2);
//! assert!(report.asic_rm.delay_ns < report.asic_hrp.delay_ns);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fpga;
pub mod gates;
pub mod hrp;
pub mod report;
pub mod rm;

pub use fpga::{FpgaModel, FpgaReport};
pub use gates::{AreaDelay, CellLibrary};
pub use hrp::HrpModule;
pub use report::Table1Report;
pub use rm::RmModule;
