//! Structural cost model of the hRP parametric hash.
//!
//! Following Figure 2 of the paper, the hash receives every line-address
//! bit above the offset (27 bits for a 32-bit address and 32-byte lines)
//! together with a random seed, passes them through rotate blocks, and
//! folds the rotated values down to the `N`-bit set index with a cascade of
//! 2-input XOR gates.  In addition, because the index of a line can no
//! longer be reconstructed from its tag, the `N` index bits must be stored
//! alongside every tag in the tag array — an area cost charged to the cache,
//! not to the hash module, and reported separately.

use crate::gates::{AreaDelay, CellLibrary};
use std::fmt;

/// Cost model of the hRP hash module for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HrpModule {
    index_bits: u32,
    hashed_address_bits: u32,
    seed_bits: u32,
}

impl HrpModule {
    /// Creates the model for a cache with `index_bits` set-index bits,
    /// hashing `hashed_address_bits` of the line address (the paper uses all
    /// 27 non-offset bits of a 32-bit address) with a seed of `seed_bits`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(index_bits: u32, hashed_address_bits: u32, seed_bits: u32) -> Self {
        assert!(index_bits > 0, "index width must be non-zero");
        assert!(hashed_address_bits > 0, "hashed address width must be non-zero");
        assert!(seed_bits > 0, "seed width must be non-zero");
        HrpModule {
            index_bits,
            hashed_address_bits,
            seed_bits,
        }
    }

    /// The configuration the paper synthesises: a 128-set (7-index-bit)
    /// instruction cache, 27 hashed address bits, a 64-bit seed register.
    pub fn paper_config(index_bits: u32) -> Self {
        Self::new(index_bits, 27, 64)
    }

    /// Number of rotate blocks: one per hashed address bit group feeding the
    /// XOR cascade (the dense structure of the parametric hash is what makes
    /// it an order of magnitude larger than RM).
    pub fn rotate_blocks(&self) -> u32 {
        self.hashed_address_bits
    }

    /// Number of 2:1 multiplexers: each rotate block is an `N`-bit barrel
    /// shifter with `ceil(log2 N)` stages of `N` multiplexers.
    pub fn mux_count(&self) -> u32 {
        let stages = barrel_stages(self.index_bits);
        self.rotate_blocks() * self.index_bits * stages
    }

    /// Number of 2-input XOR gates in the folding cascade: the rotate-block
    /// outputs and the seed contribution are reduced pairwise to one `N`-bit
    /// index.
    pub fn xor_count(&self) -> u32 {
        // (blocks - 1) XOR-reduction of N-bit vectors, plus one seed-mixing
        // layer of N XORs.
        (self.rotate_blocks() - 1) * self.index_bits + self.index_bits
    }

    /// Flip-flops holding the per-run seed.
    pub fn register_bits(&self) -> u32 {
        self.seed_bits
    }

    /// Extra SRAM bits the cache's tag array must add per line because the
    /// set index cannot be reconstructed from the tag under hRP.
    pub fn extra_tag_bits_per_line(&self) -> u32 {
        self.index_bits
    }

    /// Area and critical-path delay of the hash module.
    pub fn area_delay(&self, library: &CellLibrary) -> AreaDelay {
        let area_cells = self.mux_count() as f64 * library.mux2_area_um2
            + self.xor_count() as f64 * library.xor2_area_um2
            + self.register_bits() as f64 * library.dff_area_um2;
        let area = area_cells * library.routing_overhead;
        // Critical path: through one barrel shifter (its mux stages in
        // series) and the depth of the XOR reduction tree, plus the seed
        // register overhead.
        let xor_depth = ceil_log2(self.rotate_blocks() + 1).max(1);
        let delay = barrel_stages(self.index_bits) as f64 * library.mux2_delay_ns
            + xor_depth as f64 * library.xor2_delay_ns
            + library.dff_overhead_ns;
        AreaDelay::new(area, delay)
    }

    /// Tag-array area overhead for a cache with `lines` lines.
    pub fn tag_overhead_area(&self, lines: u32, library: &CellLibrary) -> f64 {
        lines as f64 * self.extra_tag_bits_per_line() as f64 * library.sram_bit_area_um2
    }
}

impl fmt::Display for HrpModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hRP hash: {} rotate blocks, {} muxes, {} XORs, {} seed bits",
            self.rotate_blocks(),
            self.mux_count(),
            self.xor_count(),
            self.register_bits()
        )
    }
}

/// Number of stages of an `n`-bit barrel shifter.
pub(crate) fn barrel_stages(n: u32) -> u32 {
    ceil_log2(n).max(1)
}

/// Ceiling of log2 for small positive integers.
pub(crate) fn ceil_log2(n: u32) -> u32 {
    assert!(n > 0);
    32 - (n - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(7), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(27), 5);
    }

    #[test]
    fn paper_config_structure() {
        let module = HrpModule::paper_config(7);
        assert_eq!(module.rotate_blocks(), 27);
        assert_eq!(module.extra_tag_bits_per_line(), 7);
        assert_eq!(module.register_bits(), 64);
        assert_eq!(module.mux_count(), 27 * 7 * 3);
        assert_eq!(module.xor_count(), 26 * 7 + 7);
        assert!(module.to_string().contains("27 rotate blocks"));
    }

    #[test]
    fn area_lands_in_the_papers_neighbourhood() {
        // The paper reports 3514.7 µm² for the hRP module; the structural
        // model should land within a factor of two of that.
        let module = HrpModule::paper_config(7);
        let cost = module.area_delay(&CellLibrary::generic_45nm());
        assert!(
            cost.area_um2 > 1_700.0 && cost.area_um2 < 7_000.0,
            "hRP area {} µm² outside the plausible band",
            cost.area_um2
        );
    }

    #[test]
    fn delay_lands_in_the_papers_neighbourhood() {
        // The paper reports 0.59 ns.
        let module = HrpModule::paper_config(7);
        let cost = module.area_delay(&CellLibrary::generic_45nm());
        assert!(
            cost.delay_ns > 0.3 && cost.delay_ns < 1.0,
            "hRP delay {} ns outside the plausible band",
            cost.delay_ns
        );
    }

    #[test]
    fn wider_indices_cost_more() {
        let lib = CellLibrary::generic_45nm();
        let narrow = HrpModule::paper_config(7).area_delay(&lib);
        let wide = HrpModule::paper_config(10).area_delay(&lib);
        assert!(wide.area_um2 > narrow.area_um2);
        assert!(wide.delay_ns >= narrow.delay_ns);
    }

    #[test]
    fn tag_overhead_scales_with_lines() {
        let module = HrpModule::paper_config(7);
        let lib = CellLibrary::generic_45nm();
        let small = module.tag_overhead_area(512, &lib);
        let large = module.tag_overhead_area(4096, &lib);
        assert!((large / small - 8.0).abs() < 1e-9);
        assert!(small > 0.0);
    }

    #[test]
    #[should_panic(expected = "index width")]
    fn zero_index_bits_panics() {
        HrpModule::new(0, 27, 64);
    }
}
