//! Dedicated coverage for the `Placement::Custom` extension point: a
//! policy implemented *outside* the built-in enum (installed through the
//! boxed `PlacementPolicy` trait and `PlacementKind::build()`) must
//! round-trip through the adapter and drive a cache to exactly the same
//! campaign-style results as its statically dispatched built-in
//! equivalent.

use randmod_core::cache::{AccessFlags, AccessKind, SetAssocCache, SetAssocCacheLanes, WritePolicy};
use randmod_core::placement::PlacementPolicy;
use randmod_core::prng::SplitMix64;
use randmod_core::{
    Address, CacheGeometry, CacheStats, LineAddr, Placement, PlacementKind, RandomModuloPlacement,
    ReplacementKind,
};
use std::fmt;

/// An externally implemented policy: wraps the RM mathematics behind a
/// type this crate has never seen, so every call goes through the
/// `Placement::Custom` virtual-dispatch path (no enum variant, no memo).
struct ThirdPartyRm {
    inner: RandomModuloPlacement,
}

impl ThirdPartyRm {
    fn boxed(geometry: CacheGeometry) -> Box<dyn PlacementPolicy> {
        Box::new(ThirdPartyRm {
            inner: RandomModuloPlacement::new(geometry),
        })
    }
}

impl fmt::Debug for ThirdPartyRm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThirdPartyRm").finish()
    }
}

impl PlacementPolicy for ThirdPartyRm {
    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn set_index_of_line(&self, line: LineAddr) -> u32 {
        self.inner.set_index_of_line(line)
    }

    fn reseed(&mut self, seed: u64) {
        self.inner.reseed(seed);
    }

    fn seed(&self) -> u64 {
        self.inner.seed()
    }

    fn kind(&self) -> PlacementKind {
        PlacementKind::RandomModulo
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(ThirdPartyRm {
            inner: self.inner.clone(),
        })
    }
}

/// A campaign-style workload at the cache level: many runs, each with a
/// fresh seed, cold contents and per-run statistics — the unit the
/// measurement protocol is built from.
fn run_campaign(cache: &mut SetAssocCache, runs: usize) -> Vec<CacheStats> {
    let mut results = Vec::with_capacity(runs);
    let mut addresses = SplitMix64::new(0xCAFE);
    for run in 0..runs as u64 {
        cache.reseed(run * 0x9E37_79B9 + 1);
        cache.reset_stats();
        // A mixed read/write sweep stressing fills and evictions.
        for i in 0..4_000u64 {
            let addr = Address::new((addresses.next_u64() & 0x3_FFFF) | ((i & 0x1F) * 32));
            let kind = if i % 7 == 0 { AccessKind::Store } else { AccessKind::Load };
            cache.access(addr, kind);
        }
        // Reset the address stream per run, as a replayed trace would.
        addresses = SplitMix64::new(0xCAFE ^ run.wrapping_add(1));
        results.push(cache.stats());
    }
    results
}

#[test]
fn custom_policy_round_trips_through_build_and_the_adapter() {
    let geometry = CacheGeometry::leon3_l1();
    // `build()` → boxed trait object → `Placement::Custom` adapter.
    let boxed = PlacementKind::RandomModulo.build(geometry).unwrap();
    let mut adapted = Placement::from(boxed);
    assert!(matches!(adapted, Placement::Custom(_)));
    assert_eq!(adapted.kind(), PlacementKind::RandomModulo);
    assert_eq!(adapted.geometry(), geometry);
    assert!(adapted.is_randomized());
    assert!(!adapted.stores_index_in_tag());
    adapted.reseed(1234);
    assert_eq!(adapted.seed(), 1234);
    // The adapter's mapping is the built-in mapping, through both the
    // shared and the `&mut` (memoizable) entry points.
    let mut builtin = Placement::new(PlacementKind::RandomModulo, geometry).unwrap();
    builtin.reseed(1234);
    for i in 0..512u64 {
        let line = LineAddr::new(0x4_0000 + i * 3);
        assert_eq!(adapted.set_index_of_line(line), builtin.set_index_of_line(line));
        assert_eq!(adapted.set_index_of_line_mut(line), builtin.set_index_of_line_mut(line));
    }
}

#[test]
fn custom_policy_campaign_matches_its_builtin_equivalent() {
    // The same campaign driven by (a) a cache whose placement went in as
    // an external boxed policy and (b) a cache built from the built-in
    // kind must produce identical per-run statistics: hit/miss behaviour,
    // fills, evictions and write-backs all depend on the placement only
    // through its mapping, which the Custom path must preserve exactly.
    let geometry = CacheGeometry::new(64, 4, 32).unwrap();
    for (replacement, write_policy) in [
        (ReplacementKind::Lru, WritePolicy::WriteThrough),
        (ReplacementKind::Random, WritePolicy::WriteBack),
    ] {
        let mut custom = SetAssocCache::new(
            geometry,
            ThirdPartyRm::boxed(geometry),
            replacement,
            write_policy,
        );
        let mut builtin =
            SetAssocCache::with_kinds(geometry, PlacementKind::RandomModulo, replacement, write_policy)
                .unwrap();
        let runs = 12;
        assert_eq!(
            run_campaign(&mut custom, runs),
            run_campaign(&mut builtin, runs),
            "custom-placement campaign diverged under {replacement}/{write_policy:?}"
        );
    }
}

#[test]
fn custom_policy_lane_bank_routes_through_the_scalar_path_unchanged() {
    // Guard for the wave engine's boxed-dyn fallback: a lane bank built
    // from external `Placement::Custom` policies must report the custom
    // routing (`uses_custom_placement`) and stay bit-identical to K
    // independent scalar caches driven by the same boxed policy — flags
    // per lane per wave, sparse single-lane accesses included.  The
    // vectorized probe, the residency filter and the batched PRNG draws
    // must not change observable behaviour just because placement
    // dispatches through the scalar trait object.
    let geometry = CacheGeometry::new(64, 4, 32).unwrap();
    for (replacement, write_policy) in [
        (ReplacementKind::Random, WritePolicy::WriteThrough),
        (ReplacementKind::Random, WritePolicy::WriteBack),
        (ReplacementKind::Lru, WritePolicy::WriteThrough),
    ] {
        let lanes = 5;
        let placements: Vec<Placement> = (0..lanes)
            .map(|_| Placement::from(ThirdPartyRm::boxed(geometry)))
            .collect();
        let mut bank =
            SetAssocCacheLanes::with_placements(geometry, placements, replacement, write_policy);
        assert!(
            bank.uses_custom_placement(),
            "boxed policies must take the custom per-lane routing"
        );
        let seeds: Vec<u64> = (0..lanes as u64).map(|i| i * 0x9E37_79B9 + 7).collect();
        bank.reseed_wave(&seeds);
        let mut scalars: Vec<SetAssocCache> = seeds
            .iter()
            .map(|&seed| {
                let mut cache = SetAssocCache::new(
                    geometry,
                    ThirdPartyRm::boxed(geometry),
                    replacement,
                    write_policy,
                );
                cache.reseed(seed);
                cache
            })
            .collect();
        let mut sm = SplitMix64::new(0x7A57E);
        let mut flags = vec![AccessFlags::default(); lanes];
        for step in 0..6_000u64 {
            let addr = Address::new(sm.next_u64() & 0x3_FFFF);
            let line = geometry.line_addr(addr);
            let kind = match step % 5 {
                0..=2 => AccessKind::Load,
                3 => AccessKind::Store,
                _ => AccessKind::InstructionFetch,
            };
            if step % 11 == 4 {
                let lane = (step % lanes as u64) as usize;
                assert_eq!(
                    bank.access_lean_lane(lane, line, kind),
                    scalars[lane].access_lean_line(line, kind),
                    "custom sparse lane {lane} diverged at step {step} under {replacement}/{write_policy:?}"
                );
            } else {
                bank.access_lean_lanes(line, kind, &mut flags);
                for (lane, scalar) in scalars.iter_mut().enumerate() {
                    assert_eq!(
                        flags[lane],
                        scalar.access_lean_line(line, kind),
                        "custom lane {lane} diverged at step {step} under {replacement}/{write_policy:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn custom_policy_cache_clones_preserve_state() {
    let geometry = CacheGeometry::new(32, 2, 32).unwrap();
    let mut cache = SetAssocCache::new(
        geometry,
        ThirdPartyRm::boxed(geometry),
        ReplacementKind::Lru,
        WritePolicy::WriteThrough,
    );
    cache.reseed(9);
    for i in 0..64u64 {
        cache.access(Address::new(i * 32), AccessKind::Load);
    }
    let clone = cache.clone();
    // The clone sees the same contents under the same layout.
    for i in 0..64u64 {
        let addr = Address::new(i * 32);
        assert_eq!(cache.contains(addr), clone.contains(addr), "line {i}");
    }
    assert_eq!(cache.stats(), clone.stats());
}
