//! A set-associative cache model with pluggable placement and replacement.
//!
//! The model is *functional*: it tracks which lines are resident and reports
//! hits, misses, evictions and write-backs.  Timing (hit/miss latencies,
//! multi-level hierarchies) is layered on top by `randmod-sim`.
//!
//! Two aspects mirror the paper's hardware discussion:
//!
//! * **Seed changes flush the cache.**  Every new seed selects a new cache
//!   layout, so resident contents become unreachable; [`SetAssocCache::reseed`]
//!   therefore invalidates everything, like the real design.
//! * **Index storage in the tag array.**  With hRP the set a line sits in is
//!   not recoverable from its tag, so the index bits must be stored with the
//!   tag (extra area, modelled in `randmod-hwcost`).  The functional model
//!   stores the full line address for all policies so hit/miss behaviour is
//!   exact regardless of policy.

use crate::address::{Address, CacheGeometry, LineAddr};
use crate::error::ConfigError;
use crate::placement::{Placement, PlacementKind, PlacementLanes, PlacementPolicy};
use crate::prng::{CombinedLfsr, CombinedLfsrLanes};
use crate::replacement::{ReplacementKind, ReplacementState};
use std::fmt;

/// What kind of memory access is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (goes to the instruction cache).
    InstructionFetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl AccessKind {
    /// Whether this access writes data.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

/// Write policy of the cache.
///
/// The paper notes that safety-critical first-level caches are typically
/// write-through (no dirty lines, no index bits needed in the tag array for
/// RM), while write-back caches additionally need the index to rebuild the
/// victim address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Stores update memory immediately; store misses do not allocate.
    WriteThrough,
    /// Stores dirty the line; dirty victims are written back on eviction.
    WriteBack,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The line address that was evicted.
    pub line: LineAddr,
    /// Whether the line was dirty (requires a write-back on a write-back
    /// cache).
    pub dirty: bool,
}

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit {
        /// The way it was found in.
        way: u32,
    },
    /// The line was not resident.
    Miss {
        /// Whether the line was brought into the cache (write-through
        /// store misses do not allocate).
        allocated: bool,
        /// The line that was displaced, if any.
        evicted: Option<EvictedLine>,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    pub const fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit { .. })
    }

    /// Whether the access missed.
    pub const fn is_miss(&self) -> bool {
        !self.is_hit()
    }

    /// Whether the access caused a dirty eviction (a write-back).
    pub fn caused_writeback(&self) -> bool {
        matches!(
            self,
            AccessOutcome::Miss {
                evicted: Some(EvictedLine { dirty: true, .. }),
                ..
            }
        )
    }
}

/// Hit/miss statistics accumulated by a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Misses that allocated a line.
    pub fills: u64,
    /// Evictions of valid lines.
    pub evictions: u64,
    /// Dirty evictions (write-backs).
    pub writebacks: u64,
    /// Store accesses.
    pub stores: u64,
    /// Whole-cache flushes (seed changes).
    pub flushes: u64,
}

impl CacheStats {
    /// Element-wise sum of two statistics blocks.
    ///
    /// Contention campaigns track a *per-task* view of each shared cache
    /// level; merging the per-task blocks reconstructs the level's
    /// aggregate traffic.
    #[must_use]
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses + other.accesses,
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            fills: self.fills + other.fills,
            evictions: self.evictions + other.evictions,
            writebacks: self.writebacks + other.writebacks,
            stores: self.stores + other.stores,
            flushes: self.flushes + other.flushes,
        }
    }

    /// Miss ratio (0 when there were no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio (0 when there were no accesses).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses ({:.2}% miss ratio)",
            self.accesses,
            self.hits,
            self.misses,
            self.miss_ratio() * 100.0
        )
    }
}

/// Compact outcome of a [`SetAssocCache::access_lean`] call: the same
/// information as [`AccessOutcome`] minus the evicted line address, packed
/// into one byte so batched replay lanes can accumulate statistics with
/// branch-free adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessFlags(u8);

impl AccessFlags {
    const HIT: u8 = 1 << 0;
    const FILLED: u8 = 1 << 1;
    const EVICTED: u8 = 1 << 2;
    const WRITEBACK: u8 = 1 << 3;

    /// Whether the access hit.
    #[inline]
    pub const fn is_hit(self) -> bool {
        self.0 & Self::HIT != 0
    }

    /// Whether the access missed.
    #[inline]
    pub const fn is_miss(self) -> bool {
        !self.is_hit()
    }

    /// Whether the miss allocated a line.
    #[inline]
    pub const fn filled(self) -> bool {
        self.0 & Self::FILLED != 0
    }

    /// Whether the fill displaced a valid line.
    #[inline]
    pub const fn evicted(self) -> bool {
        self.0 & Self::EVICTED != 0
    }

    /// Whether the displaced line was dirty (a write-back).
    #[inline]
    pub const fn wrote_back(self) -> bool {
        self.0 & Self::WRITEBACK != 0
    }
}

/// Sentinel stored in the flat tag array for an invalid way.  Line
/// addresses are byte addresses shifted right by the offset bits, and the
/// trace pipeline caps addresses at 2⁶² − 1, so the all-ones value can
/// never be a real line.
const INVALID_TAG: u64 = u64::MAX;

/// Raw outcome of the shared access path: flags plus the way used and the
/// displaced line (when any).
struct RawAccess {
    flags: AccessFlags,
    way: u32,
    evicted: Option<EvictedLine>,
}

#[inline]
fn bit_get(words: &[u64], index: usize) -> bool {
    (words[index >> 6] >> (index & 63)) & 1 == 1
}

#[inline]
fn bit_set(words: &mut [u64], index: usize) {
    words[index >> 6] |= 1 << (index & 63);
}

#[inline]
fn bit_clear(words: &mut [u64], index: usize) {
    words[index >> 6] &= !(1 << (index & 63));
}

/// A set-associative cache with pluggable placement and replacement.
///
/// ```
/// use randmod_core::{CacheGeometry, Address, PlacementKind, ReplacementKind};
/// use randmod_core::cache::{SetAssocCache, AccessKind, WritePolicy};
///
/// # fn main() -> Result<(), randmod_core::ConfigError> {
/// let mut cache = SetAssocCache::with_kinds(
///     CacheGeometry::leon3_l1(),
///     PlacementKind::RandomModulo,
///     ReplacementKind::Random,
///     WritePolicy::WriteThrough,
/// )?;
/// cache.reseed(7);
/// assert!(cache.access(Address::new(0x100), AccessKind::Load).is_miss());
/// assert!(cache.access(Address::new(0x100), AccessKind::Load).is_hit());
/// assert_eq!(cache.stats().misses, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    placement: Placement,
    write_policy: WritePolicy,
    /// Associativity, cached as `usize` for the indexing hot path.
    ways: usize,
    /// Flat tag array: `tags[set * ways + way]` holds the resident line
    /// address, or [`INVALID_TAG`] for an empty way.  One L1's worth fits
    /// in a few KiB of contiguous memory.
    tags: Vec<u64>,
    /// Packed valid bits, one per line (mirrors `tags != INVALID_TAG`;
    /// kept for cheap occupancy queries).
    valid: Vec<u64>,
    /// Packed dirty bits, one per line.
    dirty: Vec<u64>,
    /// Flat replacement state for every set.
    replacement: ReplacementState,
    rng: CombinedLfsr,
    stats: CacheStats,
    /// Most-recently-read line, the one-compare fast path for the common
    /// same-line run of instruction fetches and sequential loads.  Pinned
    /// to [`INVALID_TAG`] (never matches) unless replacement is Random:
    /// under random replacement a read hit changes no cache state (`touch`
    /// is a no-op and reads never dirty a line), so short-circuiting the
    /// repeat hit is state- and outcome-identical.  LRU and round-robin
    /// must re-rank on every hit and always take the full path.
    mru_line: u64,
    /// Flat tag index of the MRU line (validated against `tags` on use, so
    /// an eviction of the MRU line simply falls back to the full probe).
    mru_index: usize,
    /// Way of the MRU line within its set.
    mru_way: u32,
    /// Whether the MRU fast path may be armed (replacement is Random).
    mru_enabled: bool,
}

impl SetAssocCache {
    /// Creates a cache from an already-built boxed placement policy (the
    /// extension point for policies implemented outside this crate; the
    /// built-in policies go through [`Self::with_kinds`] or
    /// [`Self::with_placement`] and are statically dispatched).
    ///
    /// # Panics
    ///
    /// Panics if the placement policy was built for a different geometry.
    pub fn new(
        geometry: CacheGeometry,
        placement: Box<dyn PlacementPolicy>,
        replacement: ReplacementKind,
        write_policy: WritePolicy,
    ) -> Self {
        Self::with_placement(geometry, Placement::from(placement), replacement, write_policy)
    }

    /// Creates a cache from a statically dispatched [`Placement`].
    ///
    /// # Panics
    ///
    /// Panics if the placement policy was built for a different geometry.
    pub fn with_placement(
        geometry: CacheGeometry,
        placement: Placement,
        replacement: ReplacementKind,
        write_policy: WritePolicy,
    ) -> Self {
        assert_eq!(
            placement.geometry(),
            geometry,
            "placement policy geometry does not match the cache geometry"
        );
        let lines = geometry.sets() as usize * geometry.ways() as usize;
        let words = lines.div_ceil(64);
        SetAssocCache {
            geometry,
            placement,
            write_policy,
            ways: geometry.ways() as usize,
            tags: vec![INVALID_TAG; lines],
            valid: vec![0; words],
            dirty: vec![0; words],
            replacement: ReplacementState::new(replacement, geometry.sets(), geometry.ways()),
            rng: CombinedLfsr::new(0),
            stats: CacheStats::default(),
            mru_line: INVALID_TAG,
            mru_index: 0,
            mru_way: 0,
            mru_enabled: replacement == ReplacementKind::Random,
        }
    }

    /// Creates a cache from policy identifiers.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the placement policy cannot be built for
    /// this geometry.
    pub fn with_kinds(
        geometry: CacheGeometry,
        placement: PlacementKind,
        replacement: ReplacementKind,
        write_policy: WritePolicy,
    ) -> Result<Self, ConfigError> {
        Ok(Self::with_placement(
            geometry,
            Placement::new(placement, geometry)?,
            replacement,
            write_policy,
        ))
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The placement policy in use.
    pub fn placement(&self) -> &dyn PlacementPolicy {
        self.placement.as_dyn()
    }

    /// The write policy in use.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the statistics (the contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Installs a new placement seed and flushes the contents, as the
    /// hardware does on a seed change.
    pub fn reseed(&mut self, seed: u64) {
        self.placement.reseed(seed);
        self.rng = CombinedLfsr::new(seed ^ 0x5EED_5EED_5EED_5EED);
        self.flush();
    }

    /// Invalidates every line (dirty contents are discarded; the caller is
    /// responsible for modelling any write-back traffic if needed).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.valid.fill(0);
        self.dirty.fill(0);
        self.replacement.reset();
        self.mru_line = INVALID_TAG;
        self.stats.flushes += 1;
    }

    /// Checks whether the line holding `addr` is resident, without updating
    /// any state or statistics.
    pub fn contains(&self, addr: Address) -> bool {
        let line = self.geometry.line_addr(addr);
        let base = self.placement.set_index_of_line(line) as usize * self.ways;
        self.tags[base..base + self.ways].contains(&line.raw())
    }

    /// Number of valid lines currently resident in set `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= sets`.
    pub fn set_occupancy(&self, index: u32) -> u32 {
        assert!(index < self.geometry.sets(), "set index out of range");
        let base = index as usize * self.ways;
        (base..base + self.ways)
            .filter(|&i| bit_get(&self.valid, i))
            .count() as u32
    }

    /// The shared access path: probes the set in a single pass (recording
    /// the first invalid way while looking for a hit), fills on an
    /// allocating miss, and reports what happened — without touching the
    /// statistics.
    #[inline]
    fn access_raw(&mut self, line: LineAddr, is_write: bool) -> RawAccess {
        debug_assert_ne!(
            line.raw(),
            INVALID_TAG,
            "line address collides with the invalid-tag sentinel"
        );
        let raw = line.raw();

        // Fast path: a repeat read of the most-recently-read line.  Armed
        // only under Random replacement, where a read hit mutates no state;
        // the tag re-check makes an interleaved eviction fall back to the
        // full probe.
        if raw == self.mru_line && self.tags[self.mru_index] == raw && !is_write {
            return RawAccess {
                flags: AccessFlags(AccessFlags::HIT),
                way: self.mru_way,
                evicted: None,
            };
        }

        let set = self.placement.set_index_of_line_mut(line);
        let base = set as usize * self.ways;

        // One pass over the ways: probe for a hit and remember the first
        // invalid way for a potential fill.  Invalid ways hold the sentinel,
        // which never equals a real line address, so hit detection needs no
        // separate valid check.
        let mut invalid_way = usize::MAX;
        let mut hit_way = usize::MAX;
        for (way, &tag) in self.tags[base..base + self.ways].iter().enumerate() {
            if tag == raw {
                hit_way = way;
                break;
            }
            if tag == INVALID_TAG && invalid_way == usize::MAX {
                invalid_way = way;
            }
        }

        if hit_way != usize::MAX {
            self.replacement.touch(set, hit_way as u32);
            if is_write && self.write_policy == WritePolicy::WriteBack {
                bit_set(&mut self.dirty, base + hit_way);
            }
            if self.mru_enabled && !is_write {
                self.mru_line = raw;
                self.mru_index = base + hit_way;
                self.mru_way = hit_way as u32;
            }
            return RawAccess {
                flags: AccessFlags(AccessFlags::HIT),
                way: hit_way as u32,
                evicted: None,
            };
        }

        // Write-through caches do not allocate on store misses: the store
        // goes straight to the next level.
        if is_write && self.write_policy == WritePolicy::WriteThrough {
            return RawAccess {
                flags: AccessFlags(0),
                way: 0,
                evicted: None,
            };
        }

        // Prefer the invalid way found during the probe; otherwise ask the
        // replacement policy for a victim.
        let way = if invalid_way != usize::MAX {
            invalid_way
        } else {
            self.replacement.victim(set, &mut self.rng) as usize
        };
        let index = base + way;
        let old_tag = self.tags[index];
        let mut flags = AccessFlags::FILLED;
        let evicted = if old_tag != INVALID_TAG {
            let was_dirty = bit_get(&self.dirty, index);
            flags |= AccessFlags::EVICTED | if was_dirty { AccessFlags::WRITEBACK } else { 0 };
            Some(EvictedLine {
                line: LineAddr::new(old_tag),
                dirty: was_dirty,
            })
        } else {
            None
        };
        self.tags[index] = raw;
        bit_set(&mut self.valid, index);
        if is_write && self.write_policy == WritePolicy::WriteBack {
            bit_set(&mut self.dirty, index);
        } else {
            bit_clear(&mut self.dirty, index);
        }
        self.replacement.touch(set, way as u32);
        if self.mru_enabled && !is_write {
            self.mru_line = raw;
            self.mru_index = index;
            self.mru_way = way as u32;
        }
        RawAccess {
            flags: AccessFlags(flags),
            way: way as u32,
            evicted,
        }
    }

    /// Performs one access and returns its outcome.
    #[inline]
    pub fn access(&mut self, addr: Address, kind: AccessKind) -> AccessOutcome {
        let line = self.geometry.line_addr(addr);
        let is_write = kind.is_write();
        self.stats.accesses += 1;
        self.stats.stores += is_write as u64;
        let raw = self.access_raw(line, is_write);
        let flags = raw.flags;
        if flags.is_hit() {
            self.stats.hits += 1;
            AccessOutcome::Hit { way: raw.way }
        } else {
            self.stats.misses += 1;
            self.stats.fills += flags.filled() as u64;
            self.stats.evictions += flags.evicted() as u64;
            self.stats.writebacks += flags.wrote_back() as u64;
            AccessOutcome::Miss {
                allocated: flags.filled(),
                evicted: raw.evicted,
            }
        }
    }

    /// Performs one access without updating the statistics, returning the
    /// compact [`AccessFlags`] instead of a full [`AccessOutcome`].
    ///
    /// This is the batched-replay hot path: callers (one per replay lane)
    /// accumulate their own counters from the flags and flush them into a
    /// [`CacheStats`] once per run, instead of read-modify-writing the
    /// eight-field statistics block on every event.
    #[inline]
    pub fn access_lean(&mut self, addr: Address, kind: AccessKind) -> AccessFlags {
        self.access_raw(self.geometry.line_addr(addr), kind.is_write())
            .flags
    }

    /// [`Self::access_lean`] with the line address precomputed by the
    /// caller.
    ///
    /// The lane-batched replay engines decode each event once and fan it
    /// out across `K` per-seed hierarchies; hoisting the `addr → line`
    /// reduction out of the per-lane loop pays it once per decoded event
    /// instead of once per lane.  `line` must equal
    /// `self.geometry().line_addr(addr)` of the accessed address — the
    /// placement layout maps lines, so a mismatched line simply accesses a
    /// different one.
    #[inline]
    pub fn access_lean_line(&mut self, line: LineAddr, kind: AccessKind) -> AccessFlags {
        self.access_raw(line, kind.is_write()).flags
    }

    /// Returns the set index the current layout assigns to `addr`.
    pub fn set_index_of(&self, addr: Address) -> u32 {
        self.placement.set_index(addr)
    }

    /// Total number of valid lines in the cache.
    pub fn resident_lines(&self) -> u32 {
        (0..self.geometry.sets()).map(|s| self.set_occupancy(s)).sum()
    }
}

/// `u32::MAX` as a way sentinel in the wavefront probe's select chains
/// ("no hit way found yet" / "no invalid way found yet").
const NO_WAY: u32 = u32::MAX;

/// Slot count of the wave residency filter (direct-mapped on the low line
/// address bits; must be a power of two).  Sized to cover a hot loop's
/// instruction lines plus its resident data working set without slot
/// collisions (the cacheb kernel revisits ~800 distinct lines).
const FILTER_SLOTS: usize = 1024;

/// All-ones bitmask over the low `n` lane bits (`n <= 64`).
fn mask_of(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// K per-seed caches probed as one wavefront.
///
/// The lane-batched replay engine applies each decoded trace op to K
/// independent per-seed cache hierarchies.  `SetAssocCacheLanes` stores
/// those K caches' tags *lane-major* — `tags[(set * ways + way) * K + lane]`
/// — so the K tags a probe must compare for one way sit in one contiguous
/// block, and processes one op across all lanes as fixed-width chunks:
///
/// * **Uniform placement** (Modulo/XOR — the set index is seed-independent):
///   every lane probes the same set, so the probe sweeps `ways` contiguous
///   K-wide rows with a branch-free select chain the compiler
///   autovectorizes (compare a row against the broadcast line address, blend
///   the way number into the per-lane hit/invalid accumulators).
/// * **Per-lane placement** (hRP/RM/custom): [`PlacementLanes::index_lanes`]
///   produces K set indices in one sweep, then the same select chain runs
///   with per-lane strides.
/// * **Replacement draws are batched**: a miss wave collects the lanes that
///   need a victim (full set, Random replacement) and draws all of them
///   with one [`CombinedLfsrLanes::next_below_lanes`] sweep.
///
/// Ways are scanned *highest first* with "last write wins" selects, so the
/// accumulated hit way and invalid way are the **lowest** matching way —
/// exactly what the scalar early-exit probe finds (at most one way can
/// match a line, and the scalar invalid-way choice is the first one seen).
/// Each lane's hit/miss/eviction sequence — and therefore its cycles and
/// statistics — is bit-identical to a scalar [`SetAssocCache`] reseeded
/// with the same value; the batch-equivalence suites pin this.
///
/// The scalar model's MRU read filter survives — and widens — as a
/// *wave residency filter*: a small direct-mapped table of recently read
/// lines and their K per-lane cell indices.  Every lane replays the same
/// line stream, so one table serves the whole wave: a repeat read whose
/// line is still resident in *every* lane short-circuits placement and
/// probe entirely, which is what makes hot-loop instruction fetch and
/// in-cache data reuse nearly free per lane.  Like the scalar MRU filter
/// it is armed only under Random replacement, where a read hit mutates no
/// state, so taking or missing the fast path changes no outcome.  The
/// per-lane valid bits are *authoritative*: every fill that evicts a line
/// also clears the victim's bit in the victim's filter slot, so a set bit
/// proves residency and the fast path needs no tag re-check (fills are
/// rare; filter hits are the steady state).  Idempotent repeat stores
/// short-circuit too — a write-through store hit mutates nothing, and a
/// write-back store hit whose dirty bits are already set mutates nothing.
#[derive(Debug, Clone)]
pub struct SetAssocCacheLanes {
    geometry: CacheGeometry,
    placement: PlacementLanes,
    write_policy: WritePolicy,
    replacement_kind: ReplacementKind,
    ways: usize,
    /// Lane capacity K (the stride of the lane-major layout).
    lanes: usize,
    /// Lanes in use (`reseed_wave` seeds a prefix of the capacity).
    active: usize,
    /// Whether every lane maps a line to the same set (Modulo/XOR).
    uniform: bool,
    /// Lane-major tag array; see the struct docs for the layout.
    tags: Vec<u64>,
    /// Packed dirty bits, one per (line, lane) in the same linear order.
    dirty: Vec<u64>,
    /// Per-lane replacement state (same policy logic as the scalar cache).
    replacement: Vec<ReplacementState>,
    /// Per-lane PRNG bank for victim draws.
    rng: CombinedLfsrLanes,
    /// Per-lane set index of the current wave.
    set_scratch: Vec<u32>,
    /// Per-lane linear index of `(set, way 0, lane)` for the current wave.
    lane_base: Vec<usize>,
    /// Per-lane lowest hitting way ([`NO_WAY`] = miss).
    hit_way: Vec<u32>,
    /// Per-lane lowest invalid way ([`NO_WAY`] = set full).
    inv_way: Vec<u32>,
    /// Lanes whose miss needs a random victim draw this wave.
    draw_lanes: Vec<u32>,
    /// The batched draws for `draw_lanes`.
    draws: Vec<u32>,
    /// Wave residency filter: line address per slot ([`FILTER_SLOTS`]
    /// direct-mapped entries, [`INVALID_TAG`] = empty).  Armed only under
    /// Random replacement, where a read hit mutates no per-lane state.
    filter_tags: Vec<u64>,
    /// Per-slot bitmask of lanes in which the slot's line is resident (bit
    /// `lane` set).  Authoritative: set when a wave or sparse access
    /// leaves the line resident, cleared when a fill evicts it, so the
    /// fast paths trust it without a tag re-check.
    filter_valid: Vec<u64>,
    /// Per-slot, per-lane flat tag index of the filtered line
    /// (`filter_index[slot * K + lane]`; only consulted by the write-back
    /// repeat-store fast path to test dirty bits).  Stored as `u32` to
    /// halve the table's cache footprint.
    filter_index: Vec<u32>,
    /// Whether the residency filter may be armed (replacement is Random,
    /// the lane count fits the per-slot valid bitmask, and every tag index
    /// fits `u32`).
    filter_enabled: bool,
    /// Bitmask of the active lanes (`(1 << active) - 1`), the full-wave
    /// residency requirement.
    active_mask: u64,
}

impl SetAssocCacheLanes {
    /// Creates a K-lane cache bank from policy identifiers.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the placement policy cannot be built for
    /// this geometry.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn with_kinds(
        geometry: CacheGeometry,
        placement: PlacementKind,
        replacement: ReplacementKind,
        write_policy: WritePolicy,
        lanes: usize,
    ) -> Result<Self, ConfigError> {
        Ok(Self::from_lane_placement(
            geometry,
            PlacementLanes::new(placement, geometry, lanes)?,
            replacement,
            write_policy,
        ))
    }

    /// Creates a K-lane cache bank over per-lane scalar placements (the
    /// [`Placement::Custom`] fallback: every lane dispatches through its
    /// boxed policy's scalar path).
    ///
    /// # Panics
    ///
    /// Panics if `placements` is empty, the geometries disagree, or a
    /// policy's geometry differs from `geometry`.
    pub fn with_placements(
        geometry: CacheGeometry,
        placements: Vec<Placement>,
        replacement: ReplacementKind,
        write_policy: WritePolicy,
    ) -> Self {
        Self::from_lane_placement(
            geometry,
            PlacementLanes::from_placements(placements),
            replacement,
            write_policy,
        )
    }

    fn from_lane_placement(
        geometry: CacheGeometry,
        placement: PlacementLanes,
        replacement: ReplacementKind,
        write_policy: WritePolicy,
    ) -> Self {
        assert_eq!(
            placement.geometry(),
            geometry,
            "placement policy geometry does not match the cache geometry"
        );
        let lanes = placement.lane_count();
        let ways = geometry.ways() as usize;
        let cells = geometry.sets() as usize * ways * lanes;
        let uniform = placement.is_uniform();
        SetAssocCacheLanes {
            geometry,
            placement,
            write_policy,
            replacement_kind: replacement,
            ways,
            lanes,
            active: lanes,
            uniform,
            tags: vec![INVALID_TAG; cells],
            dirty: vec![0; cells.div_ceil(64)],
            replacement: (0..lanes)
                .map(|_| ReplacementState::new(replacement, geometry.sets(), geometry.ways()))
                .collect(),
            rng: CombinedLfsrLanes::new(lanes),
            set_scratch: vec![0; lanes],
            lane_base: vec![0; lanes],
            hit_way: vec![NO_WAY; lanes],
            inv_way: vec![NO_WAY; lanes],
            draw_lanes: Vec::with_capacity(lanes),
            draws: vec![0; lanes],
            filter_tags: vec![INVALID_TAG; FILTER_SLOTS],
            filter_valid: vec![0; FILTER_SLOTS],
            filter_index: vec![0; FILTER_SLOTS * lanes],
            filter_enabled: replacement == ReplacementKind::Random
                && lanes <= 64
                && cells <= u32::MAX as usize,
            active_mask: mask_of(lanes.min(64)),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Lane capacity K.
    pub fn lane_count(&self) -> usize {
        self.lanes
    }

    /// Lanes seeded by the last [`Self::reseed_wave`].
    pub fn active_lanes(&self) -> usize {
        self.active
    }

    /// Whether the bank dispatches placement through boxed scalar policies.
    pub fn uses_custom_placement(&self) -> bool {
        self.placement.is_custom()
    }

    /// Reseeds lanes `0..seeds.len()` (one layout per seed) and flushes
    /// every lane's contents, exactly as [`SetAssocCache::reseed`] does per
    /// cache.  Subsequent waves step `seeds.len()` active lanes.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is longer than the lane capacity.
    pub fn reseed_wave(&mut self, seeds: &[u64]) {
        assert!(
            seeds.len() <= self.lanes,
            "{} seeds exceed the {} configured lanes",
            seeds.len(),
            self.lanes
        );
        self.active = seeds.len();
        self.filter_tags.fill(INVALID_TAG);
        self.filter_valid.fill(0);
        self.active_mask = mask_of(self.active.min(64));
        self.tags.fill(INVALID_TAG);
        self.dirty.fill(0);
        for state in &mut self.replacement {
            state.reset();
        }
        for (lane, &seed) in seeds.iter().enumerate() {
            self.placement.reseed_lane(lane, seed);
            self.rng.reseed_lane(lane, seed ^ 0x5EED_5EED_5EED_5EED);
        }
    }

    /// Applies one access to every active lane, writing lane `i`'s
    /// [`AccessFlags`] into `flags[i]`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `flags.len()` differs from the active lane count.
    #[inline]
    pub fn access_lean_lanes(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        flags: &mut [AccessFlags],
    ) {
        debug_assert_eq!(flags.len(), self.active, "one flags slot per active lane");
        debug_assert_ne!(
            line.raw(),
            INVALID_TAG,
            "line address collides with the invalid-tag sentinel"
        );
        let raw = line.raw();
        let is_write = kind.is_write();
        let a = self.active;
        let k = self.lanes;
        let row = self.ways * k;

        // Residency-filter fast path: a repeat access to a recently seen
        // line, still resident in every lane, needs no placement indices
        // and no probe (armed only under Random replacement).  A read hit
        // mutates no state; a write-through store hit mutates none either;
        // a write-back store hit only sets the dirty bit, so it may
        // short-circuit when every lane's dirty bit is *already* set (the
        // common repeat store).  The valid bits are authoritative: every
        // fill that evicts a line clears the victim's bit in its filter
        // slot, so a set bit *proves* residency and no tag re-check is
        // needed.  Every lane replays the same line stream, so one table
        // serves the whole wave.
        let wb = self.write_policy == WritePolicy::WriteBack;
        let slot = (raw as usize) & (FILTER_SLOTS - 1);
        if self.filter_tags[slot] == raw
            && self.filter_valid[slot] & self.active_mask == self.active_mask
        {
            if !(is_write && wb) {
                flags.fill(AccessFlags(AccessFlags::HIT));
                return;
            }
            let indices = &self.filter_index[slot * k..slot * k + a];
            let mut dirty = true;
            for &index in indices {
                dirty &= bit_get(&self.dirty, index as usize);
            }
            if dirty {
                flags.fill(AccessFlags(AccessFlags::HIT));
                return;
            }
        }

        // Placement stage: one index for a uniform wave, K for a scattered
        // one, plus each lane's base cell in the lane-major tag array.
        if self.uniform {
            let set = self.placement.index_uniform(line);
            let base = set as usize * row;
            if self.replacement_kind != ReplacementKind::Random {
                // Only LRU touches and FIFO victim picks read the per-lane
                // set scratch; Random resolution never does.
                self.set_scratch[..a].fill(set);
            }
            for (lane, slot) in self.lane_base[..a].iter_mut().enumerate() {
                *slot = base + lane;
            }
        } else {
            self.placement.index_lanes(line, &mut self.set_scratch[..a]);
            for (lane, slot) in self.lane_base[..a].iter_mut().enumerate() {
                *slot = self.set_scratch[lane] as usize * row + lane;
            }
        }

        // Probe stage: accumulate per-lane hit/invalid *way bitmasks* in a
        // branch-free forward sweep (bit `w` set when way `w` matches),
        // then convert each mask's lowest set bit to a way number — the
        // lowest matching way is exactly what the scalar early-exit probe
        // finds (at most one way can hit a line, and the scalar
        // invalid-way choice is the first one seen).  The uniform sweep
        // reads contiguous K-wide rows the compiler vectorizes; banks
        // wider than 32 ways (none in practice) fall back to select
        // chains.
        let hit_way = &mut self.hit_way[..a];
        let inv_way = &mut self.inv_way[..a];
        if self.ways <= 32 {
            hit_way.fill(0);
            inv_way.fill(0);
            if self.uniform {
                let base = self.lane_base[0];
                for w in 0..self.ways {
                    let tag_row = &self.tags[base + w * k..base + w * k + a];
                    let bit = 1u32 << w;
                    for (lane, &tag) in tag_row.iter().enumerate() {
                        hit_way[lane] |= if tag == raw { bit } else { 0 };
                        inv_way[lane] |= if tag == INVALID_TAG { bit } else { 0 };
                    }
                }
            } else {
                for w in 0..self.ways {
                    let offset = w * k;
                    let bit = 1u32 << w;
                    for lane in 0..a {
                        let tag = self.tags[self.lane_base[lane] + offset];
                        hit_way[lane] |= if tag == raw { bit } else { 0 };
                        inv_way[lane] |= if tag == INVALID_TAG { bit } else { 0 };
                    }
                }
            }
            for lane in 0..a {
                let hit_mask = hit_way[lane];
                hit_way[lane] = if hit_mask == 0 {
                    NO_WAY
                } else {
                    hit_mask.trailing_zeros()
                };
                let inv_mask = inv_way[lane];
                inv_way[lane] = if inv_mask == 0 {
                    NO_WAY
                } else {
                    inv_mask.trailing_zeros()
                };
            }
        } else {
            hit_way.fill(NO_WAY);
            inv_way.fill(NO_WAY);
            for w in (0..self.ways).rev() {
                let offset = w * k;
                let way = w as u32;
                for lane in 0..a {
                    let tag = self.tags[self.lane_base[lane] + offset];
                    hit_way[lane] = if tag == raw { way } else { hit_way[lane] };
                    inv_way[lane] = if tag == INVALID_TAG { way } else { inv_way[lane] };
                }
            }
        }

        // One pass over the converted ways: detect the all-hit wave and
        // collect the lanes whose miss needs a random victim draw (full
        // set, Random replacement, and never a write-through store miss —
        // those allocate nothing and must not advance the lane's PRNG).
        let wt_store = is_write && !wb;
        let collect = self.replacement_kind == ReplacementKind::Random && !wt_store;
        self.draw_lanes.clear();
        let mut all_hit = true;
        for lane in 0..a {
            let hw = hit_way[lane];
            all_hit &= hw != NO_WAY;
            if collect && hw == NO_WAY && inv_way[lane] == NO_WAY {
                self.draw_lanes.push(lane as u32);
            }
        }

        // All-lanes-hit fast path: under Random replacement (the only mode
        // that arms the filter) a read hit mutates nothing, and a
        // write-through store hit mutates nothing either, so those waves
        // resolve to all-HIT without per-lane work.  Write-back store hits
        // still need their dirty bits set and take the resolution loop.
        // This replaces the scalar MRU filter, and extends it to any
        // rediscovered hit, not just the most recent line.
        if all_hit && self.filter_enabled && !(is_write && wb) {
            for (lane, &hw) in hit_way.iter().enumerate() {
                self.filter_index[slot * k + lane] =
                    (self.lane_base[lane] + hw as usize * k) as u32;
            }
            self.filter_tags[slot] = raw;
            self.filter_valid[slot] = self.active_mask;
            flags.fill(AccessFlags(AccessFlags::HIT));
            return;
        }

        // Miss wave: batch the victim draws in one PRNG sweep instead of
        // one call per lane (ascending lane order, matching the scalar
        // engine's per-lane draw stream).
        if !self.draw_lanes.is_empty() {
            self.rng.next_below_lanes(
                self.geometry.ways(),
                &self.draw_lanes,
                &mut self.draws,
            );
        }

        // Hot read-wave resolution (Random replacement with the filter
        // armed): hits mutate nothing but their filter booking, so the
        // first pass books every lane branch-free — predicated flag and
        // filter-index writes plus a branch-free compaction of the lanes
        // that missed — and a second, short loop fills only those lanes.
        // The data-dependent hit/miss branch of the generic loop
        // mispredicts roughly once per mixed wave on a ~50% miss-rate
        // workload; compaction moves that cost to a predictable loop
        // bound.  The set scratch doubles as the miss list: under Random
        // replacement nothing reads it as a set index (LRU touches are
        // skipped and `victim_with` is unreachable).  After a read wave
        // every lane holds the line, so the filter slot is retagged with
        // the full active mask unconditionally.
        if !is_write && self.filter_enabled {
            let mut misses = 0usize;
            for (lane, (&hw, flag)) in hit_way.iter().zip(flags.iter_mut()).enumerate() {
                let hit = hw != NO_WAY;
                *flag = AccessFlags(if hit { AccessFlags::HIT } else { 0 });
                let way = if hit { hw as usize } else { 0 };
                self.filter_index[slot * k + lane] = (self.lane_base[lane] + way * k) as u32;
                self.set_scratch[misses] = lane as u32;
                misses += usize::from(!hit);
            }
            let mut draw_cursor = 0;
            for i in 0..misses {
                let lane = self.set_scratch[i] as usize;
                let way = if inv_way[lane] != NO_WAY {
                    inv_way[lane]
                } else {
                    let draw = self.draws[draw_cursor];
                    draw_cursor += 1;
                    draw
                };
                let index = self.lane_base[lane] + way as usize * k;
                let old_tag = self.tags[index];
                let mut fl = AccessFlags::FILLED;
                if old_tag != INVALID_TAG {
                    fl |= AccessFlags::EVICTED;
                    if wb && bit_get(&self.dirty, index) {
                        fl |= AccessFlags::WRITEBACK;
                    }
                    // Keep the valid bits authoritative: the victim is no
                    // longer resident in this lane.
                    let old_slot = (old_tag as usize) & (FILTER_SLOTS - 1);
                    if self.filter_tags[old_slot] == old_tag {
                        self.filter_valid[old_slot] &= !(1u64 << lane);
                    }
                }
                self.tags[index] = raw;
                if wb {
                    bit_clear(&mut self.dirty, index);
                }
                self.filter_index[slot * k + lane] = index as u32;
                flags[lane] = AccessFlags(fl);
            }
            self.filter_tags[slot] = raw;
            self.filter_valid[slot] = self.active_mask;
            return;
        }

        // Resolution stage: book each lane's outcome.  Every lane the wave
        // leaves resident — read hits and fills, write-back store hits and
        // fills, write-through store hits — arms its residency-filter bit
        // on the way out, so repeat reads *and* idempotent repeat stores
        // can short-circuit; a write-through store miss allocates nothing
        // and arms nothing.  `touch` only mutates LRU state, and the dirty
        // bitmap only matters under write-back, so both are skipped
        // wholesale when the policy makes them no-ops.
        let wb_write = is_write && wb;
        let do_touch = self.replacement_kind == ReplacementKind::Lru;
        let arm = self.filter_enabled;
        let mut armed_bits = 0u64;
        let mut draw_cursor = 0;
        for lane in 0..a {
            let set = self.set_scratch[lane];
            let base = self.lane_base[lane];
            let hw = hit_way[lane];
            flags[lane] = if hw != NO_WAY {
                if do_touch {
                    self.replacement[lane].touch(set, hw);
                }
                if wb_write {
                    bit_set(&mut self.dirty, base + hw as usize * k);
                }
                if arm {
                    self.filter_index[slot * k + lane] = (base + hw as usize * k) as u32;
                    armed_bits |= 1u64 << lane;
                }
                AccessFlags(AccessFlags::HIT)
            } else if wt_store {
                // Write-through store miss: goes straight to the next
                // level, no allocation.
                AccessFlags(0)
            } else {
                let way = if inv_way[lane] != NO_WAY {
                    inv_way[lane]
                } else if self.replacement_kind == ReplacementKind::Random {
                    let draw = self.draws[draw_cursor];
                    draw_cursor += 1;
                    draw
                } else {
                    self.replacement[lane]
                        .victim_with(set, |_| unreachable!("non-random replacement never draws"))
                };
                let index = base + way as usize * k;
                let old_tag = self.tags[index];
                let mut fl = AccessFlags::FILLED;
                if old_tag != INVALID_TAG {
                    fl |= AccessFlags::EVICTED;
                    if wb && bit_get(&self.dirty, index) {
                        fl |= AccessFlags::WRITEBACK;
                    }
                    if arm {
                        // Keep the valid bits authoritative: the victim is
                        // no longer resident in this lane.
                        let old_slot = (old_tag as usize) & (FILTER_SLOTS - 1);
                        if self.filter_tags[old_slot] == old_tag {
                            self.filter_valid[old_slot] &= !(1u64 << lane);
                        }
                    }
                }
                self.tags[index] = raw;
                if wb_write {
                    bit_set(&mut self.dirty, index);
                } else if wb {
                    bit_clear(&mut self.dirty, index);
                }
                if do_touch {
                    self.replacement[lane].touch(set, way);
                }
                if arm {
                    self.filter_index[slot * k + lane] = index as u32;
                    armed_bits |= 1u64 << lane;
                }
                AccessFlags(fl)
            };
        }
        if armed_bits != 0 {
            if self.filter_tags[slot] == raw {
                self.filter_valid[slot] |= armed_bits;
            } else {
                self.filter_tags[slot] = raw;
                self.filter_valid[slot] = armed_bits;
            }
        }
    }

    /// Applies one access to a single lane (the sparse path: an L2 read
    /// wave only probes the lanes whose L1 missed).  Bit-identical to that
    /// lane's scalar [`SetAssocCache::access_lean_line`].
    #[inline]
    pub fn access_lean_lane(&mut self, lane: usize, line: LineAddr, kind: AccessKind) -> AccessFlags {
        debug_assert!(lane < self.active, "lane {lane} not active");
        debug_assert_ne!(
            line.raw(),
            INVALID_TAG,
            "line address collides with the invalid-tag sentinel"
        );
        let raw = line.raw();
        let is_write = kind.is_write();
        let k = self.lanes;
        // Residency-filter fast path, per lane: the slot's valid bitmask
        // lets a single lane trust (and arm) its own index without
        // touching the other lanes' entries.  Reads only, Random
        // replacement only — the same no-mutation argument as the wave
        // fast path.
        let slot = (raw as usize) & (FILTER_SLOTS - 1);
        let lane_bit = 1u64 << (lane & 63);
        if !is_write && self.filter_tags[slot] == raw && self.filter_valid[slot] & lane_bit != 0 {
            return AccessFlags(AccessFlags::HIT);
        }

        let set = self.placement.index_lane(lane, line);
        let base = set as usize * self.ways * k + lane;

        // Scalar-style probe over this lane's strided cells.
        let mut invalid_way = NO_WAY;
        let mut hit_way = NO_WAY;
        for w in 0..self.ways {
            let tag = self.tags[base + w * k];
            if tag == raw {
                hit_way = w as u32;
                break;
            }
            if tag == INVALID_TAG && invalid_way == NO_WAY {
                invalid_way = w as u32;
            }
        }

        let wb = self.write_policy == WritePolicy::WriteBack;
        let do_touch = self.replacement_kind == ReplacementKind::Lru;
        if hit_way != NO_WAY {
            if do_touch {
                self.replacement[lane].touch(set, hit_way);
            }
            if is_write && wb {
                bit_set(&mut self.dirty, base + hit_way as usize * k);
            } else if self.filter_enabled && !is_write {
                self.arm_filter_lane(slot, lane, lane_bit, raw, base + hit_way as usize * k);
            }
            return AccessFlags(AccessFlags::HIT);
        }
        if is_write && !wb {
            return AccessFlags(0);
        }
        let way = if invalid_way != NO_WAY {
            invalid_way
        } else {
            let rng = &mut self.rng;
            self.replacement[lane].victim_with(set, |ways| rng.next_below_lane(lane, ways))
        };
        let index = base + way as usize * k;
        let old_tag = self.tags[index];
        let mut fl = AccessFlags::FILLED;
        if old_tag != INVALID_TAG {
            fl |= AccessFlags::EVICTED;
            if wb && bit_get(&self.dirty, index) {
                fl |= AccessFlags::WRITEBACK;
            }
            if self.filter_enabled {
                // Keep the valid bits authoritative: the victim is no
                // longer resident in this lane.
                let old_slot = (old_tag as usize) & (FILTER_SLOTS - 1);
                if self.filter_tags[old_slot] == old_tag {
                    self.filter_valid[old_slot] &= !lane_bit;
                }
            }
        }
        self.tags[index] = raw;
        if is_write && wb {
            bit_set(&mut self.dirty, index);
        } else if wb {
            bit_clear(&mut self.dirty, index);
        }
        if do_touch {
            self.replacement[lane].touch(set, way);
        }
        if self.filter_enabled && !is_write {
            self.arm_filter_lane(slot, lane, lane_bit, raw, index);
        }
        AccessFlags(fl)
    }

    /// Arms one lane's residency-filter entry for `raw` at `slot` after a
    /// sparse read left the line resident at flat tag index `index`.  A
    /// slot holding a different line is retagged and its other lanes'
    /// valid bits dropped (they described the old line's residency).
    #[inline]
    fn arm_filter_lane(&mut self, slot: usize, lane: usize, lane_bit: u64, raw: u64, index: usize) {
        if self.filter_tags[slot] == raw {
            self.filter_valid[slot] |= lane_bit;
        } else {
            self.filter_tags[slot] = raw;
            self.filter_valid[slot] = lane_bit;
        }
        self.filter_index[slot * self.lanes + lane] = index as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(placement: PlacementKind, write_policy: WritePolicy) -> SetAssocCache {
        // 8 sets x 2 ways x 32B lines = 512B: small enough to force
        // evictions quickly in tests.
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        SetAssocCache::with_kinds(geometry, placement, ReplacementKind::Lru, write_policy).unwrap()
    }

    #[test]
    fn miss_then_hit() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        let addr = Address::new(0x40);
        assert!(cache.access(addr, AccessKind::Load).is_miss());
        assert!(cache.access(addr, AccessKind::Load).is_hit());
        assert_eq!(cache.stats().accesses, 2);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        assert!(cache.access(Address::new(0x100), AccessKind::Load).is_miss());
        assert!(cache.access(Address::new(0x11F), AccessKind::Load).is_hit());
    }

    #[test]
    fn capacity_eviction_with_lru() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        // Three lines that all map to set 0 (stride = 8 sets * 32B = 256B).
        let a = Address::new(0);
        let b = Address::new(256);
        let c = Address::new(512);
        cache.access(a, AccessKind::Load);
        cache.access(b, AccessKind::Load);
        let outcome = cache.access(c, AccessKind::Load);
        assert!(outcome.is_miss());
        assert!(matches!(outcome, AccessOutcome::Miss { evicted: Some(_), .. }));
        // `a` was the LRU line, so it must be gone while `b` survived.
        assert!(!cache.contains(a));
        assert!(cache.contains(b));
        assert!(cache.contains(c));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn write_through_store_miss_does_not_allocate() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        let addr = Address::new(0x80);
        let outcome = cache.access(addr, AccessKind::Store);
        assert_eq!(
            outcome,
            AccessOutcome::Miss {
                allocated: false,
                evicted: None
            }
        );
        assert!(!cache.contains(addr));
        assert_eq!(cache.stats().fills, 0);
    }

    #[test]
    fn write_back_store_miss_allocates_and_dirties() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteBack);
        let a = Address::new(0);
        let b = Address::new(256);
        let c = Address::new(512);
        cache.access(a, AccessKind::Store);
        cache.access(b, AccessKind::Load);
        // Evicting the dirty line must produce a write-back.
        let outcome = cache.access(c, AccessKind::Load);
        assert!(outcome.caused_writeback());
        assert_eq!(cache.stats().writebacks, 1);
    }

    #[test]
    fn write_through_never_writes_back() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        for i in 0..64u64 {
            cache.access(Address::new(i * 32), AccessKind::Store);
            cache.access(Address::new(i * 32), AccessKind::Load);
        }
        assert_eq!(cache.stats().writebacks, 0);
    }

    #[test]
    fn reseed_flushes_contents() {
        let mut cache = small_cache(PlacementKind::RandomModulo, WritePolicy::WriteThrough);
        let addr = Address::new(0x40);
        cache.access(addr, AccessKind::Load);
        assert!(cache.contains(addr));
        cache.reseed(99);
        assert!(!cache.contains(addr));
        assert!(cache.access(addr, AccessKind::Load).is_miss());
        assert!(cache.stats().flushes >= 1);
    }

    #[test]
    fn flush_resets_occupancy() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        for i in 0..16u64 {
            cache.access(Address::new(i * 32), AccessKind::Load);
        }
        assert_eq!(cache.resident_lines(), 16);
        cache.flush();
        assert_eq!(cache.resident_lines(), 0);
    }

    /// A cache with the MRU read filter armed on `addr`: Random
    /// replacement (the only mode where the filter may arm) plus two reads
    /// of the same line (fill, then the arming hit).
    fn cache_with_armed_mru(placement: PlacementKind, addr: Address) -> SetAssocCache {
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        let mut cache = SetAssocCache::with_kinds(
            geometry,
            placement,
            ReplacementKind::Random,
            WritePolicy::WriteThrough,
        )
        .unwrap();
        cache.reseed(1);
        assert!(cache.access(addr, AccessKind::Load).is_miss());
        assert!(cache.access(addr, AccessKind::Load).is_hit());
        cache
    }

    #[test]
    fn flush_disarms_the_mru_read_filter() {
        // A stale MRU entry surviving the flush would answer the next read
        // of the same line with a phantom hit on an invalidated cache — a
        // silent wrong result.  The post-flush read must be a genuine miss
        // that refills the line.
        let addr = Address::new(0x40);
        let mut cache = cache_with_armed_mru(PlacementKind::RandomModulo, addr);
        cache.flush();
        let outcome = cache.access(addr, AccessKind::Load);
        assert!(outcome.is_miss(), "phantom MRU hit after flush");
        assert!(cache.contains(addr), "the post-flush miss must refill the line");
    }

    #[test]
    fn reseed_disarms_the_mru_read_filter() {
        // Same property across the per-run re-randomisation: after a
        // reseed (which flushes and moves the line to a new random set)
        // the previously MRU line must miss, under every placement.
        for placement in PlacementKind::ALL {
            let addr = Address::new(0x40);
            let mut cache = cache_with_armed_mru(placement, addr);
            let hits_before = cache.stats().hits;
            cache.reseed(0xFEED_F00D);
            assert!(
                cache.access(addr, AccessKind::Load).is_miss(),
                "phantom MRU hit after reseed under {placement}"
            );
            assert_eq!(cache.stats().hits, hits_before);
        }
    }

    #[test]
    fn working_set_fitting_in_cache_has_no_conflict_misses_with_modulo() {
        // 8 sets x 2 ways: 16 consecutive lines fit exactly; after the cold
        // pass every access must hit.
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        let lines: Vec<Address> = (0..16u64).map(|i| Address::new(i * 32)).collect();
        for &a in &lines {
            cache.access(a, AccessKind::Load);
        }
        cache.reset_stats();
        for _ in 0..10 {
            for &a in &lines {
                assert!(cache.access(a, AccessKind::Load).is_hit());
            }
        }
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn working_set_fitting_in_cache_has_no_conflict_misses_with_rm() {
        // The headline property of RM: consecutive lines that fit in the
        // cache never conflict, for any seed.
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        for seed in [1u64, 2, 3, 0xFFFF, 0xABCD_EF01] {
            let mut cache = SetAssocCache::with_kinds(
                geometry,
                PlacementKind::RandomModulo,
                ReplacementKind::Lru,
                WritePolicy::WriteThrough,
            )
            .unwrap();
            cache.reseed(seed);
            let lines: Vec<Address> = (0..16u64).map(|i| Address::new(i * 32)).collect();
            for &a in &lines {
                cache.access(a, AccessKind::Load);
            }
            cache.reset_stats();
            for _ in 0..5 {
                for &a in &lines {
                    cache.access(a, AccessKind::Load);
                }
            }
            assert_eq!(cache.stats().misses, 0, "seed {seed}");
        }
    }

    #[test]
    fn stats_display_and_ratios() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        cache.access(Address::new(0), AccessKind::Load);
        cache.access(Address::new(0), AccessKind::Load);
        let stats = cache.stats();
        assert!((stats.miss_ratio() - 0.5).abs() < 1e-12);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
        assert!(stats.to_string().contains("2 accesses"));
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn merged_stats_sum_every_field() {
        let mut a = small_cache(PlacementKind::Modulo, WritePolicy::WriteBack);
        let mut b = small_cache(PlacementKind::Modulo, WritePolicy::WriteBack);
        for i in 0..40u64 {
            a.access(Address::new(i * 32), AccessKind::Store);
            b.access(Address::new((i % 8) * 32), AccessKind::Load);
        }
        let merged = a.stats().merged(b.stats());
        assert_eq!(merged.accesses, a.stats().accesses + b.stats().accesses);
        assert_eq!(merged.hits, a.stats().hits + b.stats().hits);
        assert_eq!(merged.misses, merged.accesses - merged.hits);
        assert_eq!(merged.stores, 40);
        assert_eq!(merged.fills, a.stats().fills + b.stats().fills);
        assert_eq!(
            CacheStats::default().merged(a.stats()),
            a.stats(),
            "merging with the identity must be a no-op"
        );
    }

    #[test]
    fn set_index_of_respects_placement() {
        let cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        assert_eq!(cache.set_index_of(Address::new(0)), 0);
        assert_eq!(cache.set_index_of(Address::new(32)), 1);
    }

    #[test]
    fn invalid_ways_are_filled_before_eviction() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        let a = Address::new(0);
        let b = Address::new(256);
        assert!(matches!(
            cache.access(a, AccessKind::Load),
            AccessOutcome::Miss { evicted: None, .. }
        ));
        assert!(matches!(
            cache.access(b, AccessKind::Load),
            AccessOutcome::Miss { evicted: None, .. }
        ));
        assert!(cache.contains(a) && cache.contains(b));
    }

    #[test]
    #[should_panic(expected = "does not match the cache geometry")]
    fn mismatched_placement_geometry_panics() {
        let g1 = CacheGeometry::new(8, 2, 32).unwrap();
        let g2 = CacheGeometry::new(16, 2, 32).unwrap();
        let placement = PlacementKind::Modulo.build(g2).unwrap();
        let _ = SetAssocCache::new(g1, placement, ReplacementKind::Lru, WritePolicy::WriteThrough);
    }

    /// Drives a lane bank and K scalar caches through the same access
    /// stream and asserts bit-identical flags on every access.
    fn assert_lane_bank_matches_scalars(
        geometry: CacheGeometry,
        placement: PlacementKind,
        replacement: ReplacementKind,
        write_policy: WritePolicy,
        active: usize,
        capacity: usize,
    ) {
        use crate::prng::SplitMix64;
        let mut bank =
            SetAssocCacheLanes::with_kinds(geometry, placement, replacement, write_policy, capacity)
                .unwrap();
        let seeds: Vec<u64> = (0..active as u64).map(|i| i * 0x9E37_79B9 + 0xFEED).collect();
        bank.reseed_wave(&seeds);
        assert_eq!(bank.active_lanes(), active);
        let mut scalars: Vec<SetAssocCache> = seeds
            .iter()
            .map(|&seed| {
                let mut cache =
                    SetAssocCache::with_kinds(geometry, placement, replacement, write_policy)
                        .unwrap();
                cache.reseed(seed);
                cache
            })
            .collect();
        let mut sm = SplitMix64::new(0x1234);
        let mut flags = vec![AccessFlags::default(); active];
        for step in 0..4_000u64 {
            let addr = Address::new(sm.next_u64() & 0x3_FFFF);
            let line = geometry.line_addr(addr);
            let kind = match step % 5 {
                0 | 1 => AccessKind::Load,
                2 => AccessKind::Store,
                _ => AccessKind::InstructionFetch,
            };
            if step % 7 == 3 {
                // Sparse single-lane access (the L2 read-wave path).
                let lane = (step % active as u64) as usize;
                assert_eq!(
                    bank.access_lean_lane(lane, line, kind),
                    scalars[lane].access_lean_line(line, kind),
                    "{placement}/{replacement} sparse lane {lane} step {step}"
                );
            } else {
                bank.access_lean_lanes(line, kind, &mut flags);
                for (lane, scalar) in scalars.iter_mut().enumerate() {
                    assert_eq!(
                        flags[lane],
                        scalar.access_lean_line(line, kind),
                        "{placement}/{replacement}/{write_policy:?} lane {lane} step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn lane_bank_matches_scalar_caches_for_every_policy_mix() {
        let geometry = CacheGeometry::new(8, 4, 32).unwrap();
        for placement in PlacementKind::ALL {
            for replacement in ReplacementKind::ALL {
                for write_policy in [WritePolicy::WriteThrough, WritePolicy::WriteBack] {
                    assert_lane_bank_matches_scalars(
                        geometry,
                        placement,
                        replacement,
                        write_policy,
                        4,
                        4,
                    );
                }
            }
        }
    }

    #[test]
    fn lane_bank_partial_waves_match_scalar_caches() {
        // Non-multiple widths and partial final chunks: active < capacity,
        // including a single active lane and odd counts.
        let geometry = CacheGeometry::new(8, 4, 32).unwrap();
        for (active, capacity) in [(1usize, 8usize), (3, 8), (5, 8), (3, 3), (7, 16)] {
            for placement in [PlacementKind::Modulo, PlacementKind::HashRandom] {
                assert_lane_bank_matches_scalars(
                    geometry,
                    placement,
                    ReplacementKind::Random,
                    WritePolicy::WriteThrough,
                    active,
                    capacity,
                );
            }
        }
    }

    #[test]
    fn lane_bank_reseed_wave_flushes_every_lane() {
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        let mut bank = SetAssocCacheLanes::with_kinds(
            geometry,
            PlacementKind::RandomModulo,
            ReplacementKind::Random,
            WritePolicy::WriteThrough,
            4,
        )
        .unwrap();
        bank.reseed_wave(&[1, 2, 3, 4]);
        let mut flags = vec![AccessFlags::default(); 4];
        let line = geometry.line_addr(Address::new(0x40));
        bank.access_lean_lanes(line, AccessKind::Load, &mut flags);
        assert!(flags.iter().all(|f| f.is_miss()));
        bank.access_lean_lanes(line, AccessKind::Load, &mut flags);
        assert!(flags.iter().all(|f| f.is_hit()));
        // Reseeding flushes: the same line must miss again on every lane,
        // even with identical seeds (contents are gone).
        bank.reseed_wave(&[1, 2, 3, 4]);
        bank.access_lean_lanes(line, AccessKind::Load, &mut flags);
        assert!(flags.iter().all(|f| f.is_miss()), "phantom hit after reseed_wave");
    }

    #[test]
    fn lane_bank_custom_placement_matches_scalar_boxed_caches() {
        // The Placement::Custom fallback: boxed dyn policies still work,
        // dispatched per lane through the scalar path.
        use crate::prng::SplitMix64;
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        let seeds = [11u64, 22, 33];
        let placements: Vec<Placement> = seeds
            .iter()
            .map(|_| Placement::from(PlacementKind::HashRandom.build(geometry).unwrap()))
            .collect();
        let mut bank = SetAssocCacheLanes::with_placements(
            geometry,
            placements,
            ReplacementKind::Random,
            WritePolicy::WriteThrough,
        );
        assert!(bank.uses_custom_placement());
        bank.reseed_wave(&seeds);
        let mut scalars: Vec<SetAssocCache> = seeds
            .iter()
            .map(|&seed| {
                let mut cache = SetAssocCache::new(
                    geometry,
                    PlacementKind::HashRandom.build(geometry).unwrap(),
                    ReplacementKind::Random,
                    WritePolicy::WriteThrough,
                );
                cache.reseed(seed);
                cache
            })
            .collect();
        let mut sm = SplitMix64::new(5);
        let mut flags = vec![AccessFlags::default(); 3];
        for step in 0..3_000 {
            let line = geometry.line_addr(Address::new(sm.next_u64() & 0xFFFF));
            bank.access_lean_lanes(line, AccessKind::Load, &mut flags);
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                assert_eq!(
                    flags[lane],
                    scalar.access_lean_line(line, AccessKind::Load),
                    "custom lane {lane} step {step}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "seeds exceed the")]
    fn lane_bank_rejects_too_many_seeds() {
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        let mut bank = SetAssocCacheLanes::with_kinds(
            geometry,
            PlacementKind::Modulo,
            ReplacementKind::Random,
            WritePolicy::WriteThrough,
            2,
        )
        .unwrap();
        bank.reseed_wave(&[1, 2, 3]);
    }

    #[test]
    fn random_replacement_cache_is_deterministic_per_seed() {
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        let run = |seed: u64| -> (u64, u64) {
            let mut cache = SetAssocCache::with_kinds(
                geometry,
                PlacementKind::HashRandom,
                ReplacementKind::Random,
                WritePolicy::WriteThrough,
            )
            .unwrap();
            cache.reseed(seed);
            for i in 0..2000u64 {
                let addr = Address::new((i * 7919) % 4096 * 32);
                cache.access(addr, AccessKind::Load);
            }
            (cache.stats().hits, cache.stats().misses)
        };
        assert_eq!(run(42), run(42));
    }
}
