//! A set-associative cache model with pluggable placement and replacement.
//!
//! The model is *functional*: it tracks which lines are resident and reports
//! hits, misses, evictions and write-backs.  Timing (hit/miss latencies,
//! multi-level hierarchies) is layered on top by `randmod-sim`.
//!
//! Two aspects mirror the paper's hardware discussion:
//!
//! * **Seed changes flush the cache.**  Every new seed selects a new cache
//!   layout, so resident contents become unreachable; [`SetAssocCache::reseed`]
//!   therefore invalidates everything, like the real design.
//! * **Index storage in the tag array.**  With hRP the set a line sits in is
//!   not recoverable from its tag, so the index bits must be stored with the
//!   tag (extra area, modelled in `randmod-hwcost`).  The functional model
//!   stores the full line address for all policies so hit/miss behaviour is
//!   exact regardless of policy.

use crate::address::{Address, CacheGeometry, LineAddr};
use crate::error::ConfigError;
use crate::placement::{Placement, PlacementKind, PlacementPolicy};
use crate::prng::CombinedLfsr;
use crate::replacement::{ReplacementKind, ReplacementState};
use std::fmt;

/// What kind of memory access is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (goes to the instruction cache).
    InstructionFetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl AccessKind {
    /// Whether this access writes data.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

/// Write policy of the cache.
///
/// The paper notes that safety-critical first-level caches are typically
/// write-through (no dirty lines, no index bits needed in the tag array for
/// RM), while write-back caches additionally need the index to rebuild the
/// victim address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Stores update memory immediately; store misses do not allocate.
    WriteThrough,
    /// Stores dirty the line; dirty victims are written back on eviction.
    WriteBack,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The line address that was evicted.
    pub line: LineAddr,
    /// Whether the line was dirty (requires a write-back on a write-back
    /// cache).
    pub dirty: bool,
}

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit {
        /// The way it was found in.
        way: u32,
    },
    /// The line was not resident.
    Miss {
        /// Whether the line was brought into the cache (write-through
        /// store misses do not allocate).
        allocated: bool,
        /// The line that was displaced, if any.
        evicted: Option<EvictedLine>,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    pub const fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit { .. })
    }

    /// Whether the access missed.
    pub const fn is_miss(&self) -> bool {
        !self.is_hit()
    }

    /// Whether the access caused a dirty eviction (a write-back).
    pub fn caused_writeback(&self) -> bool {
        matches!(
            self,
            AccessOutcome::Miss {
                evicted: Some(EvictedLine { dirty: true, .. }),
                ..
            }
        )
    }
}

/// Hit/miss statistics accumulated by a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Misses that allocated a line.
    pub fills: u64,
    /// Evictions of valid lines.
    pub evictions: u64,
    /// Dirty evictions (write-backs).
    pub writebacks: u64,
    /// Store accesses.
    pub stores: u64,
    /// Whole-cache flushes (seed changes).
    pub flushes: u64,
}

impl CacheStats {
    /// Element-wise sum of two statistics blocks.
    ///
    /// Contention campaigns track a *per-task* view of each shared cache
    /// level; merging the per-task blocks reconstructs the level's
    /// aggregate traffic.
    #[must_use]
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses + other.accesses,
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            fills: self.fills + other.fills,
            evictions: self.evictions + other.evictions,
            writebacks: self.writebacks + other.writebacks,
            stores: self.stores + other.stores,
            flushes: self.flushes + other.flushes,
        }
    }

    /// Miss ratio (0 when there were no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio (0 when there were no accesses).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses ({:.2}% miss ratio)",
            self.accesses,
            self.hits,
            self.misses,
            self.miss_ratio() * 100.0
        )
    }
}

/// Compact outcome of a [`SetAssocCache::access_lean`] call: the same
/// information as [`AccessOutcome`] minus the evicted line address, packed
/// into one byte so batched replay lanes can accumulate statistics with
/// branch-free adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessFlags(u8);

impl AccessFlags {
    const HIT: u8 = 1 << 0;
    const FILLED: u8 = 1 << 1;
    const EVICTED: u8 = 1 << 2;
    const WRITEBACK: u8 = 1 << 3;

    /// Whether the access hit.
    #[inline]
    pub const fn is_hit(self) -> bool {
        self.0 & Self::HIT != 0
    }

    /// Whether the access missed.
    #[inline]
    pub const fn is_miss(self) -> bool {
        !self.is_hit()
    }

    /// Whether the miss allocated a line.
    #[inline]
    pub const fn filled(self) -> bool {
        self.0 & Self::FILLED != 0
    }

    /// Whether the fill displaced a valid line.
    #[inline]
    pub const fn evicted(self) -> bool {
        self.0 & Self::EVICTED != 0
    }

    /// Whether the displaced line was dirty (a write-back).
    #[inline]
    pub const fn wrote_back(self) -> bool {
        self.0 & Self::WRITEBACK != 0
    }
}

/// Sentinel stored in the flat tag array for an invalid way.  Line
/// addresses are byte addresses shifted right by the offset bits, and the
/// trace pipeline caps addresses at 2⁶² − 1, so the all-ones value can
/// never be a real line.
const INVALID_TAG: u64 = u64::MAX;

/// Raw outcome of the shared access path: flags plus the way used and the
/// displaced line (when any).
struct RawAccess {
    flags: AccessFlags,
    way: u32,
    evicted: Option<EvictedLine>,
}

#[inline]
fn bit_get(words: &[u64], index: usize) -> bool {
    (words[index >> 6] >> (index & 63)) & 1 == 1
}

#[inline]
fn bit_set(words: &mut [u64], index: usize) {
    words[index >> 6] |= 1 << (index & 63);
}

#[inline]
fn bit_clear(words: &mut [u64], index: usize) {
    words[index >> 6] &= !(1 << (index & 63));
}

/// A set-associative cache with pluggable placement and replacement.
///
/// ```
/// use randmod_core::{CacheGeometry, Address, PlacementKind, ReplacementKind};
/// use randmod_core::cache::{SetAssocCache, AccessKind, WritePolicy};
///
/// # fn main() -> Result<(), randmod_core::ConfigError> {
/// let mut cache = SetAssocCache::with_kinds(
///     CacheGeometry::leon3_l1(),
///     PlacementKind::RandomModulo,
///     ReplacementKind::Random,
///     WritePolicy::WriteThrough,
/// )?;
/// cache.reseed(7);
/// assert!(cache.access(Address::new(0x100), AccessKind::Load).is_miss());
/// assert!(cache.access(Address::new(0x100), AccessKind::Load).is_hit());
/// assert_eq!(cache.stats().misses, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    placement: Placement,
    write_policy: WritePolicy,
    /// Associativity, cached as `usize` for the indexing hot path.
    ways: usize,
    /// Flat tag array: `tags[set * ways + way]` holds the resident line
    /// address, or [`INVALID_TAG`] for an empty way.  One L1's worth fits
    /// in a few KiB of contiguous memory.
    tags: Vec<u64>,
    /// Packed valid bits, one per line (mirrors `tags != INVALID_TAG`;
    /// kept for cheap occupancy queries).
    valid: Vec<u64>,
    /// Packed dirty bits, one per line.
    dirty: Vec<u64>,
    /// Flat replacement state for every set.
    replacement: ReplacementState,
    rng: CombinedLfsr,
    stats: CacheStats,
    /// Most-recently-read line, the one-compare fast path for the common
    /// same-line run of instruction fetches and sequential loads.  Pinned
    /// to [`INVALID_TAG`] (never matches) unless replacement is Random:
    /// under random replacement a read hit changes no cache state (`touch`
    /// is a no-op and reads never dirty a line), so short-circuiting the
    /// repeat hit is state- and outcome-identical.  LRU and round-robin
    /// must re-rank on every hit and always take the full path.
    mru_line: u64,
    /// Flat tag index of the MRU line (validated against `tags` on use, so
    /// an eviction of the MRU line simply falls back to the full probe).
    mru_index: usize,
    /// Way of the MRU line within its set.
    mru_way: u32,
    /// Whether the MRU fast path may be armed (replacement is Random).
    mru_enabled: bool,
}

impl SetAssocCache {
    /// Creates a cache from an already-built boxed placement policy (the
    /// extension point for policies implemented outside this crate; the
    /// built-in policies go through [`Self::with_kinds`] or
    /// [`Self::with_placement`] and are statically dispatched).
    ///
    /// # Panics
    ///
    /// Panics if the placement policy was built for a different geometry.
    pub fn new(
        geometry: CacheGeometry,
        placement: Box<dyn PlacementPolicy>,
        replacement: ReplacementKind,
        write_policy: WritePolicy,
    ) -> Self {
        Self::with_placement(geometry, Placement::from(placement), replacement, write_policy)
    }

    /// Creates a cache from a statically dispatched [`Placement`].
    ///
    /// # Panics
    ///
    /// Panics if the placement policy was built for a different geometry.
    pub fn with_placement(
        geometry: CacheGeometry,
        placement: Placement,
        replacement: ReplacementKind,
        write_policy: WritePolicy,
    ) -> Self {
        assert_eq!(
            placement.geometry(),
            geometry,
            "placement policy geometry does not match the cache geometry"
        );
        let lines = geometry.sets() as usize * geometry.ways() as usize;
        let words = lines.div_ceil(64);
        SetAssocCache {
            geometry,
            placement,
            write_policy,
            ways: geometry.ways() as usize,
            tags: vec![INVALID_TAG; lines],
            valid: vec![0; words],
            dirty: vec![0; words],
            replacement: ReplacementState::new(replacement, geometry.sets(), geometry.ways()),
            rng: CombinedLfsr::new(0),
            stats: CacheStats::default(),
            mru_line: INVALID_TAG,
            mru_index: 0,
            mru_way: 0,
            mru_enabled: replacement == ReplacementKind::Random,
        }
    }

    /// Creates a cache from policy identifiers.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the placement policy cannot be built for
    /// this geometry.
    pub fn with_kinds(
        geometry: CacheGeometry,
        placement: PlacementKind,
        replacement: ReplacementKind,
        write_policy: WritePolicy,
    ) -> Result<Self, ConfigError> {
        Ok(Self::with_placement(
            geometry,
            Placement::new(placement, geometry)?,
            replacement,
            write_policy,
        ))
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The placement policy in use.
    pub fn placement(&self) -> &dyn PlacementPolicy {
        self.placement.as_dyn()
    }

    /// The write policy in use.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the statistics (the contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Installs a new placement seed and flushes the contents, as the
    /// hardware does on a seed change.
    pub fn reseed(&mut self, seed: u64) {
        self.placement.reseed(seed);
        self.rng = CombinedLfsr::new(seed ^ 0x5EED_5EED_5EED_5EED);
        self.flush();
    }

    /// Invalidates every line (dirty contents are discarded; the caller is
    /// responsible for modelling any write-back traffic if needed).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.valid.fill(0);
        self.dirty.fill(0);
        self.replacement.reset();
        self.mru_line = INVALID_TAG;
        self.stats.flushes += 1;
    }

    /// Checks whether the line holding `addr` is resident, without updating
    /// any state or statistics.
    pub fn contains(&self, addr: Address) -> bool {
        let line = self.geometry.line_addr(addr);
        let base = self.placement.set_index_of_line(line) as usize * self.ways;
        self.tags[base..base + self.ways].contains(&line.raw())
    }

    /// Number of valid lines currently resident in set `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= sets`.
    pub fn set_occupancy(&self, index: u32) -> u32 {
        assert!(index < self.geometry.sets(), "set index out of range");
        let base = index as usize * self.ways;
        (base..base + self.ways)
            .filter(|&i| bit_get(&self.valid, i))
            .count() as u32
    }

    /// The shared access path: probes the set in a single pass (recording
    /// the first invalid way while looking for a hit), fills on an
    /// allocating miss, and reports what happened — without touching the
    /// statistics.
    #[inline]
    fn access_raw(&mut self, line: LineAddr, is_write: bool) -> RawAccess {
        debug_assert_ne!(
            line.raw(),
            INVALID_TAG,
            "line address collides with the invalid-tag sentinel"
        );
        let raw = line.raw();

        // Fast path: a repeat read of the most-recently-read line.  Armed
        // only under Random replacement, where a read hit mutates no state;
        // the tag re-check makes an interleaved eviction fall back to the
        // full probe.
        if raw == self.mru_line && self.tags[self.mru_index] == raw && !is_write {
            return RawAccess {
                flags: AccessFlags(AccessFlags::HIT),
                way: self.mru_way,
                evicted: None,
            };
        }

        let set = self.placement.set_index_of_line_mut(line);
        let base = set as usize * self.ways;

        // One pass over the ways: probe for a hit and remember the first
        // invalid way for a potential fill.  Invalid ways hold the sentinel,
        // which never equals a real line address, so hit detection needs no
        // separate valid check.
        let mut invalid_way = usize::MAX;
        let mut hit_way = usize::MAX;
        for (way, &tag) in self.tags[base..base + self.ways].iter().enumerate() {
            if tag == raw {
                hit_way = way;
                break;
            }
            if tag == INVALID_TAG && invalid_way == usize::MAX {
                invalid_way = way;
            }
        }

        if hit_way != usize::MAX {
            self.replacement.touch(set, hit_way as u32);
            if is_write && self.write_policy == WritePolicy::WriteBack {
                bit_set(&mut self.dirty, base + hit_way);
            }
            if self.mru_enabled && !is_write {
                self.mru_line = raw;
                self.mru_index = base + hit_way;
                self.mru_way = hit_way as u32;
            }
            return RawAccess {
                flags: AccessFlags(AccessFlags::HIT),
                way: hit_way as u32,
                evicted: None,
            };
        }

        // Write-through caches do not allocate on store misses: the store
        // goes straight to the next level.
        if is_write && self.write_policy == WritePolicy::WriteThrough {
            return RawAccess {
                flags: AccessFlags(0),
                way: 0,
                evicted: None,
            };
        }

        // Prefer the invalid way found during the probe; otherwise ask the
        // replacement policy for a victim.
        let way = if invalid_way != usize::MAX {
            invalid_way
        } else {
            self.replacement.victim(set, &mut self.rng) as usize
        };
        let index = base + way;
        let old_tag = self.tags[index];
        let mut flags = AccessFlags::FILLED;
        let evicted = if old_tag != INVALID_TAG {
            let was_dirty = bit_get(&self.dirty, index);
            flags |= AccessFlags::EVICTED | if was_dirty { AccessFlags::WRITEBACK } else { 0 };
            Some(EvictedLine {
                line: LineAddr::new(old_tag),
                dirty: was_dirty,
            })
        } else {
            None
        };
        self.tags[index] = raw;
        bit_set(&mut self.valid, index);
        if is_write && self.write_policy == WritePolicy::WriteBack {
            bit_set(&mut self.dirty, index);
        } else {
            bit_clear(&mut self.dirty, index);
        }
        self.replacement.touch(set, way as u32);
        if self.mru_enabled && !is_write {
            self.mru_line = raw;
            self.mru_index = index;
            self.mru_way = way as u32;
        }
        RawAccess {
            flags: AccessFlags(flags),
            way: way as u32,
            evicted,
        }
    }

    /// Performs one access and returns its outcome.
    #[inline]
    pub fn access(&mut self, addr: Address, kind: AccessKind) -> AccessOutcome {
        let line = self.geometry.line_addr(addr);
        let is_write = kind.is_write();
        self.stats.accesses += 1;
        self.stats.stores += is_write as u64;
        let raw = self.access_raw(line, is_write);
        let flags = raw.flags;
        if flags.is_hit() {
            self.stats.hits += 1;
            AccessOutcome::Hit { way: raw.way }
        } else {
            self.stats.misses += 1;
            self.stats.fills += flags.filled() as u64;
            self.stats.evictions += flags.evicted() as u64;
            self.stats.writebacks += flags.wrote_back() as u64;
            AccessOutcome::Miss {
                allocated: flags.filled(),
                evicted: raw.evicted,
            }
        }
    }

    /// Performs one access without updating the statistics, returning the
    /// compact [`AccessFlags`] instead of a full [`AccessOutcome`].
    ///
    /// This is the batched-replay hot path: callers (one per replay lane)
    /// accumulate their own counters from the flags and flush them into a
    /// [`CacheStats`] once per run, instead of read-modify-writing the
    /// eight-field statistics block on every event.
    #[inline]
    pub fn access_lean(&mut self, addr: Address, kind: AccessKind) -> AccessFlags {
        self.access_raw(self.geometry.line_addr(addr), kind.is_write())
            .flags
    }

    /// [`Self::access_lean`] with the line address precomputed by the
    /// caller.
    ///
    /// The lane-batched replay engines decode each event once and fan it
    /// out across `K` per-seed hierarchies; hoisting the `addr → line`
    /// reduction out of the per-lane loop pays it once per decoded event
    /// instead of once per lane.  `line` must equal
    /// `self.geometry().line_addr(addr)` of the accessed address — the
    /// placement layout maps lines, so a mismatched line simply accesses a
    /// different one.
    #[inline]
    pub fn access_lean_line(&mut self, line: LineAddr, kind: AccessKind) -> AccessFlags {
        self.access_raw(line, kind.is_write()).flags
    }

    /// Returns the set index the current layout assigns to `addr`.
    pub fn set_index_of(&self, addr: Address) -> u32 {
        self.placement.set_index(addr)
    }

    /// Total number of valid lines in the cache.
    pub fn resident_lines(&self) -> u32 {
        (0..self.geometry.sets()).map(|s| self.set_occupancy(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(placement: PlacementKind, write_policy: WritePolicy) -> SetAssocCache {
        // 8 sets x 2 ways x 32B lines = 512B: small enough to force
        // evictions quickly in tests.
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        SetAssocCache::with_kinds(geometry, placement, ReplacementKind::Lru, write_policy).unwrap()
    }

    #[test]
    fn miss_then_hit() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        let addr = Address::new(0x40);
        assert!(cache.access(addr, AccessKind::Load).is_miss());
        assert!(cache.access(addr, AccessKind::Load).is_hit());
        assert_eq!(cache.stats().accesses, 2);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        assert!(cache.access(Address::new(0x100), AccessKind::Load).is_miss());
        assert!(cache.access(Address::new(0x11F), AccessKind::Load).is_hit());
    }

    #[test]
    fn capacity_eviction_with_lru() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        // Three lines that all map to set 0 (stride = 8 sets * 32B = 256B).
        let a = Address::new(0);
        let b = Address::new(256);
        let c = Address::new(512);
        cache.access(a, AccessKind::Load);
        cache.access(b, AccessKind::Load);
        let outcome = cache.access(c, AccessKind::Load);
        assert!(outcome.is_miss());
        assert!(matches!(outcome, AccessOutcome::Miss { evicted: Some(_), .. }));
        // `a` was the LRU line, so it must be gone while `b` survived.
        assert!(!cache.contains(a));
        assert!(cache.contains(b));
        assert!(cache.contains(c));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn write_through_store_miss_does_not_allocate() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        let addr = Address::new(0x80);
        let outcome = cache.access(addr, AccessKind::Store);
        assert_eq!(
            outcome,
            AccessOutcome::Miss {
                allocated: false,
                evicted: None
            }
        );
        assert!(!cache.contains(addr));
        assert_eq!(cache.stats().fills, 0);
    }

    #[test]
    fn write_back_store_miss_allocates_and_dirties() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteBack);
        let a = Address::new(0);
        let b = Address::new(256);
        let c = Address::new(512);
        cache.access(a, AccessKind::Store);
        cache.access(b, AccessKind::Load);
        // Evicting the dirty line must produce a write-back.
        let outcome = cache.access(c, AccessKind::Load);
        assert!(outcome.caused_writeback());
        assert_eq!(cache.stats().writebacks, 1);
    }

    #[test]
    fn write_through_never_writes_back() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        for i in 0..64u64 {
            cache.access(Address::new(i * 32), AccessKind::Store);
            cache.access(Address::new(i * 32), AccessKind::Load);
        }
        assert_eq!(cache.stats().writebacks, 0);
    }

    #[test]
    fn reseed_flushes_contents() {
        let mut cache = small_cache(PlacementKind::RandomModulo, WritePolicy::WriteThrough);
        let addr = Address::new(0x40);
        cache.access(addr, AccessKind::Load);
        assert!(cache.contains(addr));
        cache.reseed(99);
        assert!(!cache.contains(addr));
        assert!(cache.access(addr, AccessKind::Load).is_miss());
        assert!(cache.stats().flushes >= 1);
    }

    #[test]
    fn flush_resets_occupancy() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        for i in 0..16u64 {
            cache.access(Address::new(i * 32), AccessKind::Load);
        }
        assert_eq!(cache.resident_lines(), 16);
        cache.flush();
        assert_eq!(cache.resident_lines(), 0);
    }

    /// A cache with the MRU read filter armed on `addr`: Random
    /// replacement (the only mode where the filter may arm) plus two reads
    /// of the same line (fill, then the arming hit).
    fn cache_with_armed_mru(placement: PlacementKind, addr: Address) -> SetAssocCache {
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        let mut cache = SetAssocCache::with_kinds(
            geometry,
            placement,
            ReplacementKind::Random,
            WritePolicy::WriteThrough,
        )
        .unwrap();
        cache.reseed(1);
        assert!(cache.access(addr, AccessKind::Load).is_miss());
        assert!(cache.access(addr, AccessKind::Load).is_hit());
        cache
    }

    #[test]
    fn flush_disarms_the_mru_read_filter() {
        // A stale MRU entry surviving the flush would answer the next read
        // of the same line with a phantom hit on an invalidated cache — a
        // silent wrong result.  The post-flush read must be a genuine miss
        // that refills the line.
        let addr = Address::new(0x40);
        let mut cache = cache_with_armed_mru(PlacementKind::RandomModulo, addr);
        cache.flush();
        let outcome = cache.access(addr, AccessKind::Load);
        assert!(outcome.is_miss(), "phantom MRU hit after flush");
        assert!(cache.contains(addr), "the post-flush miss must refill the line");
    }

    #[test]
    fn reseed_disarms_the_mru_read_filter() {
        // Same property across the per-run re-randomisation: after a
        // reseed (which flushes and moves the line to a new random set)
        // the previously MRU line must miss, under every placement.
        for placement in PlacementKind::ALL {
            let addr = Address::new(0x40);
            let mut cache = cache_with_armed_mru(placement, addr);
            let hits_before = cache.stats().hits;
            cache.reseed(0xFEED_F00D);
            assert!(
                cache.access(addr, AccessKind::Load).is_miss(),
                "phantom MRU hit after reseed under {placement}"
            );
            assert_eq!(cache.stats().hits, hits_before);
        }
    }

    #[test]
    fn working_set_fitting_in_cache_has_no_conflict_misses_with_modulo() {
        // 8 sets x 2 ways: 16 consecutive lines fit exactly; after the cold
        // pass every access must hit.
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        let lines: Vec<Address> = (0..16u64).map(|i| Address::new(i * 32)).collect();
        for &a in &lines {
            cache.access(a, AccessKind::Load);
        }
        cache.reset_stats();
        for _ in 0..10 {
            for &a in &lines {
                assert!(cache.access(a, AccessKind::Load).is_hit());
            }
        }
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn working_set_fitting_in_cache_has_no_conflict_misses_with_rm() {
        // The headline property of RM: consecutive lines that fit in the
        // cache never conflict, for any seed.
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        for seed in [1u64, 2, 3, 0xFFFF, 0xABCD_EF01] {
            let mut cache = SetAssocCache::with_kinds(
                geometry,
                PlacementKind::RandomModulo,
                ReplacementKind::Lru,
                WritePolicy::WriteThrough,
            )
            .unwrap();
            cache.reseed(seed);
            let lines: Vec<Address> = (0..16u64).map(|i| Address::new(i * 32)).collect();
            for &a in &lines {
                cache.access(a, AccessKind::Load);
            }
            cache.reset_stats();
            for _ in 0..5 {
                for &a in &lines {
                    cache.access(a, AccessKind::Load);
                }
            }
            assert_eq!(cache.stats().misses, 0, "seed {seed}");
        }
    }

    #[test]
    fn stats_display_and_ratios() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        cache.access(Address::new(0), AccessKind::Load);
        cache.access(Address::new(0), AccessKind::Load);
        let stats = cache.stats();
        assert!((stats.miss_ratio() - 0.5).abs() < 1e-12);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
        assert!(stats.to_string().contains("2 accesses"));
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn merged_stats_sum_every_field() {
        let mut a = small_cache(PlacementKind::Modulo, WritePolicy::WriteBack);
        let mut b = small_cache(PlacementKind::Modulo, WritePolicy::WriteBack);
        for i in 0..40u64 {
            a.access(Address::new(i * 32), AccessKind::Store);
            b.access(Address::new((i % 8) * 32), AccessKind::Load);
        }
        let merged = a.stats().merged(b.stats());
        assert_eq!(merged.accesses, a.stats().accesses + b.stats().accesses);
        assert_eq!(merged.hits, a.stats().hits + b.stats().hits);
        assert_eq!(merged.misses, merged.accesses - merged.hits);
        assert_eq!(merged.stores, 40);
        assert_eq!(merged.fills, a.stats().fills + b.stats().fills);
        assert_eq!(
            CacheStats::default().merged(a.stats()),
            a.stats(),
            "merging with the identity must be a no-op"
        );
    }

    #[test]
    fn set_index_of_respects_placement() {
        let cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        assert_eq!(cache.set_index_of(Address::new(0)), 0);
        assert_eq!(cache.set_index_of(Address::new(32)), 1);
    }

    #[test]
    fn invalid_ways_are_filled_before_eviction() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        let a = Address::new(0);
        let b = Address::new(256);
        assert!(matches!(
            cache.access(a, AccessKind::Load),
            AccessOutcome::Miss { evicted: None, .. }
        ));
        assert!(matches!(
            cache.access(b, AccessKind::Load),
            AccessOutcome::Miss { evicted: None, .. }
        ));
        assert!(cache.contains(a) && cache.contains(b));
    }

    #[test]
    #[should_panic(expected = "does not match the cache geometry")]
    fn mismatched_placement_geometry_panics() {
        let g1 = CacheGeometry::new(8, 2, 32).unwrap();
        let g2 = CacheGeometry::new(16, 2, 32).unwrap();
        let placement = PlacementKind::Modulo.build(g2).unwrap();
        let _ = SetAssocCache::new(g1, placement, ReplacementKind::Lru, WritePolicy::WriteThrough);
    }

    #[test]
    fn random_replacement_cache_is_deterministic_per_seed() {
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        let run = |seed: u64| -> (u64, u64) {
            let mut cache = SetAssocCache::with_kinds(
                geometry,
                PlacementKind::HashRandom,
                ReplacementKind::Random,
                WritePolicy::WriteThrough,
            )
            .unwrap();
            cache.reseed(seed);
            for i in 0..2000u64 {
                let addr = Address::new((i * 7919) % 4096 * 32);
                cache.access(addr, AccessKind::Load);
            }
            (cache.stats().hits, cache.stats().misses)
        };
        assert_eq!(run(42), run(42));
    }
}
