//! A set-associative cache model with pluggable placement and replacement.
//!
//! The model is *functional*: it tracks which lines are resident and reports
//! hits, misses, evictions and write-backs.  Timing (hit/miss latencies,
//! multi-level hierarchies) is layered on top by `randmod-sim`.
//!
//! Two aspects mirror the paper's hardware discussion:
//!
//! * **Seed changes flush the cache.**  Every new seed selects a new cache
//!   layout, so resident contents become unreachable; [`SetAssocCache::reseed`]
//!   therefore invalidates everything, like the real design.
//! * **Index storage in the tag array.**  With hRP the set a line sits in is
//!   not recoverable from its tag, so the index bits must be stored with the
//!   tag (extra area, modelled in `randmod-hwcost`).  The functional model
//!   stores the full line address for all policies so hit/miss behaviour is
//!   exact regardless of policy.

use crate::address::{Address, CacheGeometry, LineAddr};
use crate::error::ConfigError;
use crate::placement::{PlacementKind, PlacementPolicy};
use crate::prng::CombinedLfsr;
use crate::replacement::{ReplacementKind, ReplacementSet};
use std::fmt;

/// What kind of memory access is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (goes to the instruction cache).
    InstructionFetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl AccessKind {
    /// Whether this access writes data.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

/// Write policy of the cache.
///
/// The paper notes that safety-critical first-level caches are typically
/// write-through (no dirty lines, no index bits needed in the tag array for
/// RM), while write-back caches additionally need the index to rebuild the
/// victim address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Stores update memory immediately; store misses do not allocate.
    WriteThrough,
    /// Stores dirty the line; dirty victims are written back on eviction.
    WriteBack,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The line address that was evicted.
    pub line: LineAddr,
    /// Whether the line was dirty (requires a write-back on a write-back
    /// cache).
    pub dirty: bool,
}

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit {
        /// The way it was found in.
        way: u32,
    },
    /// The line was not resident.
    Miss {
        /// Whether the line was brought into the cache (write-through
        /// store misses do not allocate).
        allocated: bool,
        /// The line that was displaced, if any.
        evicted: Option<EvictedLine>,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    pub const fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit { .. })
    }

    /// Whether the access missed.
    pub const fn is_miss(&self) -> bool {
        !self.is_hit()
    }

    /// Whether the access caused a dirty eviction (a write-back).
    pub fn caused_writeback(&self) -> bool {
        matches!(
            self,
            AccessOutcome::Miss {
                evicted: Some(EvictedLine { dirty: true, .. }),
                ..
            }
        )
    }
}

/// Hit/miss statistics accumulated by a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Misses that allocated a line.
    pub fills: u64,
    /// Evictions of valid lines.
    pub evictions: u64,
    /// Dirty evictions (write-backs).
    pub writebacks: u64,
    /// Store accesses.
    pub stores: u64,
    /// Whole-cache flushes (seed changes).
    pub flushes: u64,
}

impl CacheStats {
    /// Miss ratio (0 when there were no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio (0 when there were no accesses).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses ({:.2}% miss ratio)",
            self.accesses,
            self.hits,
            self.misses,
            self.miss_ratio() * 100.0
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct CacheLine {
    valid: bool,
    dirty: bool,
    line: LineAddr,
}

#[derive(Debug, Clone)]
struct CacheSet {
    lines: Vec<CacheLine>,
    replacement: ReplacementSet,
}

/// A set-associative cache with pluggable placement and replacement.
///
/// ```
/// use randmod_core::{CacheGeometry, Address, PlacementKind, ReplacementKind};
/// use randmod_core::cache::{SetAssocCache, AccessKind, WritePolicy};
///
/// # fn main() -> Result<(), randmod_core::ConfigError> {
/// let mut cache = SetAssocCache::with_kinds(
///     CacheGeometry::leon3_l1(),
///     PlacementKind::RandomModulo,
///     ReplacementKind::Random,
///     WritePolicy::WriteThrough,
/// )?;
/// cache.reseed(7);
/// assert!(cache.access(Address::new(0x100), AccessKind::Load).is_miss());
/// assert!(cache.access(Address::new(0x100), AccessKind::Load).is_hit());
/// assert_eq!(cache.stats().misses, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    placement: Box<dyn PlacementPolicy>,
    write_policy: WritePolicy,
    sets: Vec<CacheSet>,
    rng: CombinedLfsr,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache from an already-built placement policy.
    ///
    /// # Panics
    ///
    /// Panics if the placement policy was built for a different geometry.
    pub fn new(
        geometry: CacheGeometry,
        placement: Box<dyn PlacementPolicy>,
        replacement: ReplacementKind,
        write_policy: WritePolicy,
    ) -> Self {
        assert_eq!(
            placement.geometry(),
            geometry,
            "placement policy geometry does not match the cache geometry"
        );
        let sets = (0..geometry.sets())
            .map(|_| CacheSet {
                lines: vec![CacheLine::default(); geometry.ways() as usize],
                replacement: ReplacementSet::new(replacement, geometry.ways()),
            })
            .collect();
        SetAssocCache {
            geometry,
            placement,
            write_policy,
            sets,
            rng: CombinedLfsr::new(0),
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache from policy identifiers.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the placement policy cannot be built for
    /// this geometry.
    pub fn with_kinds(
        geometry: CacheGeometry,
        placement: PlacementKind,
        replacement: ReplacementKind,
        write_policy: WritePolicy,
    ) -> Result<Self, ConfigError> {
        Ok(Self::new(
            geometry,
            placement.build(geometry)?,
            replacement,
            write_policy,
        ))
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The placement policy in use.
    pub fn placement(&self) -> &dyn PlacementPolicy {
        self.placement.as_ref()
    }

    /// The write policy in use.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the statistics (the contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Installs a new placement seed and flushes the contents, as the
    /// hardware does on a seed change.
    pub fn reseed(&mut self, seed: u64) {
        self.placement.reseed(seed);
        self.rng = CombinedLfsr::new(seed ^ 0x5EED_5EED_5EED_5EED);
        self.flush();
    }

    /// Invalidates every line (dirty contents are discarded; the caller is
    /// responsible for modelling any write-back traffic if needed).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in &mut set.lines {
                *line = CacheLine::default();
            }
            set.replacement.reset();
        }
        self.stats.flushes += 1;
    }

    /// Checks whether the line holding `addr` is resident, without updating
    /// any state or statistics.
    pub fn contains(&self, addr: Address) -> bool {
        let line = self.geometry.line_addr(addr);
        let set = &self.sets[self.placement.set_index_of_line(line) as usize];
        set.lines.iter().any(|l| l.valid && l.line == line)
    }

    /// Number of valid lines currently resident in set `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= sets`.
    pub fn set_occupancy(&self, index: u32) -> u32 {
        self.sets[index as usize]
            .lines
            .iter()
            .filter(|l| l.valid)
            .count() as u32
    }

    /// Performs one access and returns its outcome.
    pub fn access(&mut self, addr: Address, kind: AccessKind) -> AccessOutcome {
        let line = self.geometry.line_addr(addr);
        let set_index = self.placement.set_index_of_line(line) as usize;
        self.stats.accesses += 1;
        if kind.is_write() {
            self.stats.stores += 1;
        }

        let set = &mut self.sets[set_index];
        if let Some(way) = set
            .lines
            .iter()
            .position(|l| l.valid && l.line == line)
            .map(|w| w as u32)
        {
            self.stats.hits += 1;
            set.replacement.touch(way);
            if kind.is_write() && self.write_policy == WritePolicy::WriteBack {
                set.lines[way as usize].dirty = true;
            }
            return AccessOutcome::Hit { way };
        }

        self.stats.misses += 1;

        // Write-through caches do not allocate on store misses: the store
        // goes straight to the next level.
        let allocate = !(kind.is_write() && self.write_policy == WritePolicy::WriteThrough);
        if !allocate {
            return AccessOutcome::Miss {
                allocated: false,
                evicted: None,
            };
        }

        self.stats.fills += 1;
        // Prefer an invalid way; otherwise ask the replacement policy.
        let way = match set.lines.iter().position(|l| !l.valid) {
            Some(w) => w as u32,
            None => set.replacement.victim(&mut self.rng),
        };
        let victim = &mut set.lines[way as usize];
        let evicted = if victim.valid {
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            Some(EvictedLine {
                line: victim.line,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        *victim = CacheLine {
            valid: true,
            dirty: kind.is_write() && self.write_policy == WritePolicy::WriteBack,
            line,
        };
        set.replacement.touch(way);
        AccessOutcome::Miss {
            allocated: true,
            evicted,
        }
    }

    /// Returns the set index the current layout assigns to `addr`.
    pub fn set_index_of(&self, addr: Address) -> u32 {
        self.placement.set_index(addr)
    }

    /// Total number of valid lines in the cache.
    pub fn resident_lines(&self) -> u32 {
        (0..self.geometry.sets()).map(|s| self.set_occupancy(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(placement: PlacementKind, write_policy: WritePolicy) -> SetAssocCache {
        // 8 sets x 2 ways x 32B lines = 512B: small enough to force
        // evictions quickly in tests.
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        SetAssocCache::with_kinds(geometry, placement, ReplacementKind::Lru, write_policy).unwrap()
    }

    #[test]
    fn miss_then_hit() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        let addr = Address::new(0x40);
        assert!(cache.access(addr, AccessKind::Load).is_miss());
        assert!(cache.access(addr, AccessKind::Load).is_hit());
        assert_eq!(cache.stats().accesses, 2);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        assert!(cache.access(Address::new(0x100), AccessKind::Load).is_miss());
        assert!(cache.access(Address::new(0x11F), AccessKind::Load).is_hit());
    }

    #[test]
    fn capacity_eviction_with_lru() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        // Three lines that all map to set 0 (stride = 8 sets * 32B = 256B).
        let a = Address::new(0);
        let b = Address::new(256);
        let c = Address::new(512);
        cache.access(a, AccessKind::Load);
        cache.access(b, AccessKind::Load);
        let outcome = cache.access(c, AccessKind::Load);
        assert!(outcome.is_miss());
        assert!(matches!(outcome, AccessOutcome::Miss { evicted: Some(_), .. }));
        // `a` was the LRU line, so it must be gone while `b` survived.
        assert!(!cache.contains(a));
        assert!(cache.contains(b));
        assert!(cache.contains(c));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn write_through_store_miss_does_not_allocate() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        let addr = Address::new(0x80);
        let outcome = cache.access(addr, AccessKind::Store);
        assert_eq!(
            outcome,
            AccessOutcome::Miss {
                allocated: false,
                evicted: None
            }
        );
        assert!(!cache.contains(addr));
        assert_eq!(cache.stats().fills, 0);
    }

    #[test]
    fn write_back_store_miss_allocates_and_dirties() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteBack);
        let a = Address::new(0);
        let b = Address::new(256);
        let c = Address::new(512);
        cache.access(a, AccessKind::Store);
        cache.access(b, AccessKind::Load);
        // Evicting the dirty line must produce a write-back.
        let outcome = cache.access(c, AccessKind::Load);
        assert!(outcome.caused_writeback());
        assert_eq!(cache.stats().writebacks, 1);
    }

    #[test]
    fn write_through_never_writes_back() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        for i in 0..64u64 {
            cache.access(Address::new(i * 32), AccessKind::Store);
            cache.access(Address::new(i * 32), AccessKind::Load);
        }
        assert_eq!(cache.stats().writebacks, 0);
    }

    #[test]
    fn reseed_flushes_contents() {
        let mut cache = small_cache(PlacementKind::RandomModulo, WritePolicy::WriteThrough);
        let addr = Address::new(0x40);
        cache.access(addr, AccessKind::Load);
        assert!(cache.contains(addr));
        cache.reseed(99);
        assert!(!cache.contains(addr));
        assert!(cache.access(addr, AccessKind::Load).is_miss());
        assert!(cache.stats().flushes >= 1);
    }

    #[test]
    fn flush_resets_occupancy() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        for i in 0..16u64 {
            cache.access(Address::new(i * 32), AccessKind::Load);
        }
        assert_eq!(cache.resident_lines(), 16);
        cache.flush();
        assert_eq!(cache.resident_lines(), 0);
    }

    #[test]
    fn working_set_fitting_in_cache_has_no_conflict_misses_with_modulo() {
        // 8 sets x 2 ways: 16 consecutive lines fit exactly; after the cold
        // pass every access must hit.
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        let lines: Vec<Address> = (0..16u64).map(|i| Address::new(i * 32)).collect();
        for &a in &lines {
            cache.access(a, AccessKind::Load);
        }
        cache.reset_stats();
        for _ in 0..10 {
            for &a in &lines {
                assert!(cache.access(a, AccessKind::Load).is_hit());
            }
        }
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn working_set_fitting_in_cache_has_no_conflict_misses_with_rm() {
        // The headline property of RM: consecutive lines that fit in the
        // cache never conflict, for any seed.
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        for seed in [1u64, 2, 3, 0xFFFF, 0xABCD_EF01] {
            let mut cache = SetAssocCache::with_kinds(
                geometry,
                PlacementKind::RandomModulo,
                ReplacementKind::Lru,
                WritePolicy::WriteThrough,
            )
            .unwrap();
            cache.reseed(seed);
            let lines: Vec<Address> = (0..16u64).map(|i| Address::new(i * 32)).collect();
            for &a in &lines {
                cache.access(a, AccessKind::Load);
            }
            cache.reset_stats();
            for _ in 0..5 {
                for &a in &lines {
                    cache.access(a, AccessKind::Load);
                }
            }
            assert_eq!(cache.stats().misses, 0, "seed {seed}");
        }
    }

    #[test]
    fn stats_display_and_ratios() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        cache.access(Address::new(0), AccessKind::Load);
        cache.access(Address::new(0), AccessKind::Load);
        let stats = cache.stats();
        assert!((stats.miss_ratio() - 0.5).abs() < 1e-12);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
        assert!(stats.to_string().contains("2 accesses"));
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn set_index_of_respects_placement() {
        let cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        assert_eq!(cache.set_index_of(Address::new(0)), 0);
        assert_eq!(cache.set_index_of(Address::new(32)), 1);
    }

    #[test]
    fn invalid_ways_are_filled_before_eviction() {
        let mut cache = small_cache(PlacementKind::Modulo, WritePolicy::WriteThrough);
        let a = Address::new(0);
        let b = Address::new(256);
        assert!(matches!(
            cache.access(a, AccessKind::Load),
            AccessOutcome::Miss { evicted: None, .. }
        ));
        assert!(matches!(
            cache.access(b, AccessKind::Load),
            AccessOutcome::Miss { evicted: None, .. }
        ));
        assert!(cache.contains(a) && cache.contains(b));
    }

    #[test]
    #[should_panic(expected = "does not match the cache geometry")]
    fn mismatched_placement_geometry_panics() {
        let g1 = CacheGeometry::new(8, 2, 32).unwrap();
        let g2 = CacheGeometry::new(16, 2, 32).unwrap();
        let placement = PlacementKind::Modulo.build(g2).unwrap();
        let _ = SetAssocCache::new(g1, placement, ReplacementKind::Lru, WritePolicy::WriteThrough);
    }

    #[test]
    fn random_replacement_cache_is_deterministic_per_seed() {
        let geometry = CacheGeometry::new(8, 2, 32).unwrap();
        let run = |seed: u64| -> (u64, u64) {
            let mut cache = SetAssocCache::with_kinds(
                geometry,
                PlacementKind::HashRandom,
                ReplacementKind::Random,
                WritePolicy::WriteThrough,
            )
            .unwrap();
            cache.reseed(seed);
            for i in 0..2000u64 {
                let addr = Address::new((i * 7919) % 4096 * 32);
                cache.access(addr, AccessKind::Load);
            }
            (cache.stats().hits, cache.stats().misses)
        };
        assert_eq!(run(42), run(42));
    }
}
