//! Hardware-style pseudo-random number generators.
//!
//! All random placement policies of the paper rely on a pseudo-random number
//! generator to draw a fresh seed before every program run.  The paper uses
//! the IEC-61508 SIL3-compliant PRNG of Agirre et al. (DSD 2015), which is a
//! small combination of linear feedback shift registers with low hardware
//! cost.  This module provides:
//!
//! * [`Lfsr32`] — a single Galois LFSR (the basic hardware building block),
//! * [`CombinedLfsr`] — a three-component combined Tausworthe/LFSR generator
//!   (the stand-in for the SIL3 PRNG: cheap in hardware, passes the MBPTA
//!   independence and identical-distribution tests),
//! * [`SplitMix64`] — a software seeder used to expand one user-provided seed
//!   into well-separated component seeds,
//! * [`SeedSequence`] — an iterator producing the per-run placement seeds of
//!   an MBPTA measurement campaign.

/// A 32-bit Galois linear feedback shift register.
///
/// The default feedback polynomial `0xA3AC183C` is maximal-length, giving a
/// period of 2^32 - 1 (the all-zero state is never reached because the state
/// is forced non-zero on construction).
///
/// ```
/// use randmod_core::prng::Lfsr32;
///
/// let mut lfsr = Lfsr32::new(0x1234_5678);
/// let a = lfsr.next_bit();
/// let b = lfsr.next_bit();
/// assert!(a == 0 || a == 1);
/// assert!(b == 0 || b == 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr32 {
    state: u32,
    taps: u32,
}

impl Lfsr32 {
    /// Default maximal-length feedback polynomial (taps) for 32 bits.
    pub const DEFAULT_TAPS: u32 = 0xA3AC_183C;

    /// Creates an LFSR with the default taps. A zero seed is mapped to a
    /// fixed non-zero state so the register never locks up.
    pub fn new(seed: u32) -> Self {
        Self::with_taps(seed, Self::DEFAULT_TAPS)
    }

    /// Creates an LFSR with an explicit feedback polynomial.
    pub fn with_taps(seed: u32, taps: u32) -> Self {
        let state = if seed == 0 { 0xBAD_5EED } else { seed };
        Lfsr32 { state, taps }
    }

    /// Advances the register by one step and returns the output bit (0 or 1).
    pub fn next_bit(&mut self) -> u32 {
        let out = self.state & 1;
        self.state >>= 1;
        if out == 1 {
            self.state ^= self.taps;
        }
        out
    }

    /// Advances the register by 32 steps and returns the collected word.
    pub fn next_u32(&mut self) -> u32 {
        let mut word = 0u32;
        for i in 0..32 {
            word |= self.next_bit() << i;
        }
        word
    }

    /// Returns the current register state.
    pub fn state(&self) -> u32 {
        self.state
    }
}

/// A combined three-component LFSR (Tausworthe) generator.
///
/// This is the reproduction's stand-in for the IEC-61508 SIL3 PRNG the paper
/// uses: three small maximal-length shift-register generators whose outputs
/// are XOR-combined.  It is cheap to implement in hardware (shift registers
/// and a handful of XOR gates) and of sufficient statistical quality for the
/// MBPTA i.i.d. tests (see the `prng_quality` tests and the Table 2
/// experiment).
///
/// ```
/// use randmod_core::prng::CombinedLfsr;
///
/// let mut prng = CombinedLfsr::new(42);
/// let x = prng.next_u32();
/// let y = prng.next_u32();
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinedLfsr {
    s1: u32,
    s2: u32,
    s3: u32,
}

impl CombinedLfsr {
    /// Creates a generator from a 64-bit seed.  The three component states
    /// are derived with [`SplitMix64`] so that nearby seeds yield unrelated
    /// streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // Component states must respect minimum values required by the
        // Tausworthe step (k bits of state must be non-zero).
        let s1 = (sm.next_u64() as u32) | 0x20;
        let s2 = (sm.next_u64() as u32) | 0x40;
        let s3 = (sm.next_u64() as u32) | 0x80;
        CombinedLfsr { s1, s2, s3 }
    }

    #[inline]
    fn taus_step(state: u32, s1: u32, s2: u32, s3: u32, m: u32) -> u32 {
        let b = ((state << s1) ^ state) >> s2;
        ((state & m) << s3) ^ b
    }

    /// Returns the next 32-bit pseudo-random word.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        self.s1 = Self::taus_step(self.s1, 13, 19, 12, 0xFFFF_FFFE);
        self.s2 = Self::taus_step(self.s2, 2, 25, 4, 0xFFFF_FFF8);
        self.s3 = Self::taus_step(self.s3, 3, 11, 17, 0xFFFF_FFF0);
        self.s1 ^ self.s2 ^ self.s3
    }

    /// Returns the next 64-bit pseudo-random word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses rejection sampling (Lemire-style threshold) so the distribution
    /// is unbiased for any bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be non-zero");
        if bound.is_power_of_two() {
            return self.next_u32() & (bound - 1);
        }
        // Rejection sampling on the top of the range to remove modulo bias.
        let zone = u32::MAX - (u32::MAX % bound) - 1;
        loop {
            let v = self.next_u32();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A structure-of-arrays bank of [`CombinedLfsr`] generators, one per seed
/// lane.
///
/// The lane-batched replay engine steps K independent cache hierarchies per
/// decoded trace op.  Keeping the three Tausworthe component states in three
/// contiguous arrays (instead of K scattered `CombinedLfsr` structs) lets a
/// miss wave draw its next-victim words for all missing lanes in one sweep
/// over adjacent memory, with the power-of-two fast path hoisted out of the
/// per-lane loop.
///
/// Each lane's stream is bit-identical to a standalone `CombinedLfsr` seeded
/// with the same value — the batched engine must consume random words in
/// exactly the per-lane order the scalar engine does, and only for lanes that
/// actually draw (a lane whose set has an invalid way never advances).
///
/// ```
/// use randmod_core::prng::{CombinedLfsr, CombinedLfsrLanes};
///
/// let mut bank = CombinedLfsrLanes::new(4);
/// bank.reseed_lane(2, 99);
/// let mut scalar = CombinedLfsr::new(99);
/// assert_eq!(bank.next_u32_lane(2), scalar.next_u32());
/// assert_eq!(bank.next_below_lane(2, 4), scalar.next_below(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinedLfsrLanes {
    s1: Vec<u32>,
    s2: Vec<u32>,
    s3: Vec<u32>,
}

impl CombinedLfsrLanes {
    /// Creates a bank of `lanes` generators, each seeded with its lane index.
    ///
    /// The engine reseeds every active lane before use; the initial states
    /// merely have to be valid Tausworthe states.
    pub fn new(lanes: usize) -> Self {
        let mut bank = CombinedLfsrLanes {
            s1: vec![0; lanes],
            s2: vec![0; lanes],
            s3: vec![0; lanes],
        };
        for lane in 0..lanes {
            bank.reseed_lane(lane, lane as u64);
        }
        bank
    }

    /// Number of lanes in the bank.
    pub fn lane_count(&self) -> usize {
        self.s1.len()
    }

    /// Re-derives lane `lane`'s component states from `seed`, exactly as
    /// [`CombinedLfsr::new`] does.
    pub fn reseed_lane(&mut self, lane: usize, seed: u64) {
        let mut sm = SplitMix64::new(seed);
        self.s1[lane] = (sm.next_u64() as u32) | 0x20;
        self.s2[lane] = (sm.next_u64() as u32) | 0x40;
        self.s3[lane] = (sm.next_u64() as u32) | 0x80;
    }

    /// Advances lane `lane` by one step and returns its next 32-bit word.
    #[inline]
    pub fn next_u32_lane(&mut self, lane: usize) -> u32 {
        let s1 = CombinedLfsr::taus_step(self.s1[lane], 13, 19, 12, 0xFFFF_FFFE);
        let s2 = CombinedLfsr::taus_step(self.s2[lane], 2, 25, 4, 0xFFFF_FFF8);
        let s3 = CombinedLfsr::taus_step(self.s3[lane], 3, 11, 17, 0xFFFF_FFF0);
        self.s1[lane] = s1;
        self.s2[lane] = s2;
        self.s3[lane] = s3;
        s1 ^ s2 ^ s3
    }

    /// Returns a uniformly distributed value in `0..bound` from lane `lane`,
    /// bit-identical to [`CombinedLfsr::next_below`].
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below_lane(&mut self, lane: usize, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be non-zero");
        if bound.is_power_of_two() {
            return self.next_u32_lane(lane) & (bound - 1);
        }
        let zone = u32::MAX - (u32::MAX % bound) - 1;
        loop {
            let v = self.next_u32_lane(lane);
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Draws one value in `0..bound` for each lane listed in `lanes`,
    /// writing the draw for `lanes[i]` into `out[i]`.
    ///
    /// This is the miss-wave entry point: the bound check and the
    /// power-of-two test are hoisted out of the loop, so the common case
    /// (power-of-two associativity) is a branch-free sweep of Tausworthe
    /// steps over adjacent lane states.  Lanes not listed do not advance.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero or `out` is shorter than `lanes`.
    pub fn next_below_lanes(&mut self, bound: u32, lanes: &[u32], out: &mut [u32]) {
        assert!(bound > 0, "bound must be non-zero");
        assert!(out.len() >= lanes.len(), "output buffer too short");
        if bound.is_power_of_two() {
            let mask = bound - 1;
            for (slot, &lane) in out.iter_mut().zip(lanes.iter()) {
                *slot = self.next_u32_lane(lane as usize) & mask;
            }
        } else {
            for (slot, &lane) in out.iter_mut().zip(lanes.iter()) {
                *slot = self.next_below_lane(lane as usize, bound);
            }
        }
    }
}

/// SplitMix64: a tiny, high-quality software generator used for seeding.
///
/// ```
/// use randmod_core::prng::SplitMix64;
///
/// let mut sm = SplitMix64::new(7);
/// assert_ne!(sm.next_u64(), sm.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given state.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Produces the sequence of per-run placement seeds of an MBPTA campaign.
///
/// The paper generates a fresh seed before every program execution; the
/// resulting cache layout is a pure function of that seed (and, for RM, of
/// the addresses).  `SeedSequence` mirrors this: it expands one campaign seed
/// into an arbitrary number of per-run seeds.
///
/// ```
/// use randmod_core::prng::SeedSequence;
///
/// let seeds: Vec<u64> = SeedSequence::new(1).take(3).collect();
/// assert_eq!(seeds.len(), 3);
/// assert_ne!(seeds[0], seeds[1]);
/// ```
#[derive(Debug, Clone)]
pub struct SeedSequence {
    inner: CombinedLfsr,
}

impl SeedSequence {
    /// Creates a sequence from a campaign-level seed.
    pub fn new(campaign_seed: u64) -> Self {
        SeedSequence {
            inner: CombinedLfsr::new(campaign_seed),
        }
    }
}

impl Iterator for SeedSequence {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.inner.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_zero_seed_does_not_lock_up() {
        let mut lfsr = Lfsr32::new(0);
        let first = lfsr.next_u32();
        let second = lfsr.next_u32();
        assert_ne!(first, 0);
        assert_ne!(first, second);
    }

    #[test]
    fn lfsr_is_deterministic() {
        let mut a = Lfsr32::new(99);
        let mut b = Lfsr32::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_bit(), b.next_bit());
        }
    }

    #[test]
    fn lfsr_state_changes() {
        let mut lfsr = Lfsr32::new(1);
        let s0 = lfsr.state();
        lfsr.next_u32();
        assert_ne!(lfsr.state(), s0);
    }

    #[test]
    fn lfsr_bit_balance_is_reasonable() {
        let mut lfsr = Lfsr32::new(0xACE1);
        let n = 100_000;
        let ones: u32 = (0..n).map(|_| lfsr.next_bit()).sum();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }

    #[test]
    fn combined_lfsr_deterministic_per_seed() {
        let mut a = CombinedLfsr::new(0xDEADBEEF);
        let mut b = CombinedLfsr::new(0xDEADBEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn combined_lfsr_different_seeds_diverge() {
        let mut a = CombinedLfsr::new(1);
        let mut b = CombinedLfsr::new(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn combined_lfsr_mean_is_centred() {
        let mut prng = CombinedLfsr::new(7);
        let n = 200_000u64;
        let sum: u64 = (0..n).map(|_| prng.next_u32() as u64).sum();
        let mean = sum as f64 / n as f64;
        let expected = (u32::MAX as f64) / 2.0;
        assert!(
            (mean - expected).abs() / expected < 0.01,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn next_below_is_in_range_and_covers_all_values() {
        let mut prng = CombinedLfsr::new(3);
        let bound = 7u32;
        let mut seen = vec![false; bound as usize];
        for _ in 0..10_000 {
            let v = prng.next_below(bound);
            assert!(v < bound);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_below_power_of_two_uniformity() {
        let mut prng = CombinedLfsr::new(11);
        let bound = 8u32;
        let mut counts = vec![0u32; bound as usize];
        let n = 80_000;
        for _ in 0..n {
            counts[prng.next_below(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() / expected < 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn next_below_zero_panics() {
        CombinedLfsr::new(1).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut prng = CombinedLfsr::new(5);
        for _ in 0..10_000 {
            let x = prng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values from the SplitMix64 reference implementation
        // seeded with 1234567.
        let mut sm = SplitMix64::new(1234567);
        let v = sm.next_u64();
        assert_eq!(v, 6457827717110365317);
    }

    #[test]
    fn seed_sequence_produces_distinct_seeds() {
        let seeds: Vec<u64> = SeedSequence::new(0xC0FFEE).take(1000).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "seed collision within 1000 runs");
    }

    #[test]
    fn seed_sequence_is_reproducible() {
        let a: Vec<u64> = SeedSequence::new(9).take(10).collect();
        let b: Vec<u64> = SeedSequence::new(9).take(10).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn lane_bank_matches_scalar_streams() {
        // Every lane of the SoA bank must reproduce a standalone
        // CombinedLfsr bit-for-bit, including the non-power-of-two
        // rejection-sampling path.
        let seeds = [0u64, 1, 0xDEAD_BEEF, u64::MAX, 42];
        let mut bank = CombinedLfsrLanes::new(seeds.len());
        let mut scalars: Vec<CombinedLfsr> = Vec::new();
        for (lane, &seed) in seeds.iter().enumerate() {
            bank.reseed_lane(lane, seed);
            scalars.push(CombinedLfsr::new(seed));
        }
        for step in 0..200 {
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                match step % 3 {
                    0 => assert_eq!(bank.next_u32_lane(lane), scalar.next_u32()),
                    1 => assert_eq!(bank.next_below_lane(lane, 4), scalar.next_below(4)),
                    _ => assert_eq!(bank.next_below_lane(lane, 7), scalar.next_below(7)),
                }
            }
        }
    }

    #[test]
    fn lane_bank_wave_draw_only_advances_listed_lanes() {
        let mut bank = CombinedLfsrLanes::new(4);
        for lane in 0..4 {
            bank.reseed_lane(lane, lane as u64 * 17 + 3);
        }
        let idle = bank.clone();
        let mut out = [0u32; 2];
        bank.next_below_lanes(8, &[1, 3], &mut out);
        let mut expect = idle.clone();
        assert_eq!(out[0], expect.next_below_lane(1, 8));
        assert_eq!(out[1], expect.next_below_lane(3, 8));
        // Lanes 0 and 2 must not have advanced.
        assert_eq!(bank.next_u32_lane(0), expect.next_u32_lane(0));
        assert_eq!(bank.next_u32_lane(2), expect.next_u32_lane(2));
        // Non-power-of-two bound routes through rejection sampling.
        let mut odd = [0u32; 1];
        bank.next_below_lanes(3, &[2], &mut odd);
        assert!(odd[0] < 3);
    }

    #[test]
    fn combined_lfsr_serial_correlation_is_low() {
        // Lag-1 serial correlation of the unit-interval output should be
        // close to zero for an acceptable generator.
        let mut prng = CombinedLfsr::new(0x5EED);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| prng.next_f64()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..n - 1 {
            num += (xs[i] - mean) * (xs[i + 1] - mean);
        }
        for x in &xs {
            den += (x - mean) * (x - mean);
        }
        let rho = num / den;
        assert!(rho.abs() < 0.02, "lag-1 correlation {rho}");
    }
}
