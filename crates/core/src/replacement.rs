//! Cache replacement policies.
//!
//! MBPTA-compliant cache designs combine random *placement* with random
//! *replacement* (the LEON-family processors the paper targets already ship
//! random-replacement caches).  This module provides the per-set replacement
//! state for:
//!
//! * [`ReplacementKind::Random`] — evict a uniformly random way (the
//!   MBPTA-compliant choice used throughout the paper's evaluation),
//! * [`ReplacementKind::Lru`] — least-recently-used, the conventional
//!   deterministic baseline,
//! * [`ReplacementKind::RoundRobin`] — a FIFO-like pointer per set, common
//!   in embedded cores (e.g. ARM Cortex-R configurations).

use crate::prng::CombinedLfsr;
use std::fmt;
use std::str::FromStr;

use crate::error::ConfigError;

/// Identifier of a replacement policy.
///
/// ```
/// use randmod_core::ReplacementKind;
///
/// assert!(ReplacementKind::Random.is_randomized());
/// assert!(!ReplacementKind::Lru.is_randomized());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReplacementKind {
    /// Evict a uniformly random way on a miss with a full set.
    Random,
    /// Evict the least recently used way.
    Lru,
    /// Evict ways in round-robin order (per-set pointer).
    RoundRobin,
}

impl ReplacementKind {
    /// All replacement kinds.
    pub const ALL: [ReplacementKind; 3] = [
        ReplacementKind::Random,
        ReplacementKind::Lru,
        ReplacementKind::RoundRobin,
    ];

    /// Whether victim selection consumes random numbers.
    pub const fn is_randomized(self) -> bool {
        matches!(self, ReplacementKind::Random)
    }
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReplacementKind::Random => "random",
            ReplacementKind::Lru => "lru",
            ReplacementKind::RoundRobin => "round-robin",
        };
        f.write_str(name)
    }
}

impl FromStr for ReplacementKind {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "random" | "rand" => Ok(ReplacementKind::Random),
            "lru" => Ok(ReplacementKind::Lru),
            "round-robin" | "roundrobin" | "fifo" => Ok(ReplacementKind::RoundRobin),
            other => Err(ConfigError::Inconsistent {
                reason: format!("unknown replacement policy '{other}'"),
            }),
        }
    }
}

/// Per-set replacement bookkeeping.
///
/// The state is deliberately small (a few bytes per set) to mirror the
/// hardware cost of the policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplacementSet {
    kind: ReplacementKind,
    ways: u32,
    /// For LRU: `age[w]` is the recency rank of way `w` (0 = most recent).
    /// For round-robin: `age[0]` holds the next victim pointer.
    age: Vec<u32>,
}

impl ReplacementSet {
    /// Creates replacement state for one set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(kind: ReplacementKind, ways: u32) -> Self {
        assert!(ways > 0, "a set needs at least one way");
        let age = match kind {
            ReplacementKind::Lru => (0..ways).collect(),
            ReplacementKind::RoundRobin => vec![0],
            ReplacementKind::Random => Vec::new(),
        };
        ReplacementSet { kind, ways, age }
    }

    /// The policy this state implements.
    pub fn kind(&self) -> ReplacementKind {
        self.kind
    }

    /// Notifies the policy that `way` was accessed (hit or fill).
    pub fn touch(&mut self, way: u32) {
        debug_assert!(way < self.ways);
        if self.kind == ReplacementKind::Lru {
            let old_rank = self.age[way as usize];
            for rank in self.age.iter_mut() {
                if *rank < old_rank {
                    *rank += 1;
                }
            }
            self.age[way as usize] = 0;
        }
    }

    /// Selects the way to evict when the set is full.
    ///
    /// Random replacement draws from `rng`; the other policies ignore it.
    pub fn victim(&mut self, rng: &mut CombinedLfsr) -> u32 {
        match self.kind {
            ReplacementKind::Random => rng.next_below(self.ways),
            ReplacementKind::Lru => {
                let (way, _) = self
                    .age
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &rank)| rank)
                    .expect("set has at least one way");
                way as u32
            }
            ReplacementKind::RoundRobin => {
                let way = self.age[0];
                self.age[0] = (way + 1) % self.ways;
                way
            }
        }
    }

    /// Resets the state (used when the cache is flushed on a seed change).
    pub fn reset(&mut self) {
        match self.kind {
            ReplacementKind::Lru => {
                for (w, rank) in self.age.iter_mut().enumerate() {
                    *rank = w as u32;
                }
            }
            ReplacementKind::RoundRobin => self.age[0] = 0,
            ReplacementKind::Random => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parsing_round_trips() {
        for kind in ReplacementKind::ALL {
            let parsed: ReplacementKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("mru".parse::<ReplacementKind>().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        ReplacementSet::new(ReplacementKind::Lru, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut set = ReplacementSet::new(ReplacementKind::Lru, 4);
        let mut rng = CombinedLfsr::new(1);
        // Touch ways in order 0, 1, 2, 3: way 0 is now the LRU.
        for w in 0..4 {
            set.touch(w);
        }
        assert_eq!(set.victim(&mut rng), 0);
        // Re-touch way 0; now way 1 is the LRU.
        set.touch(0);
        assert_eq!(set.victim(&mut rng), 1);
    }

    #[test]
    fn lru_reset_restores_initial_order() {
        let mut set = ReplacementSet::new(ReplacementKind::Lru, 4);
        let mut rng = CombinedLfsr::new(1);
        set.touch(3);
        set.touch(0);
        set.reset();
        // After reset, the highest-numbered way is the least recent again.
        assert_eq!(set.victim(&mut rng), 3);
    }

    #[test]
    fn round_robin_cycles_through_ways() {
        let mut set = ReplacementSet::new(ReplacementKind::RoundRobin, 4);
        let mut rng = CombinedLfsr::new(1);
        let victims: Vec<u32> = (0..8).map(|_| set.victim(&mut rng)).collect();
        assert_eq!(victims, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        set.reset();
        assert_eq!(set.victim(&mut rng), 0);
    }

    #[test]
    fn random_victims_cover_all_ways() {
        let mut set = ReplacementSet::new(ReplacementKind::Random, 4);
        let mut rng = CombinedLfsr::new(0xFEED);
        let mut counts = [0u32; 4];
        let draws = 40_000;
        for _ in 0..draws {
            counts[set.victim(&mut rng) as usize] += 1;
        }
        let expected = draws as f64 / 4.0;
        for (w, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() / expected < 0.05,
                "way {w} selected {c} times"
            );
        }
    }

    #[test]
    fn random_touch_is_a_no_op() {
        let mut set = ReplacementSet::new(ReplacementKind::Random, 2);
        let snapshot = set.clone();
        set.touch(1);
        assert_eq!(set, snapshot);
    }

    #[test]
    fn single_way_set_always_evicts_way_zero() {
        let mut rng = CombinedLfsr::new(2);
        for kind in ReplacementKind::ALL {
            let mut set = ReplacementSet::new(kind, 1);
            for _ in 0..10 {
                assert_eq!(set.victim(&mut rng), 0);
            }
        }
    }

    #[test]
    fn lru_two_way_alternation() {
        let mut set = ReplacementSet::new(ReplacementKind::Lru, 2);
        let mut rng = CombinedLfsr::new(3);
        set.touch(0);
        assert_eq!(set.victim(&mut rng), 1);
        set.touch(1);
        assert_eq!(set.victim(&mut rng), 0);
    }
}
