//! Cache replacement policies.
//!
//! MBPTA-compliant cache designs combine random *placement* with random
//! *replacement* (the LEON-family processors the paper targets already ship
//! random-replacement caches).  This module provides the per-set replacement
//! state for:
//!
//! * [`ReplacementKind::Random`] — evict a uniformly random way (the
//!   MBPTA-compliant choice used throughout the paper's evaluation),
//! * [`ReplacementKind::Lru`] — least-recently-used, the conventional
//!   deterministic baseline,
//! * [`ReplacementKind::RoundRobin`] — a FIFO-like pointer per set, common
//!   in embedded cores (e.g. ARM Cortex-R configurations).

use crate::prng::CombinedLfsr;
use std::fmt;
use std::str::FromStr;

use crate::error::ConfigError;

/// Identifier of a replacement policy.
///
/// ```
/// use randmod_core::ReplacementKind;
///
/// assert!(ReplacementKind::Random.is_randomized());
/// assert!(!ReplacementKind::Lru.is_randomized());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReplacementKind {
    /// Evict a uniformly random way on a miss with a full set.
    Random,
    /// Evict the least recently used way.
    Lru,
    /// Evict ways in round-robin order (per-set pointer).
    RoundRobin,
}

impl ReplacementKind {
    /// All replacement kinds.
    pub const ALL: [ReplacementKind; 3] = [
        ReplacementKind::Random,
        ReplacementKind::Lru,
        ReplacementKind::RoundRobin,
    ];

    /// Whether victim selection consumes random numbers.
    pub const fn is_randomized(self) -> bool {
        matches!(self, ReplacementKind::Random)
    }
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReplacementKind::Random => "random",
            ReplacementKind::Lru => "lru",
            ReplacementKind::RoundRobin => "round-robin",
        };
        f.write_str(name)
    }
}

impl FromStr for ReplacementKind {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "random" | "rand" => Ok(ReplacementKind::Random),
            "lru" => Ok(ReplacementKind::Lru),
            "round-robin" | "roundrobin" | "fifo" => Ok(ReplacementKind::RoundRobin),
            other => Err(ConfigError::Inconsistent {
                reason: format!("unknown replacement policy '{other}'"),
            }),
        }
    }
}

/// Per-set replacement bookkeeping.
///
/// The state is deliberately small (a few bytes per set) to mirror the
/// hardware cost of the policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplacementSet {
    kind: ReplacementKind,
    ways: u32,
    /// For LRU: `age[w]` is the recency rank of way `w` (0 = most recent).
    /// For round-robin: `age[0]` holds the next victim pointer.
    age: Vec<u32>,
}

impl ReplacementSet {
    /// Creates replacement state for one set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(kind: ReplacementKind, ways: u32) -> Self {
        assert!(ways > 0, "a set needs at least one way");
        let age = match kind {
            ReplacementKind::Lru => (0..ways).collect(),
            ReplacementKind::RoundRobin => vec![0],
            ReplacementKind::Random => Vec::new(),
        };
        ReplacementSet { kind, ways, age }
    }

    /// The policy this state implements.
    pub fn kind(&self) -> ReplacementKind {
        self.kind
    }

    /// Notifies the policy that `way` was accessed (hit or fill).
    pub fn touch(&mut self, way: u32) {
        debug_assert!(way < self.ways);
        if self.kind == ReplacementKind::Lru {
            let old_rank = self.age[way as usize];
            for rank in self.age.iter_mut() {
                if *rank < old_rank {
                    *rank += 1;
                }
            }
            self.age[way as usize] = 0;
        }
    }

    /// Selects the way to evict when the set is full.
    ///
    /// Random replacement draws from `rng`; the other policies ignore it.
    pub fn victim(&mut self, rng: &mut CombinedLfsr) -> u32 {
        match self.kind {
            ReplacementKind::Random => rng.next_below(self.ways),
            ReplacementKind::Lru => {
                let (way, _) = self
                    .age
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &rank)| rank)
                    .expect("set has at least one way");
                way as u32
            }
            ReplacementKind::RoundRobin => {
                let way = self.age[0];
                self.age[0] = (way + 1) % self.ways;
                way
            }
        }
    }

    /// Resets the state (used when the cache is flushed on a seed change).
    pub fn reset(&mut self) {
        match self.kind {
            ReplacementKind::Lru => {
                for (w, rank) in self.age.iter_mut().enumerate() {
                    *rank = w as u32;
                }
            }
            ReplacementKind::RoundRobin => self.age[0] = 0,
            ReplacementKind::Random => {}
        }
    }
}

/// Whole-cache replacement bookkeeping in one flat allocation.
///
/// [`ReplacementSet`] keeps one heap allocation per set, which scatters the
/// replay hot path across the heap.  `ReplacementState` stores the state of
/// *every* set contiguously, indexed by `set * ways + way` (LRU) or `set`
/// (round-robin), so a whole cache's replacement metadata is one `Vec<u32>`
/// that stays resident in a few cache lines.  Behaviour is identical to a
/// `ReplacementSet` per set, which is what keeps the data-oriented cache
/// model bit-exact with the original nested layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplacementState {
    kind: ReplacementKind,
    sets: u32,
    ways: u32,
    /// LRU: `state[set * ways + way]` is the recency rank of that way
    /// (0 = most recent).  Round-robin: `state[set]` is the next victim.
    /// Random: empty.
    state: Vec<u32>,
}

impl ReplacementState {
    /// Creates flat replacement state for a cache of `sets` x `ways` lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(kind: ReplacementKind, sets: u32, ways: u32) -> Self {
        assert!(sets > 0, "a cache needs at least one set");
        assert!(ways > 0, "a set needs at least one way");
        let state = match kind {
            ReplacementKind::Lru => (0..sets)
                .flat_map(|_| 0..ways)
                .collect(),
            ReplacementKind::RoundRobin => vec![0; sets as usize],
            ReplacementKind::Random => Vec::new(),
        };
        ReplacementState {
            kind,
            sets,
            ways,
            state,
        }
    }

    /// The policy this state implements.
    pub fn kind(&self) -> ReplacementKind {
        self.kind
    }

    /// Notifies the policy that `way` of `set` was accessed (hit or fill).
    #[inline]
    pub fn touch(&mut self, set: u32, way: u32) {
        debug_assert!(set < self.sets && way < self.ways);
        if self.kind == ReplacementKind::Lru {
            let base = (set * self.ways) as usize;
            let ranks = &mut self.state[base..base + self.ways as usize];
            let old_rank = ranks[way as usize];
            for rank in ranks.iter_mut() {
                if *rank < old_rank {
                    *rank += 1;
                }
            }
            ranks[way as usize] = 0;
        }
    }

    /// Selects the way of `set` to evict when the set is full.
    ///
    /// Random replacement draws from `rng`; the other policies ignore it.
    #[inline]
    pub fn victim(&mut self, set: u32, rng: &mut CombinedLfsr) -> u32 {
        self.victim_with(set, |ways| rng.next_below(ways))
    }

    /// Selects the way of `set` to evict, drawing any random word from the
    /// caller-supplied `draw` closure (called with the way count, at most
    /// once, and only under [`ReplacementKind::Random`]).
    ///
    /// The lane-batched engine keeps one PRNG *bank* for all seed lanes, so
    /// it cannot hand over a `&mut CombinedLfsr`; routing both engines
    /// through this one implementation keeps every policy detail — including
    /// LRU's choice among equal ranks — in exactly one place.
    #[inline]
    pub fn victim_with(&mut self, set: u32, draw: impl FnOnce(u32) -> u32) -> u32 {
        debug_assert!(set < self.sets);
        match self.kind {
            ReplacementKind::Random => draw(self.ways),
            ReplacementKind::Lru => {
                let base = (set * self.ways) as usize;
                let ranks = &self.state[base..base + self.ways as usize];
                let (way, _) = ranks
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &rank)| rank)
                    .expect("set has at least one way");
                way as u32
            }
            ReplacementKind::RoundRobin => {
                let pointer = &mut self.state[set as usize];
                let way = *pointer;
                *pointer = (way + 1) % self.ways;
                way
            }
        }
    }

    /// Resets every set's state (used when the cache is flushed on a seed
    /// change).
    pub fn reset(&mut self) {
        match self.kind {
            ReplacementKind::Lru => {
                let ways = self.ways;
                for (i, rank) in self.state.iter_mut().enumerate() {
                    *rank = i as u32 % ways;
                }
            }
            ReplacementKind::RoundRobin => self.state.fill(0),
            ReplacementKind::Random => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parsing_round_trips() {
        for kind in ReplacementKind::ALL {
            let parsed: ReplacementKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("mru".parse::<ReplacementKind>().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        ReplacementSet::new(ReplacementKind::Lru, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut set = ReplacementSet::new(ReplacementKind::Lru, 4);
        let mut rng = CombinedLfsr::new(1);
        // Touch ways in order 0, 1, 2, 3: way 0 is now the LRU.
        for w in 0..4 {
            set.touch(w);
        }
        assert_eq!(set.victim(&mut rng), 0);
        // Re-touch way 0; now way 1 is the LRU.
        set.touch(0);
        assert_eq!(set.victim(&mut rng), 1);
    }

    #[test]
    fn lru_reset_restores_initial_order() {
        let mut set = ReplacementSet::new(ReplacementKind::Lru, 4);
        let mut rng = CombinedLfsr::new(1);
        set.touch(3);
        set.touch(0);
        set.reset();
        // After reset, the highest-numbered way is the least recent again.
        assert_eq!(set.victim(&mut rng), 3);
    }

    #[test]
    fn round_robin_cycles_through_ways() {
        let mut set = ReplacementSet::new(ReplacementKind::RoundRobin, 4);
        let mut rng = CombinedLfsr::new(1);
        let victims: Vec<u32> = (0..8).map(|_| set.victim(&mut rng)).collect();
        assert_eq!(victims, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        set.reset();
        assert_eq!(set.victim(&mut rng), 0);
    }

    #[test]
    fn random_victims_cover_all_ways() {
        let mut set = ReplacementSet::new(ReplacementKind::Random, 4);
        let mut rng = CombinedLfsr::new(0xFEED);
        let mut counts = [0u32; 4];
        let draws = 40_000;
        for _ in 0..draws {
            counts[set.victim(&mut rng) as usize] += 1;
        }
        let expected = draws as f64 / 4.0;
        for (w, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() / expected < 0.05,
                "way {w} selected {c} times"
            );
        }
    }

    #[test]
    fn random_touch_is_a_no_op() {
        let mut set = ReplacementSet::new(ReplacementKind::Random, 2);
        let snapshot = set.clone();
        set.touch(1);
        assert_eq!(set, snapshot);
    }

    #[test]
    fn single_way_set_always_evicts_way_zero() {
        let mut rng = CombinedLfsr::new(2);
        for kind in ReplacementKind::ALL {
            let mut set = ReplacementSet::new(kind, 1);
            for _ in 0..10 {
                assert_eq!(set.victim(&mut rng), 0);
            }
        }
    }

    #[test]
    fn lru_two_way_alternation() {
        let mut set = ReplacementSet::new(ReplacementKind::Lru, 2);
        let mut rng = CombinedLfsr::new(3);
        set.touch(0);
        assert_eq!(set.victim(&mut rng), 1);
        set.touch(1);
        assert_eq!(set.victim(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn flat_state_zero_sets_panics() {
        ReplacementState::new(ReplacementKind::Lru, 0, 2);
    }

    #[test]
    fn flat_state_matches_per_set_state() {
        // The flat layout must reproduce the per-set ReplacementSet
        // behaviour exactly for every policy, including after resets.
        let sets = 4u32;
        let ways = 4u32;
        for kind in ReplacementKind::ALL {
            let mut flat = ReplacementState::new(kind, sets, ways);
            let mut nested: Vec<ReplacementSet> =
                (0..sets).map(|_| ReplacementSet::new(kind, ways)).collect();
            assert_eq!(flat.kind(), kind);
            // Two independent RNGs seeded identically so Random replacement
            // draws the same victims on both sides.
            let mut rng_a = CombinedLfsr::new(77);
            let mut rng_b = CombinedLfsr::new(77);
            let mut driver = CombinedLfsr::new(5);
            for step in 0..500 {
                let set = driver.next_below(sets);
                let way = driver.next_below(ways);
                flat.touch(set, way);
                nested[set as usize].touch(way);
                assert_eq!(
                    flat.victim(set, &mut rng_a),
                    nested[set as usize].victim(&mut rng_b),
                    "diverged at step {step} (kind {kind})"
                );
                if step % 97 == 0 {
                    flat.reset();
                    for set in nested.iter_mut() {
                        set.reset();
                    }
                }
            }
        }
    }
}
