//! # randmod-core
//!
//! Core library of the *Random Modulo* reproduction (Hernández et al.,
//! DAC 2016): MBPTA-compliant cache placement policies and the
//! set-associative cache model they plug into.
//!
//! The crate provides:
//!
//! * [`CacheGeometry`] and [`Address`] — cache dimensioning and address
//!   bit-field arithmetic (offset / index / tag / cache segment).
//! * [`prng`] — hardware-style pseudo-random number generators used to draw
//!   the per-run placement seeds (a combined-LFSR generator in the spirit of
//!   the IEC-61508 SIL3 PRNG the paper relies on).
//! * [`benes`] — a general Benes permutation network with a routing
//!   algorithm, the hardware substrate of Random Modulo.
//! * [`placement`] — the placement policies compared in the paper:
//!   deterministic modulo, deterministic XOR hashing, hash-based random
//!   placement (hRP) and Random Modulo (RM).
//! * [`replacement`] — random / LRU / round-robin replacement.
//! * [`cache`] — a set-associative cache model with pluggable placement and
//!   replacement, per-access outcomes and statistics.
//! * [`layout`] — cache-layout census utilities (conflict counting,
//!   per-set occupancy) used by the analysis figures and the test-suite.
//!
//! ## Quick example
//!
//! ```
//! use randmod_core::{CacheGeometry, Address, PlacementKind, ReplacementKind};
//! use randmod_core::cache::{SetAssocCache, AccessKind, WritePolicy};
//!
//! # fn main() -> Result<(), randmod_core::ConfigError> {
//! // LEON3-like 16KB, 4-way, 32-byte-line first-level cache.
//! let geometry = CacheGeometry::new(128, 4, 32)?;
//! let mut cache = SetAssocCache::new(
//!     geometry,
//!     PlacementKind::RandomModulo.build(geometry)?,
//!     ReplacementKind::Random,
//!     WritePolicy::WriteThrough,
//! );
//! cache.reseed(0xDEAD_BEEF_CAFE_F00D);
//! let outcome = cache.access(Address::new(0x4000_1040), AccessKind::Load);
//! assert!(outcome.is_miss());
//! let outcome = cache.access(Address::new(0x4000_1040), AccessKind::Load);
//! assert!(outcome.is_hit());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod benes;
pub mod cache;
pub mod error;
pub mod layout;
#[warn(clippy::unwrap_used, clippy::expect_used)]
pub mod placement;
pub mod prng;
pub mod replacement;

pub use address::{Address, CacheGeometry, LineAddr};
pub use cache::{
    AccessFlags, AccessKind, AccessOutcome, CacheStats, SetAssocCache, SetAssocCacheLanes,
    WritePolicy,
};
pub use error::ConfigError;
pub use placement::{
    HashRandomPlacement, ModuloPlacement, Placement, PlacementKind, PlacementLanes,
    PlacementPolicy, RandomModuloPlacement, XorPlacement,
};
pub use prng::{CombinedLfsr, CombinedLfsrLanes, SeedSequence, SplitMix64};
pub use replacement::{ReplacementKind, ReplacementState};
