//! Cache-layout census utilities.
//!
//! A *cache layout* is the assignment of a program's addresses to cache sets
//! under one placement seed.  The paper's argument hinges on how layouts are
//! distributed: with modulo placement the layout is fixed by the memory
//! mapping, with hRP a few lines can pile up in one set with non-negligible
//! probability, and with RM lines of the same cache segment never collide.
//! The functions in this module quantify those effects for a given set of
//! line addresses, and back both the analysis figures and the test-suite.

use crate::address::{CacheGeometry, LineAddr};
use crate::placement::PlacementPolicy;

/// The census of one cache layout: how many of the surveyed lines each set
/// received.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutCensus {
    counts: Vec<u32>,
    lines: usize,
    ways: u32,
}

impl LayoutCensus {
    /// Surveys the layout the placement policy currently assigns to `lines`.
    pub fn survey(policy: &dyn PlacementPolicy, lines: &[LineAddr]) -> Self {
        let geometry = policy.geometry();
        let mut counts = vec![0u32; geometry.sets() as usize];
        for &line in lines {
            counts[policy.set_index_of_line(line) as usize] += 1;
        }
        LayoutCensus {
            counts,
            lines: lines.len(),
            ways: geometry.ways(),
        }
    }

    /// Number of lines surveyed.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Per-set line counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The largest number of lines mapped to any single set.
    pub fn max_lines_in_a_set(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Number of sets that received more lines than they have ways — the
    /// sets where conflict misses are inevitable if all lines are live.
    pub fn overcommitted_sets(&self) -> u32 {
        self.counts.iter().filter(|&&c| c > self.ways).count() as u32
    }

    /// Total number of lines in excess of capacity across all sets, i.e. a
    /// lower bound on the number of lines that cannot be simultaneously
    /// resident under this layout.
    pub fn excess_lines(&self) -> u32 {
        self.counts
            .iter()
            .map(|&c| c.saturating_sub(self.ways))
            .sum()
    }

    /// Number of sets that received no line at all.
    pub fn empty_sets(&self) -> u32 {
        self.counts.iter().filter(|&&c| c == 0).count() as u32
    }

    /// Shannon entropy (in bits) of the line-over-set distribution.  Higher
    /// is more balanced; the maximum is `log2(sets)` when every set receives
    /// the same number of lines.
    pub fn entropy_bits(&self) -> f64 {
        if self.lines == 0 {
            return 0.0;
        }
        let total = self.lines as f64;
        self.counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.log2()
            })
            .sum()
    }
}

/// Counts, among all pairs of the given lines that belong to the same cache
/// segment and have distinct modulo indices, how many are mapped to the same
/// set by the policy's current layout.
///
/// By construction this is always zero for modulo placement and for Random
/// Modulo (the paper's defining property), while hash-based random placement
/// yields a non-zero count with probability that grows with the footprint.
pub fn intra_segment_conflicts(policy: &dyn PlacementPolicy, lines: &[LineAddr]) -> u64 {
    let geometry = policy.geometry();
    let mut conflicts = 0u64;
    for (i, &a) in lines.iter().enumerate() {
        for &b in &lines[i + 1..] {
            if geometry.segment_of_line(a) == geometry.segment_of_line(b)
                && geometry.modulo_index_of_line(a) != geometry.modulo_index_of_line(b)
                && policy.set_index_of_line(a) == policy.set_index_of_line(b)
            {
                conflicts += 1;
            }
        }
    }
    conflicts
}

/// Builds the list of consecutive line addresses covering `footprint_bytes`
/// starting at `base_line`, the typical shape of the code and data regions
/// the paper's argument is about.
pub fn consecutive_lines(
    geometry: &CacheGeometry,
    base_line: LineAddr,
    footprint_bytes: u64,
) -> Vec<LineAddr> {
    let count = footprint_bytes.div_ceil(geometry.line_size() as u64);
    (0..count).map(|i| base_line.offset(i)).collect()
}

/// Estimates, by Monte-Carlo over `seeds`, the probability that the layout
/// assigned to `lines` has at least one set holding more lines than it has
/// ways (the cache-risk-pattern probability the paper discusses).
pub fn overcommit_probability(
    policy: &mut dyn PlacementPolicy,
    lines: &[LineAddr],
    seeds: impl IntoIterator<Item = u64>,
) -> f64 {
    let mut runs = 0u64;
    let mut bad = 0u64;
    for seed in seeds {
        policy.reseed(seed);
        runs += 1;
        if LayoutCensus::survey(policy, lines).overcommitted_sets() > 0 {
            bad += 1;
        }
    }
    if runs == 0 {
        0.0
    } else {
        bad as f64 / runs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::CacheGeometry;
    use crate::placement::PlacementKind;
    use crate::prng::SeedSequence;

    fn l1() -> CacheGeometry {
        CacheGeometry::leon3_l1()
    }

    fn lines_for(footprint: u64) -> Vec<LineAddr> {
        consecutive_lines(&l1(), LineAddr::new(0x20_0000), footprint)
    }

    #[test]
    fn consecutive_lines_counts() {
        let lines = consecutive_lines(&l1(), LineAddr::new(0), 8 * 1024);
        assert_eq!(lines.len(), 256);
        assert_eq!(lines[0], LineAddr::new(0));
        assert_eq!(lines[255], LineAddr::new(255));
        // Partial last line still allocates a line.
        assert_eq!(consecutive_lines(&l1(), LineAddr::new(0), 33).len(), 2);
    }

    #[test]
    fn modulo_census_of_fitting_footprint_is_flat() {
        let policy = PlacementKind::Modulo.build(l1()).unwrap();
        // Exactly one way's worth of consecutive lines: one line per set.
        let lines = lines_for(4 * 1024);
        let census = LayoutCensus::survey(policy.as_ref(), &lines);
        assert_eq!(census.lines(), 128);
        assert_eq!(census.max_lines_in_a_set(), 1);
        assert_eq!(census.overcommitted_sets(), 0);
        assert_eq!(census.empty_sets(), 0);
        assert_eq!(census.excess_lines(), 0);
        assert!((census.entropy_bits() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn rm_census_of_fitting_footprint_is_flat_for_any_seed() {
        let mut policy = PlacementKind::RandomModulo.build(l1()).unwrap();
        let lines = lines_for(16 * 1024); // the whole cache: 4 lines per set
        for seed in SeedSequence::new(5).take(25) {
            policy.reseed(seed);
            let census = LayoutCensus::survey(policy.as_ref(), &lines);
            assert_eq!(census.max_lines_in_a_set(), 4, "seed {seed}");
            assert_eq!(census.overcommitted_sets(), 0, "seed {seed}");
        }
    }

    #[test]
    fn hrp_census_of_fitting_footprint_is_sometimes_overcommitted() {
        // The motivation for RM: with hRP, even a footprint that fits in the
        // cache produces layouts with overcommitted sets with non-negligible
        // probability.
        let mut policy = PlacementKind::HashRandom.build(l1()).unwrap();
        let lines = lines_for(8 * 1024); // half the cache
        let p = overcommit_probability(policy.as_mut(), &lines, SeedSequence::new(3).take(400));
        assert!(p > 0.05, "overcommit probability {p} unexpectedly low");
    }

    #[test]
    fn rm_overcommit_probability_is_zero_while_fitting() {
        let mut policy = PlacementKind::RandomModulo.build(l1()).unwrap();
        let lines = lines_for(16 * 1024);
        let p = overcommit_probability(policy.as_mut(), &lines, SeedSequence::new(3).take(200));
        assert_eq!(p, 0.0);
    }

    #[test]
    fn intra_segment_conflicts_zero_for_modulo_and_rm() {
        let lines = lines_for(4 * 1024);
        for kind in [PlacementKind::Modulo, PlacementKind::RandomModulo] {
            let mut policy = kind.build(l1()).unwrap();
            for seed in SeedSequence::new(11).take(10) {
                policy.reseed(seed);
                assert_eq!(
                    intra_segment_conflicts(policy.as_ref(), &lines),
                    0,
                    "{kind} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn intra_segment_conflicts_occur_for_hrp() {
        let lines = lines_for(4 * 1024);
        let mut policy = PlacementKind::HashRandom.build(l1()).unwrap();
        let mut total = 0u64;
        for seed in SeedSequence::new(13).take(50) {
            policy.reseed(seed);
            total += intra_segment_conflicts(policy.as_ref(), &lines);
        }
        assert!(total > 0, "hRP never produced an intra-segment conflict in 50 seeds");
    }

    #[test]
    fn entropy_of_degenerate_layout_is_zero() {
        let policy = PlacementKind::Modulo.build(l1()).unwrap();
        // All lines in the same set: stride of one way size.
        let lines: Vec<LineAddr> = (0..8u64).map(|i| LineAddr::new(i * 128)).collect();
        let census = LayoutCensus::survey(policy.as_ref(), &lines);
        assert_eq!(census.max_lines_in_a_set(), 8);
        assert_eq!(census.overcommitted_sets(), 1);
        assert_eq!(census.excess_lines(), 4);
        assert_eq!(census.entropy_bits(), 0.0);
        assert_eq!(census.empty_sets(), 127);
    }

    #[test]
    fn empty_survey_is_well_behaved() {
        let policy = PlacementKind::Modulo.build(l1()).unwrap();
        let census = LayoutCensus::survey(policy.as_ref(), &[]);
        assert_eq!(census.lines(), 0);
        assert_eq!(census.max_lines_in_a_set(), 0);
        assert_eq!(census.entropy_bits(), 0.0);
        assert_eq!(overcommit_probability(
            PlacementKind::Modulo.build(l1()).unwrap().as_mut(),
            &[],
            std::iter::empty(),
        ), 0.0);
    }

    #[test]
    fn census_counts_slice_length_matches_sets() {
        let policy = PlacementKind::Xor.build(l1()).unwrap();
        let census = LayoutCensus::survey(policy.as_ref(), &lines_for(1024));
        assert_eq!(census.counts().len(), 128);
    }
}
