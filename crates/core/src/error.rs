//! Error types for cache and placement configuration.

use std::error::Error;
use std::fmt;

/// Error produced while validating a cache or placement configuration.
///
/// ```
/// use randmod_core::{CacheGeometry, ConfigError};
///
/// let err = CacheGeometry::new(100, 4, 32).unwrap_err();
/// assert!(matches!(err, ConfigError::NotPowerOfTwo { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A parameter that must be a power of two is not.
    NotPowerOfTwo {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// The value that was provided.
        value: u64,
    },
    /// A parameter that must be non-zero is zero.
    Zero {
        /// Name of the offending parameter.
        parameter: &'static str,
    },
    /// A parameter exceeds the supported range.
    OutOfRange {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// The value that was provided.
        value: u64,
        /// The maximum supported value.
        max: u64,
    },
    /// Two parameters are mutually inconsistent.
    Inconsistent {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { parameter, value } => {
                write!(f, "{parameter} must be a power of two, got {value}")
            }
            ConfigError::Zero { parameter } => write!(f, "{parameter} must be non-zero"),
            ConfigError::OutOfRange {
                parameter,
                value,
                max,
            } => write!(f, "{parameter} is {value}, which exceeds the maximum of {max}"),
            ConfigError::Inconsistent { reason } => write!(f, "inconsistent configuration: {reason}"),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_not_power_of_two() {
        let err = ConfigError::NotPowerOfTwo {
            parameter: "sets",
            value: 100,
        };
        assert_eq!(err.to_string(), "sets must be a power of two, got 100");
    }

    #[test]
    fn display_zero() {
        let err = ConfigError::Zero { parameter: "ways" };
        assert_eq!(err.to_string(), "ways must be non-zero");
    }

    #[test]
    fn display_out_of_range() {
        let err = ConfigError::OutOfRange {
            parameter: "index bits",
            value: 40,
            max: 32,
        };
        assert_eq!(err.to_string(), "index bits is 40, which exceeds the maximum of 32");
    }

    #[test]
    fn display_inconsistent() {
        let err = ConfigError::Inconsistent {
            reason: "line size larger than way size".to_string(),
        };
        assert!(err.to_string().contains("line size larger than way size"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
