//! Cache placement policies: modulo, deterministic XOR hashing, hash-based
//! random placement (hRP) and Random Modulo (RM).
//!
//! A *placement policy* decides which cache set a memory address is mapped
//! to.  The paper compares:
//!
//! * [`ModuloPlacement`] — the conventional design: the set index is simply
//!   the low bits of the line address.  Contiguous lines never conflict while
//!   they fit in one way, but the cache layout is a deterministic function of
//!   where the program is placed in memory, which makes measurement-based
//!   timing analysis fragile (cache risk patterns may never show up in the
//!   analysis runs).
//! * [`XorPlacement`] — a deterministic XOR-folding hash (related work
//!   [González et al., ICS'97]).  It removes some pathological patterns but
//!   is still deterministic, hence not MBPTA-compliant.
//! * [`HashRandomPlacement`] (hRP) — the existing MBPTA-compliant design:
//!   a parametric hash of *all* upper address bits and a per-run random
//!   seed, built from rotate blocks and XOR gates.  Every address is mapped
//!   (pseudo-)uniformly to any set, so even a handful of contiguous lines
//!   can collide in the same set with non-negligible probability.
//! * [`RandomModuloPlacement`] (RM) — the paper's contribution: a per-run,
//!   per-segment *permutation* of the modulo index bits implemented with a
//!   Benes network whose control word is derived from the upper address bits
//!   and the seed.  Within one cache segment the mapping stays a bijection,
//!   so spatial locality is preserved exactly like modulo, while layouts
//!   still change randomly across runs as MBPTA requires.

use crate::address::{Address, CacheGeometry, LineAddr};
use crate::benes::BenesNetwork;
use crate::error::ConfigError;
use crate::prng::SplitMix64;
use std::fmt;
use std::str::FromStr;

/// Common interface of all placement policies.
///
/// Implementations are deterministic functions of `(line address, seed)`:
/// re-installing the same seed always reproduces the same cache layout,
/// which is what lets MBPTA reason probabilistically about layouts.
pub trait PlacementPolicy: fmt::Debug + Send + Sync {
    /// The geometry this policy was built for.
    fn geometry(&self) -> CacheGeometry;

    /// Maps a line address to a set index in `0..sets`.
    fn set_index_of_line(&self, line: LineAddr) -> u32;

    /// Maps a byte address to a set index in `0..sets`.
    fn set_index(&self, addr: Address) -> u32 {
        self.set_index_of_line(self.geometry().line_addr(addr))
    }

    /// Installs a new random seed, i.e. selects a new cache layout.
    /// Deterministic policies ignore the seed.
    fn reseed(&mut self, seed: u64);

    /// The currently installed seed.
    fn seed(&self) -> u64;

    /// Which policy this is.
    fn kind(&self) -> PlacementKind;

    /// Whether the layout depends on the seed (i.e. the policy is
    /// time-randomised and therefore a candidate for MBPTA).
    fn is_randomized(&self) -> bool {
        self.kind().is_randomized()
    }

    /// Whether the set index must be stored alongside the tag because it
    /// cannot be reconstructed from the tag bits alone (true for hRP; false
    /// for modulo and, on write-through caches, for RM).
    fn stores_index_in_tag(&self) -> bool {
        self.kind().stores_index_in_tag()
    }

    /// Clones the policy into a new boxed trait object.
    fn clone_box(&self) -> Box<dyn PlacementPolicy>;
}

impl Clone for Box<dyn PlacementPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Identifier of a placement policy, used to configure caches and
/// experiments.
///
/// ```
/// use randmod_core::{PlacementKind, CacheGeometry};
///
/// # fn main() -> Result<(), randmod_core::ConfigError> {
/// let policy = PlacementKind::RandomModulo.build(CacheGeometry::leon3_l1())?;
/// assert!(policy.is_randomized());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlacementKind {
    /// Conventional modulo placement (deterministic).
    Modulo,
    /// Deterministic XOR-folding hash placement.
    Xor,
    /// Hash-based random placement (hRP).
    HashRandom,
    /// Random Modulo placement (RM) — the paper's contribution.
    RandomModulo,
}

impl PlacementKind {
    /// All policy kinds, in the order used throughout the experiments.
    pub const ALL: [PlacementKind; 4] = [
        PlacementKind::Modulo,
        PlacementKind::Xor,
        PlacementKind::HashRandom,
        PlacementKind::RandomModulo,
    ];

    /// Whether the policy's layout depends on the per-run seed.
    pub const fn is_randomized(self) -> bool {
        matches!(self, PlacementKind::HashRandom | PlacementKind::RandomModulo)
    }

    /// Whether the policy requires index bits to be stored in the tag array
    /// (needed when the index is not a pure function of the tag bits and the
    /// set the line sits in).
    pub const fn stores_index_in_tag(self) -> bool {
        matches!(self, PlacementKind::HashRandom)
    }

    /// Short name used in experiment output.
    pub const fn short_name(self) -> &'static str {
        match self {
            PlacementKind::Modulo => "MOD",
            PlacementKind::Xor => "XOR",
            PlacementKind::HashRandom => "hRP",
            PlacementKind::RandomModulo => "RM",
        }
    }

    /// Builds a boxed policy instance for the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the geometry cannot support the policy
    /// (currently never: all supported geometries work with all policies).
    pub fn build(self, geometry: CacheGeometry) -> Result<Box<dyn PlacementPolicy>, ConfigError> {
        Ok(match self {
            PlacementKind::Modulo => Box::new(ModuloPlacement::new(geometry)),
            PlacementKind::Xor => Box::new(XorPlacement::new(geometry)),
            PlacementKind::HashRandom => Box::new(HashRandomPlacement::new(geometry)),
            PlacementKind::RandomModulo => Box::new(RandomModuloPlacement::new(geometry)),
        })
    }
}

impl fmt::Display for PlacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PlacementKind::Modulo => "modulo",
            PlacementKind::Xor => "xor",
            PlacementKind::HashRandom => "hrp",
            PlacementKind::RandomModulo => "random-modulo",
        };
        f.write_str(name)
    }
}

impl FromStr for PlacementKind {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "modulo" | "mod" => Ok(PlacementKind::Modulo),
            "xor" => Ok(PlacementKind::Xor),
            "hrp" | "hash" | "hash-random" => Ok(PlacementKind::HashRandom),
            "rm" | "random-modulo" | "randommodulo" => Ok(PlacementKind::RandomModulo),
            other => Err(ConfigError::Inconsistent {
                reason: format!("unknown placement policy '{other}'"),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Static dispatch
// ---------------------------------------------------------------------------

/// A placement policy with *static* dispatch over the four built-in
/// designs, used on the replay hot path.
///
/// [`SetAssocCache`](crate::cache::SetAssocCache) performs one placement
/// lookup per access; through a `Box<dyn PlacementPolicy>` that lookup is an
/// indirect call the CPU cannot inline or predict well.  `Placement` is a
/// plain enum over the concrete policy types, so `set_index_of_line` is a
/// direct, inlinable match — the compiler monomorphizes the whole cache
/// access for each variant.
///
/// The [`PlacementPolicy`] trait remains the public extension point:
/// `Placement::Custom` adapts any boxed implementation (at the old virtual-
/// call cost), via [`From<Box<dyn PlacementPolicy>>`].
///
/// ```
/// use randmod_core::{Placement, PlacementKind, CacheGeometry, Address};
///
/// # fn main() -> Result<(), randmod_core::ConfigError> {
/// let mut placement = Placement::new(PlacementKind::RandomModulo, CacheGeometry::leon3_l1())?;
/// placement.reseed(7);
/// assert!(placement.set_index(Address::new(0x4000_0000)) < 128);
/// assert_eq!(placement.kind(), PlacementKind::RandomModulo);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub enum Placement {
    /// Conventional modulo placement.
    Modulo(ModuloPlacement),
    /// Deterministic XOR-folding placement.
    Xor(XorPlacement),
    /// Hash-based random placement (hRP).
    HashRandom(HashRandomPlacement),
    /// Random Modulo placement (RM).
    RandomModulo(RandomModuloPlacement),
    /// An externally provided policy, dispatched through the trait object
    /// (the extension point for policies outside this crate).
    Custom(Box<dyn PlacementPolicy>),
}

impl Placement {
    /// Builds the statically dispatched policy for `kind` on `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the geometry cannot support the policy
    /// (currently never: all supported geometries work with all policies).
    pub fn new(kind: PlacementKind, geometry: CacheGeometry) -> Result<Self, ConfigError> {
        Ok(match kind {
            PlacementKind::Modulo => Placement::Modulo(ModuloPlacement::new(geometry)),
            PlacementKind::Xor => Placement::Xor(XorPlacement::new(geometry)),
            PlacementKind::HashRandom => {
                Placement::HashRandom(HashRandomPlacement::new(geometry))
            }
            PlacementKind::RandomModulo => {
                Placement::RandomModulo(RandomModuloPlacement::new(geometry))
            }
        })
    }

    /// The geometry this policy was built for.
    pub fn geometry(&self) -> CacheGeometry {
        match self {
            Placement::Modulo(p) => p.geometry(),
            Placement::Xor(p) => p.geometry(),
            Placement::HashRandom(p) => p.geometry(),
            Placement::RandomModulo(p) => p.geometry(),
            Placement::Custom(p) => p.geometry(),
        }
    }

    /// Maps a line address to a set index in `0..sets` (the per-access hot
    /// path; statically dispatched for the built-in policies).
    #[inline]
    pub fn set_index_of_line(&self, line: LineAddr) -> u32 {
        match self {
            Placement::Modulo(p) => p.set_index_of_line(line),
            Placement::Xor(p) => p.set_index_of_line(line),
            Placement::HashRandom(p) => p.set_index_of_line(line),
            Placement::RandomModulo(p) => p.set_index_of_line(line),
            Placement::Custom(p) => p.set_index_of_line(line),
        }
    }

    /// Maps a line address to a set index through each policy's fastest
    /// path: identical results to [`Self::set_index_of_line`], but Random
    /// Modulo is allowed to consult and fill its per-segment permutation
    /// memo (which needs `&mut self`).  The cache model calls this once per
    /// access.
    #[inline]
    pub fn set_index_of_line_mut(&mut self, line: LineAddr) -> u32 {
        match self {
            Placement::RandomModulo(p) => p.set_index_of_line_cached(line),
            other => other.set_index_of_line(line),
        }
    }

    /// Maps a byte address to a set index in `0..sets`.
    pub fn set_index(&self, addr: Address) -> u32 {
        self.set_index_of_line(self.geometry().line_addr(addr))
    }

    /// Installs a new random seed, i.e. selects a new cache layout.
    pub fn reseed(&mut self, seed: u64) {
        match self {
            Placement::Modulo(p) => p.reseed(seed),
            Placement::Xor(p) => p.reseed(seed),
            Placement::HashRandom(p) => p.reseed(seed),
            Placement::RandomModulo(p) => p.reseed(seed),
            Placement::Custom(p) => p.reseed(seed),
        }
    }

    /// The currently installed seed.
    pub fn seed(&self) -> u64 {
        self.as_dyn().seed()
    }

    /// Which policy this is.
    pub fn kind(&self) -> PlacementKind {
        self.as_dyn().kind()
    }

    /// Whether the layout depends on the seed.
    pub fn is_randomized(&self) -> bool {
        self.as_dyn().is_randomized()
    }

    /// Whether the set index must be stored alongside the tag.
    pub fn stores_index_in_tag(&self) -> bool {
        self.as_dyn().stores_index_in_tag()
    }

    /// Borrows the policy through the common trait (for code that is
    /// generic over [`PlacementPolicy`], e.g. the layout-census helpers).
    pub fn as_dyn(&self) -> &dyn PlacementPolicy {
        match self {
            Placement::Modulo(p) => p,
            Placement::Xor(p) => p,
            Placement::HashRandom(p) => p,
            Placement::RandomModulo(p) => p,
            Placement::Custom(p) => p.as_ref(),
        }
    }
}

impl From<Box<dyn PlacementPolicy>> for Placement {
    /// Adapts a boxed policy into the enum (dispatched dynamically, at the
    /// old virtual-call cost).
    fn from(policy: Box<dyn PlacementPolicy>) -> Self {
        Placement::Custom(policy)
    }
}

// ---------------------------------------------------------------------------
// Lane-batched placement (wavefront engine)
// ---------------------------------------------------------------------------

/// Placement across K independent seed lanes, slice-in/slice-out.
///
/// The lane-batched replay engine simulates K per-seed cache hierarchies in
/// lock-step: one decoded trace op is applied to all lanes before the next
/// op is decoded.  `PlacementLanes` is the placement stage of that
/// wavefront — one line address in, K set indices out:
///
/// * **Modulo / XOR** are seed-independent, so every lane maps the line to
///   the *same* set.  [`Self::is_uniform`] reports this, and the cache
///   probes one contiguous K-wide row per way instead of K scattered sets.
/// * **hRP** keeps per-lane round keys; [`Self::index_lanes`] runs K
///   independent hash chains in one fixed-trip sweep, which the CPU
///   overlaps (the scalar engine serialises the ~20-operation dependency
///   chain per access — the main reason hRP trailed MOD by ~2x).
/// * **RM** shares one Benes network and keeps a lane-major per-segment
///   LUT memo; a memo miss fills the entry for *all* lanes with one
///   gate-outer/lane-inner network wave ([`BenesNetwork::permute_bits_lanes`]).
/// * **Custom** (boxed [`PlacementPolicy`] implementations) falls back to
///   one scalar virtual call per lane — external policies keep working,
///   at the pre-wavefront cost.
///
/// Every lane's mapping is bit-identical to a scalar [`Placement`] reseeded
/// with the same value; the batch-equivalence suites pin this.
#[derive(Debug, Clone)]
pub struct PlacementLanes {
    lanes: usize,
    backend: LaneBackend,
}

#[derive(Debug, Clone)]
enum LaneBackend {
    /// Seed-independent: one scalar policy serves every lane.
    Modulo(ModuloPlacement),
    /// Seed-independent: one scalar policy serves every lane.
    Xor(XorPlacement),
    HashRandom(HashRandomLanes),
    RandomModulo(RandomModuloLanes),
    /// Boxed trait-object policies, one clone per lane, dispatched through
    /// the scalar path.
    Custom(Vec<Placement>),
}

impl PlacementLanes {
    /// Builds a lane bank for `kind` on `geometry` with `lanes` lanes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the geometry cannot support the policy
    /// (currently never: all supported geometries work with all policies).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(
        kind: PlacementKind,
        geometry: CacheGeometry,
        lanes: usize,
    ) -> Result<Self, ConfigError> {
        assert!(lanes > 0, "a lane bank needs at least one lane");
        let backend = match kind {
            PlacementKind::Modulo => LaneBackend::Modulo(ModuloPlacement::new(geometry)),
            PlacementKind::Xor => LaneBackend::Xor(XorPlacement::new(geometry)),
            PlacementKind::HashRandom => {
                LaneBackend::HashRandom(HashRandomLanes::new(geometry, lanes))
            }
            PlacementKind::RandomModulo => {
                LaneBackend::RandomModulo(RandomModuloLanes::new(geometry, lanes))
            }
        };
        Ok(PlacementLanes { lanes, backend })
    }

    /// Builds a lane bank from per-lane scalar policies (the fallback for
    /// [`Placement::Custom`] and mixed configurations).  Each lane is
    /// dispatched through its policy's scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `placements` is empty or the geometries disagree.
    pub fn from_placements(placements: Vec<Placement>) -> Self {
        assert!(!placements.is_empty(), "a lane bank needs at least one lane");
        // randmod: allow(P1, non-emptiness is asserted on the previous line; panicking here is this constructor's documented contract)
        let geometry = placements[0].geometry();
        assert!(
            placements.iter().all(|p| p.geometry() == geometry),
            "all lanes must share one cache geometry"
        );
        PlacementLanes {
            lanes: placements.len(),
            backend: LaneBackend::Custom(placements),
        }
    }

    /// Number of lanes in the bank.
    pub fn lane_count(&self) -> usize {
        self.lanes
    }

    /// The geometry this bank was built for.
    pub fn geometry(&self) -> CacheGeometry {
        match &self.backend {
            LaneBackend::Modulo(p) => p.geometry(),
            LaneBackend::Xor(p) => p.geometry(),
            LaneBackend::HashRandom(p) => p.geometry,
            LaneBackend::RandomModulo(p) => p.geometry,
            // randmod: allow(P1, Custom banks exist only via from_placements, which asserts at least one lane)
            LaneBackend::Custom(p) => p[0].geometry(),
        }
    }

    /// Whether every lane maps any line to the same set (true for the
    /// seed-independent Modulo and XOR policies).  The lane cache uses this
    /// to pick the contiguous-row probe over the scattered probe.
    pub fn is_uniform(&self) -> bool {
        matches!(self.backend, LaneBackend::Modulo(_) | LaneBackend::Xor(_))
    }

    /// Whether this bank dispatches through boxed scalar policies.
    pub fn is_custom(&self) -> bool {
        matches!(self.backend, LaneBackend::Custom(_))
    }

    /// Installs a new seed on lane `lane` (selects that lane's layout).
    pub fn reseed_lane(&mut self, lane: usize, seed: u64) {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        match &mut self.backend {
            // Deterministic policies: layout is seed-independent; record on
            // the shared scalar policy so `seed()`-style queries stay sane.
            LaneBackend::Modulo(p) => PlacementPolicy::reseed(p, seed),
            LaneBackend::Xor(p) => PlacementPolicy::reseed(p, seed),
            LaneBackend::HashRandom(p) => p.reseed_lane(lane, seed),
            LaneBackend::RandomModulo(p) => p.reseed_lane(lane, seed),
            // randmod: allow(P1, lane < self.lanes == p.len() is asserted at the top of this method)
            LaneBackend::Custom(p) => p[lane].reseed(seed),
        }
    }

    /// Maps `line` to the single set index shared by every lane.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not [`Self::is_uniform`].
    #[inline]
    pub fn index_uniform(&mut self, line: LineAddr) -> u32 {
        match &self.backend {
            LaneBackend::Modulo(p) => p.set_index_of_line(line),
            LaneBackend::Xor(p) => p.set_index_of_line(line),
            // randmod: allow(P1, the documented Panics contract: callers gate on is_uniform() before taking this path, and the guard is unit-tested)
            _ => panic!("index_uniform called on a per-lane placement bank"),
        }
    }

    /// Maps `line` to a set index for the first `out.len()` lanes, writing
    /// lane `i`'s index into `out[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is longer than the lane count.
    #[inline]
    pub fn index_lanes(&mut self, line: LineAddr, out: &mut [u32]) {
        assert!(
            out.len() <= self.lanes,
            "{} indices requested from a {}-lane bank",
            out.len(),
            self.lanes
        );
        match &mut self.backend {
            LaneBackend::Modulo(p) => out.fill(p.set_index_of_line(line)),
            LaneBackend::Xor(p) => out.fill(p.set_index_of_line(line)),
            LaneBackend::HashRandom(p) => p.index_lanes(line, out),
            LaneBackend::RandomModulo(p) => p.index_lanes(line, out),
            LaneBackend::Custom(p) => {
                for (slot, policy) in out.iter_mut().zip(p.iter_mut()) {
                    *slot = policy.set_index_of_line_mut(line);
                }
            }
        }
    }

    /// Maps `line` to lane `lane`'s set index (the sparse path: L2 read
    /// waves probe only the lanes that missed in L1).
    #[inline]
    pub fn index_lane(&mut self, lane: usize, line: LineAddr) -> u32 {
        debug_assert!(lane < self.lanes);
        match &mut self.backend {
            LaneBackend::Modulo(p) => p.set_index_of_line(line),
            LaneBackend::Xor(p) => p.set_index_of_line(line),
            LaneBackend::HashRandom(p) => p.index_lane(lane, line),
            LaneBackend::RandomModulo(p) => p.index_lane(lane, line),
            // randmod: allow(P1, the lane cache probes only lanes below lane_count() == p.len(); the debug_assert above states the bound)
            LaneBackend::Custom(p) => p[lane].set_index_of_line_mut(line),
        }
    }
}

/// Slot count of the hRP lane-hash memo (direct-mapped on the low line
/// address bits; must be a power of two).  Sized so a kernel's code lines
/// plus its data working set stay memoised across trace iterations.
const HRP_MEMO_SLOTS: usize = 1024;

/// hRP across lanes: per-lane round keys in one contiguous array, plus a
/// direct-mapped line → K-indices memo.
///
/// The four-round rotate/XOR hash has data-dependent rotation amounts, so
/// it cannot SIMD-vectorize; computing it K times per access is the single
/// most expensive stage of an hRP wave.  But every lane sees the *same*
/// line stream and the mapping depends only on `(line, seed)`, so the bank
/// memoises each line's K set indices in a lane-major LUT
/// (`memo_index[slot * K + lane]`, tagged by line address): a trace that
/// revisits its working set pays the K hashes once per line per reseed,
/// and every revisit is one contiguous K-wide copy.  A memo miss still
/// runs the K hash chains back-to-back, which at least overlaps their
/// ~20-operation dependency chains in the out-of-order window.
#[derive(Debug, Clone)]
struct HashRandomLanes {
    geometry: CacheGeometry,
    round_keys: Vec<[u64; 4]>,
    /// Line address memoised per slot (`u64::MAX` = empty; line addresses
    /// never reach it — they lose at least the offset bits).
    memo_tags: Vec<u64>,
    /// Per-slot, per-lane memoised set index, lane-major.
    memo_index: Vec<u32>,
}

/// The empty-slot sentinel of the hRP memo.
const HRP_MEMO_EMPTY: u64 = u64::MAX;

impl HashRandomLanes {
    fn new(geometry: CacheGeometry, lanes: usize) -> Self {
        HashRandomLanes {
            geometry,
            round_keys: vec![hrp_round_keys(0); lanes],
            memo_tags: vec![HRP_MEMO_EMPTY; HRP_MEMO_SLOTS],
            memo_index: vec![0; HRP_MEMO_SLOTS * lanes],
        }
    }

    fn reseed_lane(&mut self, lane: usize, seed: u64) {
        // randmod: allow(P1, PlacementLanes::reseed_lane asserts lane < lane_count == round_keys.len() before dispatching here)
        self.round_keys[lane] = hrp_round_keys(seed);
        // The memo caches (line, seed) products: a new seed invalidates it.
        self.memo_tags.fill(HRP_MEMO_EMPTY);
    }

    // randmod: allow(P1, memo arithmetic is in-bounds by construction: slot < HRP_MEMO_SLOTS via the power-of-two mask, memo_tags has HRP_MEMO_SLOTS entries, memo_index has HRP_MEMO_SLOTS * lanes entries so slot*lanes+lanes never overruns, and out.len() <= lanes is asserted by the PlacementLanes facade)
    #[inline]
    fn index_lanes(&mut self, line: LineAddr, out: &mut [u32]) {
        let n = self.geometry.index_bits();
        if n == 0 {
            out.fill(0);
            return;
        }
        let raw = line.raw();
        let lanes = self.round_keys.len();
        let slot = (raw as usize) & (HRP_MEMO_SLOTS - 1);
        let memo = &mut self.memo_index[slot * lanes..slot * lanes + lanes];
        if self.memo_tags[slot] != raw {
            let mask = (self.geometry.sets() - 1) as u64;
            for (cell, keys) in memo.iter_mut().zip(self.round_keys.iter()) {
                *cell = hrp_fold_index(hrp_parametric_hash(*keys, raw), n, mask);
            }
            self.memo_tags[slot] = raw;
        }
        out.copy_from_slice(&memo[..out.len()]);
    }

    // randmod: allow(P1, same bounds as index_lanes, plus lane < lanes guaranteed by the PlacementLanes facade (debug_assert at the dispatch site))
    #[inline]
    fn index_lane(&mut self, lane: usize, line: LineAddr) -> u32 {
        let n = self.geometry.index_bits();
        if n == 0 {
            return 0;
        }
        let raw = line.raw();
        let lanes = self.round_keys.len();
        let slot = (raw as usize) & (HRP_MEMO_SLOTS - 1);
        // A sparse miss fills the whole entry: L1 miss waves ask several
        // lanes for the same L2 line back-to-back, so the other lanes'
        // hashes are about to be needed anyway.
        if self.memo_tags[slot] != raw {
            let mask = (self.geometry.sets() - 1) as u64;
            let memo = &mut self.memo_index[slot * lanes..slot * lanes + lanes];
            for (cell, keys) in memo.iter_mut().zip(self.round_keys.iter()) {
                *cell = hrp_fold_index(hrp_parametric_hash(*keys, raw), n, mask);
            }
            self.memo_tags[slot] = raw;
        }
        self.memo_index[slot * lanes + lane]
    }
}

/// RM across lanes: one shared Benes network, per-lane seed material, and a
/// lane-major per-segment LUT memo.
///
/// The memo mirrors the scalar [`SegmentLutCache`] — hashed slot placement,
/// lazy per-entry fill — with one twist: every lane sees the *same* line
/// stream, so slot tags and entry valid bits are shared across lanes and an
/// entry miss fills all K lanes at once with one
/// [`BenesNetwork::permute_bits_lanes`] wave.  `luts[(slot * sets + index) *
/// lanes + lane]` keeps each entry's K permuted indices adjacent, so the
/// per-access gather is one short contiguous read.
#[derive(Debug, Clone)]
struct RandomModuloLanes {
    geometry: CacheGeometry,
    network: BenesNetwork,
    lanes: usize,
    seed_controls: Vec<u128>,
    seed_top_bit: Vec<u128>,
    /// Number of direct-mapped memo slots (zero disables memoization, as in
    /// the scalar policy).
    slots: usize,
    sets: usize,
    words_per_slot: usize,
    /// Segment id resident in each slot (`u64::MAX` = empty).
    tags: Vec<u64>,
    /// Per-slot, per-lane control words, refreshed on slot retag.
    slot_controls: Vec<u128>,
    /// Lane-major permuted indices; see the struct docs for the layout.
    luts: Vec<u16>,
    /// One valid bit per (slot, index) entry — an entry is valid for all
    /// lanes or none.
    valid: Vec<u64>,
    /// Wave output scratch (`lanes` wide).
    scratch: Vec<u32>,
}

impl RandomModuloLanes {
    fn new(geometry: CacheGeometry, lanes: usize) -> Self {
        let network = BenesNetwork::new(geometry.index_bits().max(1) as usize);
        let sets = geometry.sets() as usize;
        // Same slot sizing policy as the scalar SegmentLutCache: the budget
        // is per lane, so the wavefront memo simply scales by K.
        let slots = if geometry.sets() <= SegmentLutCache::MAX_SETS {
            (SegmentLutCache::BUDGET_ENTRIES / sets)
                .clamp(4, 64)
                .next_power_of_two()
        } else {
            0
        };
        let words_per_slot = sets.div_ceil(64);
        let mut bank = RandomModuloLanes {
            geometry,
            network,
            lanes,
            seed_controls: vec![0; lanes],
            seed_top_bit: vec![0; lanes],
            slots,
            sets,
            words_per_slot,
            tags: vec![u64::MAX; slots],
            slot_controls: vec![0; slots * lanes],
            luts: vec![0; slots * sets * lanes],
            valid: vec![0; slots * words_per_slot],
            scratch: vec![0; lanes],
        };
        for lane in 0..lanes {
            bank.reseed_lane(lane, 0);
        }
        bank
    }

    fn reseed_lane(&mut self, lane: usize, seed: u64) {
        // randmod: allow(P1, PlacementLanes::reseed_lane asserts lane < lane_count before dispatching here, and the constructor sizes both seed vectors to exactly `lanes`)
        (self.seed_controls[lane], self.seed_top_bit[lane]) = rm_seed_material(seed);
        // A new seed on any lane selects new permutations for that lane;
        // tags and valid bits are shared, so drop every slot.
        self.tags.fill(u64::MAX);
        self.valid.fill(0);
    }

    /// Same Fibonacci slot hash as the scalar memo.
    #[inline]
    fn slot_of(&self, segment: u64) -> usize {
        let hashed = segment.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (hashed >> (u64::BITS - self.slots.trailing_zeros())) as usize
    }

    /// Ensures the memo entry for `(segment, modulo_index)` is filled for
    /// every lane and returns the base of its lane-major row.
    // randmod: allow(P1, every offset is in-bounds by the constructor's sizing: slot < slots via slot_of's top-bits shift, tags/valid/slot_controls/luts hold slots, slots*words_per_slot, slots*lanes and slots*sets*lanes entries, and modulo_index < sets by geometry; the memo layout is pinned against the scalar policy by the lane-equivalence proptests)
    #[inline]
    fn fill_entry(&mut self, segment: u64, modulo_index: u32) -> usize {
        let slot = self.slot_of(segment);
        let control_base = slot * self.lanes;
        if self.tags[slot] != segment {
            // Slot swap: retag, refresh the per-lane control words, clear
            // the valid bitmap.  Entries refill lazily on first use.
            self.tags[slot] = segment;
            let needed = self.network.control_bits();
            for lane in 0..self.lanes {
                self.slot_controls[control_base + lane] = rm_control_word(
                    needed,
                    self.seed_controls[lane],
                    self.seed_top_bit[lane],
                    segment,
                );
            }
            let word_base = slot * self.words_per_slot;
            self.valid[word_base..word_base + self.words_per_slot].fill(0);
        }
        let entry = slot * self.sets + modulo_index as usize;
        let base = entry * self.lanes;
        let word = slot * self.words_per_slot + (modulo_index as usize >> 6);
        let bit = 1u64 << (modulo_index & 63);
        if self.valid[word] & bit == 0 {
            self.network.permute_bits_lanes(
                modulo_index,
                &self.slot_controls[control_base..control_base + self.lanes],
                &mut self.scratch,
            );
            for (slot_entry, &permuted) in self.luts[base..base + self.lanes]
                .iter_mut()
                .zip(self.scratch.iter())
            {
                *slot_entry = permuted as u16;
            }
            self.valid[word] |= bit;
        }
        base
    }

    // randmod: allow(P1, out.len() <= lanes is asserted by the PlacementLanes facade and fill_entry returns a base with a full lane-major row behind it, so luts[base..] holds at least `lanes` entries)
    #[inline]
    fn index_lanes(&mut self, line: LineAddr, out: &mut [u32]) {
        let modulo_index = self.geometry.modulo_index_of_line(line);
        let segment = self.geometry.segment_of_line(line);
        if self.slots == 0 {
            // Memoization disabled (giant geometry): wave-walk the network
            // directly with per-lane control words.
            let needed = self.network.control_bits();
            for (lane, slot) in out.iter_mut().enumerate() {
                let controls = rm_control_word(
                    needed,
                    self.seed_controls[lane],
                    self.seed_top_bit[lane],
                    segment,
                );
                *slot = self.network.permute_bits(modulo_index, controls);
            }
            return;
        }
        let base = self.fill_entry(segment, modulo_index);
        for (slot, &permuted) in out.iter_mut().zip(self.luts[base..].iter()) {
            *slot = permuted as u32;
        }
    }

    // randmod: allow(P1, lane < lanes is guaranteed by the PlacementLanes facade (debug_assert at the dispatch site) and base + lanes <= luts.len() by fill_entry's row layout)
    #[inline]
    fn index_lane(&mut self, lane: usize, line: LineAddr) -> u32 {
        let modulo_index = self.geometry.modulo_index_of_line(line);
        let segment = self.geometry.segment_of_line(line);
        if self.slots == 0 {
            let controls = rm_control_word(
                self.network.control_bits(),
                self.seed_controls[lane],
                self.seed_top_bit[lane],
                segment,
            );
            return self.network.permute_bits(modulo_index, controls);
        }
        let base = self.fill_entry(segment, modulo_index);
        self.luts[base + lane] as u32
    }
}

// ---------------------------------------------------------------------------
// Modulo
// ---------------------------------------------------------------------------

/// Conventional modulo placement: the set index is the low bits of the line
/// address.  The layout is independent of the seed.
///
/// ```
/// use randmod_core::{ModuloPlacement, CacheGeometry, Address};
/// use randmod_core::placement::PlacementPolicy;
///
/// let policy = ModuloPlacement::new(CacheGeometry::leon3_l1());
/// assert_eq!(policy.set_index(Address::new(0x0)), 0);
/// assert_eq!(policy.set_index(Address::new(32)), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuloPlacement {
    geometry: CacheGeometry,
    seed: u64,
}

impl ModuloPlacement {
    /// Creates a modulo placement for the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        ModuloPlacement { geometry, seed: 0 }
    }
}

impl PlacementPolicy for ModuloPlacement {
    fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_index_of_line(&self, line: LineAddr) -> u32 {
        self.geometry.modulo_index_of_line(line)
    }

    fn reseed(&mut self, seed: u64) {
        // Modulo placement is deterministic: the seed is recorded only so
        // callers can query it uniformly across policies.
        self.seed = seed;
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn kind(&self) -> PlacementKind {
        PlacementKind::Modulo
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Deterministic XOR placement
// ---------------------------------------------------------------------------

/// Deterministic XOR-folding placement (related work: XOR-based placement
/// functions).  All index-width chunks of the line address are XORed
/// together.  Like modulo it is a fixed hash, so pathological access
/// patterns repeat systematically for a given memory layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorPlacement {
    geometry: CacheGeometry,
    seed: u64,
}

impl XorPlacement {
    /// Creates an XOR placement for the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        XorPlacement { geometry, seed: 0 }
    }
}

impl PlacementPolicy for XorPlacement {
    fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_index_of_line(&self, line: LineAddr) -> u32 {
        let n = self.geometry.index_bits();
        let mask = (self.geometry.sets() - 1) as u64;
        let mut value = line.raw();
        let mut folded = 0u64;
        while value != 0 {
            folded ^= value & mask;
            value >>= n;
        }
        folded as u32
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn kind(&self) -> PlacementKind {
        PlacementKind::Xor
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Hash-based random placement (hRP)
// ---------------------------------------------------------------------------

/// Hash-based random placement (hRP), the pre-existing MBPTA-compliant
/// design the paper compares against.
///
/// The hardware consists of rotate blocks driven by the address bits acting
/// on seed material, combined by a tree of 2-input XOR gates (Figure 2 of
/// the paper).  Behaviourally, every line address is mapped to a set
/// (pseudo-)uniformly and (pseudo-)independently for each seed, so:
///
/// * the distribution of addresses over sets is homogeneous (~`1/S` per
///   set), which keeps conflicts low *on average*, but
/// * even two *contiguous* lines can land in the same set with probability
///   of about `1/S` per run — the cache-risk-pattern inflation that Random
///   Modulo removes.
///
/// ```
/// use randmod_core::{HashRandomPlacement, CacheGeometry, Address};
/// use randmod_core::placement::PlacementPolicy;
///
/// let mut policy = HashRandomPlacement::new(CacheGeometry::leon3_l1());
/// policy.reseed(1);
/// let a = policy.set_index(Address::new(0x1000));
/// policy.reseed(2);
/// let b = policy.set_index(Address::new(0x1000));
/// // The mapping of a given address usually changes with the seed.
/// assert!(a < 128 && b < 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRandomPlacement {
    geometry: CacheGeometry,
    seed: u64,
    /// Round keys derived from the seed (the parametric part of the hash,
    /// the `RII` input of Figure 2).
    round_keys: [u64; 4],
}

/// Derives hRP's four round keys from a placement seed.
///
/// Shared by the scalar policy and the lane bank so both derive exactly the
/// same keys for the same seed.
#[inline]
fn hrp_round_keys(seed: u64) -> [u64; 4] {
    let mut sm = SplitMix64::new(seed ^ 0x6852_5EED_u64);
    let mut keys = [0u64; 4];
    for key in &mut keys {
        *key = sm.next_u64();
    }
    keys
}

/// The parametric rotate/XOR hash of hRP.
///
/// The hardware of Figure 2 is a layer of rotate blocks whose rotation
/// amounts depend on address bits and the random seed, combined by a
/// cascade of 2-input XOR gates.  This software model uses four
/// rotate/XOR rounds with data- and seed-driven rotation amounts, which
/// reproduces the statistical behaviour that matters for the paper's
/// evaluation: every address is mapped (pseudo-)uniformly to the sets,
/// and any pair of addresses — contiguous or not — collides in the same
/// set with probability of about `1/S` per seed.
#[inline]
fn hrp_parametric_hash(round_keys: [u64; 4], line: u64) -> u64 {
    let [k0, k1, k2, k3] = round_keys;
    let mut x = line ^ k0;
    x = x.rotate_left(((k1 as u32) ^ (x as u32)) & 63) ^ k1;
    x ^= x >> 31;
    x = x.rotate_left((((k2 >> 32) as u32) ^ ((x >> 7) as u32)) & 63) ^ k2;
    x ^= x >> 27;
    x = x.rotate_left(((k3 as u32) ^ ((x >> 13) as u32)) & 63) ^ k3;
    x ^= x >> 33;
    x = x.rotate_left((((k0 >> 17) as u32) ^ ((x >> 23) as u32)) & 63) ^ (k1 ^ k2);
    x ^= x >> 29;
    x
}

/// hRP's final XOR-folding cascade down to the index width.  The trip
/// count depends only on the index width, not on the hash value (folding
/// in the zero chunks above the topmost set bit is a no-op), which keeps
/// this per-access loop branch-predictable and fixed-trip — exactly the
/// shape the lane bank's chunked sweep relies on.
#[inline]
fn hrp_fold_index(hashed: u64, n: u32, mask: u64) -> u32 {
    let mut folded = 0u64;
    let mut shift = 0u32;
    while shift < u64::BITS {
        folded ^= (hashed >> shift) & mask;
        shift += n;
    }
    folded as u32
}

impl HashRandomPlacement {
    /// Creates an hRP placement for the given geometry (seed 0 installed).
    pub fn new(geometry: CacheGeometry) -> Self {
        let mut policy = HashRandomPlacement {
            geometry,
            seed: 0,
            round_keys: [0; 4],
        };
        policy.reseed(0);
        policy
    }

    /// The parametric rotate/XOR hash (see [`hrp_parametric_hash`]).
    #[inline]
    fn parametric_hash(&self, line: u64) -> u64 {
        hrp_parametric_hash(self.round_keys, line)
    }
}

impl PlacementPolicy for HashRandomPlacement {
    fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_index_of_line(&self, line: LineAddr) -> u32 {
        let n = self.geometry.index_bits();
        if n == 0 {
            return 0;
        }
        let mask = (self.geometry.sets() - 1) as u64;
        let hashed = self.parametric_hash(line.raw());
        hrp_fold_index(hashed, n, mask)
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.round_keys = hrp_round_keys(seed);
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn kind(&self) -> PlacementKind {
        PlacementKind::HashRandom
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Random Modulo (RM)
// ---------------------------------------------------------------------------

/// Random Modulo placement — the paper's contribution.
///
/// RM permutes the modulo index bits of every address with a Benes network.
/// The control word of the network is derived from the upper address bits
/// (the cache-segment identity) combined with the per-run random seed, so:
///
/// * within a cache segment the mapping of index values is a *bijection*:
///   two addresses of the same segment that modulo places in different sets
///   are **always** placed in different sets (spatial locality is preserved,
///   exactly like modulo);
/// * across segments and across runs, layouts vary randomly, giving every
///   potential cache layout a probability of occurrence, as MBPTA requires;
/// * the added hardware is a thin layer of pass-gate switches plus one XOR
///   stage for the control word, which is why it is much smaller and faster
///   than the hRP hash (Table 1 of the paper, reproduced by
///   `randmod-hwcost`).
///
/// ```
/// use randmod_core::{RandomModuloPlacement, CacheGeometry, Address};
/// use randmod_core::placement::PlacementPolicy;
///
/// let geometry = CacheGeometry::leon3_l1();
/// let mut policy = RandomModuloPlacement::new(geometry);
/// policy.reseed(0xFEED_5EED);
///
/// // Two consecutive lines (same segment, different modulo index) never
/// // collide, whatever the seed.
/// let a = policy.set_index(Address::new(0x4000_0000));
/// let b = policy.set_index(Address::new(0x4000_0020));
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct RandomModuloPlacement {
    geometry: CacheGeometry,
    seed: u64,
    network: BenesNetwork,
    /// Seed material XORed into the control word (recomputed on reseed).
    seed_controls: u128,
    /// The seed bit concatenated above the upper-address bits.
    seed_top_bit: u128,
    /// Per-segment permutation memo used by the `&mut self` hot path.
    memo: SegmentLutCache,
}

/// Direct-mapped memo of per-segment index permutations.
///
/// Under a fixed seed, RM's mapping within one cache segment is a fixed
/// permutation of the modulo indices (that is its defining property), and a
/// program touches only a handful of segments — its footprint divided by
/// the way size.  Walking the Benes network on every access therefore
/// recomputes the same few permutations millions of times.  This memo
/// caches each segment's permutation as a flat look-up table, turning the
/// per-access cost into one predictable tag compare plus one table load.
/// Entries are pure functions of `(segment, seed)`, so memoized results are
/// bit-identical to the network walk; reseeding invalidates everything.
///
/// Two design points keep the memo robust when *several* working sets
/// interleave (the shared-L2 contention campaigns, where co-runner tasks
/// alternate segments every few accesses):
///
/// * **Hashed slot placement.**  Slots are selected by a multiplicative
///   hash of the segment id, not its low bits — co-runners laid out at
///   large power-of-two offsets land in distinct slots instead of all
///   aliasing slot 0.
/// * **Lazy per-entry fill.**  A slot swap only retags the slot and clears
///   a per-entry valid bitmap (a few words); each LUT entry is computed on
///   first use.  Eagerly filling a whole LUT per swap turns slot aliasing
///   into ~`sets` network walks *per access* — a 100x+ slowdown observed
///   the moment two alternating tasks shared a slot.
#[derive(Debug, Clone)]
struct SegmentLutCache {
    /// Number of direct-mapped slots (power of two); zero when memoization
    /// is disabled because the geometry's LUTs would be too large.
    slots: usize,
    sets: usize,
    /// `u64` words of valid bits per slot (`sets.div_ceil(64)`).
    words_per_slot: usize,
    /// Segment id resident in each slot (`u64::MAX` = empty).
    tags: Vec<u64>,
    /// `luts[slot * sets + modulo_index]` = permuted index (valid only when
    /// the matching bit of `valid` is set).
    luts: Vec<u16>,
    /// One valid bit per LUT entry, `words_per_slot` words per slot.
    valid: Vec<u64>,
}

impl SegmentLutCache {
    /// Upper bound on sets for which memoization pays off (the LUT of one
    /// segment must stay small enough to be cache-resident, and index
    /// values must fit the `u16` entries).
    const MAX_SETS: u32 = 4096;
    /// Approximate per-cache memo budget in LUT entries (~16KB of `u16`s).
    const BUDGET_ENTRIES: usize = 8192;

    fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets() as usize;
        let slots = if geometry.sets() <= Self::MAX_SETS {
            (Self::BUDGET_ENTRIES / sets).clamp(4, 64).next_power_of_two()
        } else {
            0
        };
        let words_per_slot = sets.div_ceil(64);
        SegmentLutCache {
            slots,
            sets,
            words_per_slot,
            tags: vec![u64::MAX; slots],
            luts: vec![0; slots * sets],
            valid: vec![0; slots * words_per_slot],
        }
    }

    /// The slot a segment maps to (Fibonacci hashing on the high product
    /// bits, so segments at regular power-of-two strides spread out).
    #[inline]
    fn slot_of(&self, segment: u64) -> usize {
        let hashed = segment.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (hashed >> (u64::BITS - self.slots.trailing_zeros())) as usize
    }

    fn invalidate(&mut self) {
        self.tags.fill(u64::MAX);
        self.valid.fill(0);
    }
}

impl RandomModuloPlacement {
    /// Creates an RM placement for the given geometry (seed 0 installed).
    pub fn new(geometry: CacheGeometry) -> Self {
        let network = BenesNetwork::new(geometry.index_bits().max(1) as usize);
        let mut policy = RandomModuloPlacement {
            geometry,
            seed: 0,
            network,
            seed_controls: 0,
            seed_top_bit: 0,
            memo: SegmentLutCache::new(geometry),
        };
        policy.reseed(0);
        policy
    }

    /// Maps a line address to its set index through the per-segment
    /// permutation memo — the cache-model hot path.
    ///
    /// Bit-identical to [`PlacementPolicy::set_index_of_line`] (memo
    /// entries are pure functions of the segment and the installed seed);
    /// the `&mut self` receiver is only used to fill memo slots.
    // randmod: allow(P1, the scalar twin of RandomModuloLanes::fill_entry: slot < slots via slot_of's top-bits shift, the memo vectors are sized slots / slots*words_per_slot / slots*sets at construction, and modulo_index < sets by geometry — bit-equivalence with the uncached path is proptested)
    #[inline]
    pub fn set_index_of_line_cached(&mut self, line: LineAddr) -> u32 {
        let modulo_index = self.geometry.modulo_index_of_line(line);
        let segment = self.geometry.segment_of_line(line);
        if self.memo.slots == 0 {
            let controls = self.control_word_for_segment(segment);
            return self.network.permute_bits(modulo_index, controls);
        }
        let slot = self.memo.slot_of(segment);
        if self.memo.tags[slot] != segment {
            // Slot swap: retag and clear the valid bitmap only.  Entries
            // are recomputed lazily on first use, so alternating between
            // segments that share a slot costs one network walk per fresh
            // index instead of a whole-LUT refill per swap.
            self.memo.tags[slot] = segment;
            let word_base = slot * self.memo.words_per_slot;
            self.memo.valid[word_base..word_base + self.memo.words_per_slot].fill(0);
        }
        let entry = slot * self.memo.sets + modulo_index as usize;
        let word = slot * self.memo.words_per_slot + (modulo_index as usize >> 6);
        let bit = 1u64 << (modulo_index & 63);
        if self.memo.valid[word] & bit == 0 {
            let controls = self.control_word_for_segment(segment);
            self.memo.luts[entry] = self.network.permute_bits(modulo_index, controls) as u16;
            self.memo.valid[word] |= bit;
        }
        self.memo.luts[entry] as u32
    }

    /// Number of control bits of the underlying Benes network.
    pub fn control_bits(&self) -> usize {
        self.network.control_bits()
    }

    /// Computes the Benes control word for a given cache segment under the
    /// current seed.
    ///
    /// Following the paper: the upper address bits are concatenated with the
    /// uppermost bit of the seed and XORed with further seed bits, so that
    /// small changes in the upper address bits lead to different index
    /// permutations while the per-run seed decorrelates layouts across runs.
    pub fn control_word_for_segment(&self, segment: u64) -> u128 {
        rm_control_word(
            self.network.control_bits(),
            self.seed_controls,
            self.seed_top_bit,
            segment,
        )
    }
}

/// Computes RM's Benes control word for one cache segment from the
/// seed-derived material.  Shared by the scalar policy and the lane bank so
/// both derive exactly the same permutations for the same seed.
#[inline]
fn rm_control_word(needed: usize, seed_controls: u128, seed_top_bit: u128, segment: u64) -> u128 {
    if needed == 0 {
        return 0;
    }
    let mask: u128 = if needed >= 128 {
        u128::MAX
    } else {
        (1u128 << needed) - 1
    };
    let addr_part = (segment as u128) & (mask >> 1);
    let concatenated = addr_part | (seed_top_bit << (needed - 1));
    (concatenated ^ seed_controls) & mask
}

/// Expands an RM placement seed into its 128-bit control material and the
/// concatenated top bit, exactly as [`RandomModuloPlacement::reseed`] does.
#[inline]
fn rm_seed_material(seed: u64) -> (u128, u128) {
    let mut sm = SplitMix64::new(seed);
    let low = sm.next_u64() as u128;
    let high = sm.next_u64() as u128;
    ((high << 64) | low, (seed >> 63) as u128 & 1)
}

impl PlacementPolicy for RandomModuloPlacement {
    fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_index_of_line(&self, line: LineAddr) -> u32 {
        let modulo_index = self.geometry.modulo_index_of_line(line);
        let segment = self.geometry.segment_of_line(line);
        let controls = self.control_word_for_segment(segment);
        self.network.permute_bits(modulo_index, controls)
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        // Expand the seed so networks needing more than 64 control bits
        // (index widths above 11) still get full-entropy control material.
        (self.seed_controls, self.seed_top_bit) = rm_seed_material(seed);
        // A new seed selects new per-segment permutations.
        self.memo.invalidate();
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn kind(&self) -> PlacementKind {
        PlacementKind::RandomModulo
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn l1() -> CacheGeometry {
        CacheGeometry::leon3_l1()
    }

    #[test]
    fn kind_parsing_round_trips() {
        for kind in PlacementKind::ALL {
            let parsed: PlacementKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("nonsense".parse::<PlacementKind>().is_err());
    }

    #[test]
    fn kind_properties() {
        assert!(!PlacementKind::Modulo.is_randomized());
        assert!(!PlacementKind::Xor.is_randomized());
        assert!(PlacementKind::HashRandom.is_randomized());
        assert!(PlacementKind::RandomModulo.is_randomized());
        assert!(PlacementKind::HashRandom.stores_index_in_tag());
        assert!(!PlacementKind::RandomModulo.stores_index_in_tag());
        assert_eq!(PlacementKind::RandomModulo.short_name(), "RM");
    }

    #[test]
    fn modulo_maps_consecutive_lines_to_consecutive_sets() {
        let policy = ModuloPlacement::new(l1());
        for i in 0..256u64 {
            let addr = Address::new(i * 32);
            assert_eq!(policy.set_index(addr), (i % 128) as u32);
        }
    }

    #[test]
    fn modulo_ignores_seed() {
        let mut policy = ModuloPlacement::new(l1());
        let addr = Address::new(0x1234_5660);
        let before = policy.set_index(addr);
        policy.reseed(0xABCDEF);
        assert_eq!(policy.set_index(addr), before);
        assert_eq!(policy.seed(), 0xABCDEF);
    }

    #[test]
    fn xor_is_deterministic_and_ignores_seed() {
        let mut policy = XorPlacement::new(l1());
        let addr = Address::new(0xDEAD_BEE0);
        let before = policy.set_index(addr);
        policy.reseed(77);
        assert_eq!(policy.set_index(addr), before);
        assert!(policy.set_index(addr) < 128);
    }

    #[test]
    fn xor_differs_from_modulo_for_far_addresses() {
        let xor = XorPlacement::new(l1());
        let modulo = ModuloPlacement::new(l1());
        let differing = (0..1024u64)
            .map(|i| Address::new(0x10_0000 + i * 4096))
            .filter(|&a| xor.set_index(a) != modulo.set_index(a))
            .count();
        assert!(differing > 0);
    }

    #[test]
    fn hrp_is_deterministic_per_seed() {
        let mut policy = HashRandomPlacement::new(l1());
        policy.reseed(1234);
        let addr = Address::new(0x8000_0400);
        let first = policy.set_index(addr);
        let second = policy.set_index(addr);
        assert_eq!(first, second);
        let mut other = HashRandomPlacement::new(l1());
        other.reseed(1234);
        assert_eq!(other.set_index(addr), first);
    }

    #[test]
    fn hrp_layout_changes_with_seed() {
        let mut policy = HashRandomPlacement::new(l1());
        let addrs: Vec<Address> = (0..64).map(|i| Address::new(0x4000_0000 + i * 32)).collect();
        policy.reseed(1);
        let layout_a: Vec<u32> = addrs.iter().map(|&a| policy.set_index(a)).collect();
        policy.reseed(2);
        let layout_b: Vec<u32> = addrs.iter().map(|&a| policy.set_index(a)).collect();
        assert_ne!(layout_a, layout_b);
    }

    #[test]
    fn hrp_distribution_over_sets_is_roughly_uniform() {
        let geometry = l1();
        let mut policy = HashRandomPlacement::new(geometry);
        policy.reseed(0xFACE);
        let sets = geometry.sets() as usize;
        let mut counts = vec![0u32; sets];
        let lines = 128 * 1024u64;
        for i in 0..lines {
            counts[policy.set_index_of_line(LineAddr::new(i)) as usize] += 1;
        }
        let expected = lines as f64 / sets as f64;
        for (s, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.25, "set {s} has count {c}, expected ~{expected}");
        }
    }

    #[test]
    fn hrp_contiguous_lines_can_collide_with_probability_near_one_over_s() {
        // The core observation motivating RM: under hRP, two contiguous
        // lines (same segment, different modulo index) collide in the same
        // set with probability on the order of 1/S per run.
        let geometry = l1();
        let mut policy = HashRandomPlacement::new(geometry);
        let a = Address::new(0x4000_0000);
        let b = Address::new(0x4000_0020); // next line, same segment
        let runs = 20_000u32;
        let mut collisions = 0u32;
        for seed in 0..runs {
            policy.reseed(seed as u64 * 0x9E37_79B9 + 17);
            if policy.set_index(a) == policy.set_index(b) {
                collisions += 1;
            }
        }
        let p = collisions as f64 / runs as f64;
        let one_over_s = 1.0 / geometry.sets() as f64;
        assert!(
            p > one_over_s * 0.2 && p < one_over_s * 5.0,
            "collision probability {p} not in the expected band around {one_over_s}"
        );
    }

    #[test]
    fn hrp_pairs_far_apart_also_collide_near_one_over_s() {
        let geometry = l1();
        let mut policy = HashRandomPlacement::new(geometry);
        let a = Address::new(0x4000_0000);
        let b = Address::new(0x7354_1980);
        let runs = 20_000u32;
        let mut collisions = 0u32;
        for seed in 0..runs {
            policy.reseed(seed as u64 * 0xABCDE + 3);
            if policy.set_index(a) == policy.set_index(b) {
                collisions += 1;
            }
        }
        let p = collisions as f64 / runs as f64;
        let one_over_s = 1.0 / geometry.sets() as f64;
        assert!(
            p > one_over_s * 0.2 && p < one_over_s * 5.0,
            "collision probability {p} not in the expected band around {one_over_s}"
        );
    }

    #[test]
    fn rm_defining_property_no_intra_segment_conflicts() {
        // The defining equation of the paper: for addresses A, B in the same
        // cache segment, set_mod(A) != set_mod(B) implies
        // set_rm(A) != set_rm(B) for every seed.
        let geometry = l1();
        let mut policy = RandomModuloPlacement::new(geometry);
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            policy.reseed(seed);
            let segment_base = Address::new(0x4000_0000);
            let mut seen = HashSet::new();
            for i in 0..geometry.sets() as u64 {
                let addr = segment_base.offset(i * geometry.line_size() as u64);
                let set = policy.set_index(addr);
                assert!(
                    seen.insert(set),
                    "seed {seed:#x}: two same-segment lines mapped to set {set}"
                );
            }
            assert_eq!(seen.len(), geometry.sets() as usize);
        }
    }

    #[test]
    fn rm_is_deterministic_per_seed() {
        let mut a = RandomModuloPlacement::new(l1());
        let mut b = RandomModuloPlacement::new(l1());
        a.reseed(987);
        b.reseed(987);
        for i in 0..512u64 {
            let addr = Address::new(0x10_0000 + i * 32);
            assert_eq!(a.set_index(addr), b.set_index(addr));
        }
    }

    #[test]
    fn rm_layout_changes_with_seed() {
        let mut policy = RandomModuloPlacement::new(l1());
        let addrs: Vec<Address> = (0..128).map(|i| Address::new(0x4000_0000 + i * 32)).collect();
        let mut distinct_layouts = HashSet::new();
        for seed in 0..200u64 {
            policy.reseed(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
            let layout: Vec<u32> = addrs.iter().map(|&a| policy.set_index(a)).collect();
            distinct_layouts.insert(layout);
        }
        assert!(
            distinct_layouts.len() > 100,
            "only {} distinct layouts over 200 seeds",
            distinct_layouts.len()
        );
    }

    #[test]
    fn rm_different_segments_get_different_permutations() {
        // "small changes in address upper bits lead to different index
        // permutations" — check that two adjacent segments usually differ.
        let geometry = l1();
        let mut policy = RandomModuloPlacement::new(geometry);
        policy.reseed(0xC0FFEE);
        let mut differing_segment_pairs = 0;
        let total = 64;
        for s in 0..total {
            let seg_a = Address::new(s * geometry.way_size_bytes());
            let seg_b = Address::new((s + 1) * geometry.way_size_bytes());
            let layout_a: Vec<u32> = (0..geometry.sets() as u64)
                .map(|i| policy.set_index(seg_a.offset(i * 32)))
                .collect();
            let layout_b: Vec<u32> = (0..geometry.sets() as u64)
                .map(|i| policy.set_index(seg_b.offset(i * 32)))
                .collect();
            if layout_a != layout_b {
                differing_segment_pairs += 1;
            }
        }
        assert!(
            differing_segment_pairs > total / 2,
            "only {differing_segment_pairs} of {total} adjacent segment pairs differ"
        );
    }

    #[test]
    fn rm_covers_many_reachable_sets_for_one_address_across_seeds() {
        // A bit-position permutation preserves the popcount of the index, so
        // a given address can only ever reach the sets whose index has the
        // same number of set bits as its modulo index.  Across many seeds it
        // should visit a large fraction of those reachable sets, and never a
        // set outside that class.
        let geometry = l1();
        let mut policy = RandomModuloPlacement::new(geometry);
        let addr = Address::new(0x4000_0560);
        let modulo_index = geometry.modulo_index(addr);
        let popcount = modulo_index.count_ones();
        let reachable = (0..geometry.sets()).filter(|s| s.count_ones() == popcount).count();
        let mut visited = HashSet::new();
        for seed in 0..4000u64 {
            policy.reseed(seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(99));
            let set = policy.set_index(addr);
            assert_eq!(set.count_ones(), popcount, "bit permutation must preserve popcount");
            visited.insert(set);
        }
        assert!(
            visited.len() * 2 > reachable,
            "address only visited {} of {} reachable sets",
            visited.len(),
            reachable
        );
    }

    #[test]
    fn rm_works_for_l2_geometry() {
        let geometry = CacheGeometry::leon3_l2_partition();
        let mut policy = RandomModuloPlacement::new(geometry);
        policy.reseed(31337);
        let mut seen = HashSet::new();
        let base = Address::new(0x2000_0000);
        for i in 0..geometry.sets() as u64 {
            let set = policy.set_index(base.offset(i * geometry.line_size() as u64));
            assert!(seen.insert(set));
        }
    }

    #[test]
    fn rm_control_bits_match_paper_for_eight_index_bits() {
        let policy = RandomModuloPlacement::new(CacheGeometry::eight_index_bits());
        assert_eq!(policy.control_bits(), 20);
    }

    #[test]
    fn build_factory_produces_matching_kinds() {
        for kind in PlacementKind::ALL {
            let policy = kind.build(l1()).unwrap();
            assert_eq!(policy.kind(), kind);
            assert_eq!(policy.geometry(), l1());
        }
    }

    #[test]
    fn boxed_policy_clone_preserves_behaviour() {
        let mut policy = PlacementKind::RandomModulo.build(l1()).unwrap();
        policy.reseed(555);
        let cloned = policy.clone();
        for i in 0..64u64 {
            let addr = Address::new(0x9000_0000 + i * 32);
            assert_eq!(policy.set_index(addr), cloned.set_index(addr));
        }
    }

    #[test]
    fn rm_memoized_index_matches_the_pure_network_walk() {
        // The per-segment LUT memo must be invisible: for any mix of
        // lines (far more segments than memo slots, so slots are evicted
        // and refilled constantly) and across reseeds (which must
        // invalidate every slot), the cached path returns exactly what
        // the pure Benes walk returns.
        for geometry in [
            CacheGeometry::leon3_l1(),
            CacheGeometry::leon3_l2_partition(),
            CacheGeometry::new(8, 2, 32).unwrap(),
        ] {
            let mut policy = RandomModuloPlacement::new(geometry);
            let mut sm = SplitMix64::new(0x5EED_CAFE);
            for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
                policy.reseed(seed);
                for _ in 0..5_000 {
                    // ~2^26 line space: thousands of distinct segments.
                    let line = LineAddr::new(sm.next_u64() & 0x3FF_FFFF);
                    let pure = PlacementPolicy::set_index_of_line(&policy, line);
                    assert_eq!(
                        policy.set_index_of_line_cached(line),
                        pure,
                        "memo diverged for line {line} under seed {seed:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn placement_mut_path_matches_shared_path_for_all_kinds() {
        let geometry = l1();
        let mut sm = SplitMix64::new(42);
        for kind in PlacementKind::ALL {
            let mut placement = Placement::new(kind, geometry).unwrap();
            placement.reseed(1234);
            for _ in 0..2_000 {
                let line = LineAddr::new(sm.next_u64() & 0xFF_FFFF);
                assert_eq!(
                    placement.set_index_of_line_mut(line),
                    placement.set_index_of_line(line),
                    "{kind}"
                );
            }
        }
    }

    #[test]
    fn static_placement_matches_boxed_policy() {
        // The enum must be behaviourally identical to the boxed trait
        // object it replaces, for every kind, seed and address.
        let geometry = l1();
        let mut sm = SplitMix64::new(2024);
        for kind in PlacementKind::ALL {
            let mut fast = Placement::new(kind, geometry).unwrap();
            let mut boxed = kind.build(geometry).unwrap();
            assert_eq!(fast.kind(), kind);
            assert_eq!(fast.geometry(), geometry);
            assert_eq!(fast.is_randomized(), kind.is_randomized());
            assert_eq!(fast.stores_index_in_tag(), kind.stores_index_in_tag());
            for _ in 0..5 {
                let seed = sm.next_u64();
                fast.reseed(seed);
                boxed.reseed(seed);
                assert_eq!(fast.seed(), seed);
                for _ in 0..500 {
                    let addr = Address::new(sm.next_u64() & 0xFFFF_FFFF);
                    assert_eq!(fast.set_index(addr), boxed.set_index(addr), "{kind}");
                    let line = geometry.line_addr(addr);
                    assert_eq!(
                        fast.set_index_of_line(line),
                        boxed.set_index_of_line(line),
                        "{kind}"
                    );
                }
            }
        }
    }

    #[test]
    fn custom_variant_adapts_boxed_policies() {
        let geometry = l1();
        let mut custom = Placement::from(PlacementKind::RandomModulo.build(geometry).unwrap());
        assert!(matches!(custom, Placement::Custom(_)));
        assert_eq!(custom.kind(), PlacementKind::RandomModulo);
        custom.reseed(42);
        let mut reference = RandomModuloPlacement::new(geometry);
        reference.reseed(42);
        for i in 0..128u64 {
            let addr = Address::new(0x8000_0000 + i * 32);
            assert_eq!(custom.set_index(addr), reference.set_index(addr));
        }
        // The adapter still round-trips through the trait view and clones.
        let cloned = custom.clone();
        assert_eq!(cloned.as_dyn().seed(), 42);
    }

    #[test]
    fn lane_bank_matches_scalar_placements_per_lane() {
        // Every lane of the wavefront bank must be bit-identical to a
        // scalar Placement reseeded with the same value — for all four
        // policies, partial waves, and the single-lane sparse path.
        for geometry in [CacheGeometry::leon3_l1(), CacheGeometry::leon3_l2_partition()] {
            for kind in PlacementKind::ALL {
                for lanes in [1usize, 3, 8] {
                    let mut bank = PlacementLanes::new(kind, geometry, lanes).unwrap();
                    assert_eq!(bank.lane_count(), lanes);
                    assert_eq!(bank.geometry(), geometry);
                    assert_eq!(bank.is_uniform(), !kind.is_randomized());
                    let mut scalars: Vec<Placement> = (0..lanes)
                        .map(|lane| {
                            let mut p = Placement::new(kind, geometry).unwrap();
                            let seed = (lane as u64) * 0x9E37_79B9 + 0xC0FFEE;
                            p.reseed(seed);
                            bank.reseed_lane(lane, seed);
                            p
                        })
                        .collect();
                    let mut sm = SplitMix64::new(0xABCD);
                    let mut out = vec![0u32; lanes];
                    for step in 0..3_000 {
                        let line = LineAddr::new(sm.next_u64() & 0x3FF_FFFF);
                        let active = 1 + step % lanes;
                        bank.index_lanes(line, &mut out[..active]);
                        for (lane, scalar) in scalars.iter_mut().take(active).enumerate() {
                            assert_eq!(
                                out[lane],
                                scalar.set_index_of_line_mut(line),
                                "{kind} lane {lane} of {lanes}"
                            );
                        }
                        let lone = step % lanes;
                        assert_eq!(
                            bank.index_lane(lone, line),
                            scalars[lone].set_index_of_line_mut(line),
                            "{kind} sparse lane {lone}"
                        );
                        if kind.is_randomized() {
                            assert!(!bank.is_uniform());
                        } else {
                            assert_eq!(bank.index_uniform(line), out[0]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lane_bank_reseed_matches_scalar_reseed() {
        // Reseeding one lane mid-campaign (what every batch does) must
        // leave the other lanes' mappings untouched and bit-identical.
        let geometry = l1();
        for kind in [PlacementKind::HashRandom, PlacementKind::RandomModulo] {
            let mut bank = PlacementLanes::new(kind, geometry, 4).unwrap();
            let mut scalars: Vec<Placement> = (0..4)
                .map(|lane| {
                    let mut p = Placement::new(kind, geometry).unwrap();
                    p.reseed(lane as u64 + 7);
                    bank.reseed_lane(lane, lane as u64 + 7);
                    p
                })
                .collect();
            let mut sm = SplitMix64::new(9);
            for round in 0..20 {
                let reseeded = round % 4;
                let seed = sm.next_u64();
                bank.reseed_lane(reseeded, seed);
                scalars[reseeded].reseed(seed);
                let mut out = [0u32; 4];
                for _ in 0..200 {
                    let line = LineAddr::new(sm.next_u64() & 0xFF_FFFF);
                    bank.index_lanes(line, &mut out);
                    for (lane, scalar) in scalars.iter_mut().enumerate() {
                        assert_eq!(out[lane], scalar.set_index_of_line_mut(line), "{kind}");
                    }
                }
            }
        }
    }

    #[test]
    fn custom_lane_bank_routes_through_scalar_policies() {
        // Placement::Custom lanes keep working through the boxed scalar
        // path: the bank reports non-uniform custom dispatch and matches
        // per-lane boxed references exactly.
        let geometry = l1();
        let placements: Vec<Placement> = (0..3)
            .map(|lane| {
                let mut p =
                    Placement::from(PlacementKind::RandomModulo.build(geometry).unwrap());
                p.reseed(lane as u64 * 31 + 5);
                p
            })
            .collect();
        let mut bank = PlacementLanes::from_placements(placements);
        assert!(bank.is_custom());
        assert!(!bank.is_uniform());
        assert_eq!(bank.lane_count(), 3);
        let mut references: Vec<Box<dyn PlacementPolicy>> = (0..3)
            .map(|lane| {
                let mut p = PlacementKind::RandomModulo.build(geometry).unwrap();
                p.reseed(lane as u64 * 31 + 5);
                p
            })
            .collect();
        let mut sm = SplitMix64::new(77);
        let mut out = [0u32; 3];
        for _ in 0..2_000 {
            let line = LineAddr::new(sm.next_u64() & 0xFF_FFFF);
            bank.index_lanes(line, &mut out);
            for (lane, reference) in references.iter_mut().enumerate() {
                assert_eq!(out[lane], reference.set_index_of_line(line));
                assert_eq!(bank.index_lane(lane, line), out[lane]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "index_uniform called on a per-lane placement bank")]
    fn index_uniform_panics_on_randomized_banks() {
        let mut bank = PlacementLanes::new(PlacementKind::HashRandom, l1(), 2).unwrap();
        bank.index_uniform(LineAddr::new(0));
    }

    #[test]
    fn all_policies_map_within_bounds() {
        let geometry = l1();
        let mut sm = SplitMix64::new(1);
        for kind in PlacementKind::ALL {
            let mut policy = kind.build(geometry).unwrap();
            policy.reseed(9999);
            for _ in 0..2000 {
                let addr = Address::new(sm.next_u64() & 0xFFFF_FFFF);
                assert!(policy.set_index(addr) < geometry.sets());
            }
        }
    }
}
