//! Benes permutation networks.
//!
//! Random Modulo permutes the *index bits* of an address with a Benes
//! network: a multistage interconnection network built exclusively from 2x2
//! switches (controlled swaps).  Because every switch either passes its two
//! inputs straight through or crosses them, every control word realises a
//! *permutation* of the inputs — which is exactly the property RM relies on:
//! a permutation of the index bits is a bijection on the index value, so two
//! addresses in the same cache segment with different modulo indices can
//! never be mapped to the same set, for any seed.
//!
//! The classic Benes network is defined for a power-of-two number of inputs
//! `n` and has `2*log2(n) - 1` stages of `n/2` switches (20 control bits for
//! `n = 8`, the figure quoted in the paper).  This implementation uses the
//! standard recursive construction generalised to arbitrary `n >= 1` (for odd
//! sub-networks the unpaired wire bypasses the outer switch stages), so
//! caches whose index width is not a power of two — e.g. the 128-set LEON3
//! L1 (7 index bits) or the 1024-set L2 partition (10 index bits) — are
//! supported with the same guarantees.

use std::fmt;

/// One 2x2 switch: if its control bit is set, the values on wires `a` and
/// `b` are exchanged; otherwise they pass through unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Gate {
    a: usize,
    b: usize,
}

/// A Benes permutation network over `n` wires.
///
/// ```
/// use randmod_core::benes::BenesNetwork;
///
/// let net = BenesNetwork::new(8);
/// // The 8-input Benes network needs 20 control bits, as stated in the paper.
/// assert_eq!(net.control_bits(), 20);
///
/// // Every control word yields a permutation (a bijection on wire indices).
/// let perm = net.permutation(0b1010_1100_0011_0101_1001);
/// let mut sorted = perm.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..8).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenesNetwork {
    n: usize,
    gates: Vec<Gate>,
}

impl BenesNetwork {
    /// Maximum number of control bits supported (controls are packed in a
    /// `u128`).
    pub const MAX_CONTROL_BITS: usize = 128;

    /// Builds the network for `n` wires.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or if the network would need more than
    /// [`Self::MAX_CONTROL_BITS`] control bits (indices wider than any
    /// realistic cache).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a Benes network needs at least one wire");
        let mut gates = Vec::new();
        let wires: Vec<usize> = (0..n).collect();
        Self::build(&wires, &mut gates);
        assert!(
            gates.len() <= Self::MAX_CONTROL_BITS,
            "network over {n} wires needs {} control bits, more than the supported {}",
            gates.len(),
            Self::MAX_CONTROL_BITS
        );
        BenesNetwork { n, gates }
    }

    fn build(wires: &[usize], gates: &mut Vec<Gate>) {
        let m = wires.len();
        if m <= 1 {
            return;
        }
        if m == 2 {
            gates.push(Gate {
                a: wires[0],
                b: wires[1],
            });
            return;
        }
        let half = m / 2;
        // Input switch stage.
        for i in 0..half {
            gates.push(Gate {
                a: wires[2 * i],
                b: wires[2 * i + 1],
            });
        }
        // Recursive sub-networks: the first output of every input switch
        // feeds the upper sub-network, the second output the lower one.  For
        // odd m the unpaired wire bypasses the outer stages and joins the
        // upper sub-network.
        let mut upper: Vec<usize> = (0..half).map(|i| wires[2 * i]).collect();
        let lower: Vec<usize> = (0..half).map(|i| wires[2 * i + 1]).collect();
        if m % 2 == 1 {
            upper.push(wires[m - 1]);
        }
        Self::build(&upper, gates);
        Self::build(&lower, gates);
        // Output switch stage.
        for i in 0..half {
            gates.push(Gate {
                a: wires[2 * i],
                b: wires[2 * i + 1],
            });
        }
    }

    /// Number of wires.
    pub fn wires(&self) -> usize {
        self.n
    }

    /// Number of 2x2 switches, i.e. the number of control bits the network
    /// consumes.
    pub fn control_bits(&self) -> usize {
        self.gates.len()
    }

    /// Applies the network to `items` in place, consuming one control bit
    /// per switch (bit `k` of `controls` drives switch `k`).
    ///
    /// # Panics
    ///
    /// Panics if `items.len()` differs from the number of wires.
    pub fn apply<T>(&self, items: &mut [T], controls: u128) {
        assert_eq!(
            items.len(),
            self.n,
            "item count {} does not match the {} network wires",
            items.len(),
            self.n
        );
        for (k, gate) in self.gates.iter().enumerate() {
            if (controls >> k) & 1 == 1 {
                items.swap(gate.a, gate.b);
            }
        }
    }

    /// Returns the permutation realised by `controls`: output wire `i`
    /// carries the value that entered on wire `permutation[i]`.
    pub fn permutation(&self, controls: u128) -> Vec<usize> {
        let mut items: Vec<usize> = (0..self.n).collect();
        self.apply(&mut items, controls);
        items
    }

    /// Permutes the low `n` bits of `value` according to `controls`,
    /// treating bit position `i` of `value` as the value on wire `i`.
    ///
    /// Because the network realises a permutation of bit positions, this is
    /// a bijection on `0..2^n` for every control word — the property Random
    /// Modulo relies on.
    /// This runs once per Random-Modulo cache access, so it is written to
    /// be allocation-free and branchless: each switch is a conditional
    /// exchange of two bit positions, applied with the XOR-swap identity
    /// masked by the control bit.  Bits at positions `n` and above are
    /// discarded, as the bit-vector construction this replaced did.
    #[inline]
    pub fn permute_bits(&self, value: u32, controls: u128) -> u32 {
        let mut v = if self.n >= u32::BITS as usize {
            value
        } else {
            value & ((1u32 << self.n) - 1)
        };
        for (k, gate) in self.gates.iter().enumerate() {
            let control = ((controls >> k) & 1) as u32;
            // 1 when the switch is crossed and the two bits differ.
            let diff = ((v >> gate.a) ^ (v >> gate.b)) & control;
            v ^= (diff << gate.a) | (diff << gate.b);
        }
        v
    }

    /// Permutes the low `n` bits of `value` once per lane, lane `i` using
    /// `controls[i]`, writing lane `i`'s result into `out[i]`.
    ///
    /// This is the wavefront form of [`Self::permute_bits`] used when the
    /// lane-batched Random-Modulo memo fills one LUT entry across all seed
    /// lanes: the same modulo index enters every lane, each lane applies its
    /// own seed-derived control word.  The walk is gate-outer / lane-inner —
    /// a fixed-trip, branch-free inner sweep over adjacent lane values that
    /// the compiler can vectorize — and each lane's result is bit-identical
    /// to the scalar `permute_bits(value, controls[i])`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `controls`.
    pub fn permute_bits_lanes(&self, value: u32, controls: &[u128], out: &mut [u32]) {
        assert!(
            out.len() >= controls.len(),
            "output buffer holds {} lanes, control words for {}",
            out.len(),
            controls.len()
        );
        let masked = if self.n >= u32::BITS as usize {
            value
        } else {
            value & ((1u32 << self.n) - 1)
        };
        let out = &mut out[..controls.len()];
        out.fill(masked);
        for (k, gate) in self.gates.iter().enumerate() {
            let (a, b) = (gate.a, gate.b);
            for (v, &word) in out.iter_mut().zip(controls.iter()) {
                let control = ((word >> k) & 1) as u32;
                let diff = ((*v >> a) ^ (*v >> b)) & control;
                *v ^= (diff << a) | (diff << b);
            }
        }
    }

    /// Masks a control word to the bits the network actually uses.
    pub fn mask_controls(&self, controls: u128) -> u128 {
        if self.gates.len() == 128 {
            controls
        } else {
            controls & ((1u128 << self.gates.len()) - 1)
        }
    }
}

impl fmt::Display for BenesNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Benes network: {} wires, {} switches",
            self.n,
            self.gates.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn control_bits_match_paper_for_eight_wires() {
        // The paper: "When using a 8-bit Benes network 20 bits are required
        // to drive the actual permutation of the index bits."
        assert_eq!(BenesNetwork::new(8).control_bits(), 20);
    }

    #[test]
    fn control_bits_for_small_sizes() {
        assert_eq!(BenesNetwork::new(1).control_bits(), 0);
        assert_eq!(BenesNetwork::new(2).control_bits(), 1);
        assert_eq!(BenesNetwork::new(4).control_bits(), 6);
        assert_eq!(BenesNetwork::new(16).control_bits(), 56);
    }

    #[test]
    fn odd_sizes_are_supported() {
        for n in [3usize, 5, 7, 9, 10, 11, 13] {
            let net = BenesNetwork::new(n);
            assert_eq!(net.wires(), n);
            assert!(net.control_bits() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one wire")]
    fn zero_wires_panics() {
        BenesNetwork::new(0);
    }

    #[test]
    fn every_control_word_is_a_permutation_n7() {
        let net = BenesNetwork::new(7);
        let mut sm = crate::prng::SplitMix64::new(42);
        for _ in 0..2000 {
            let controls = ((sm.next_u64() as u128) << 64) | sm.next_u64() as u128;
            let perm = net.permutation(controls);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn permute_bits_is_bijective_n7() {
        let net = BenesNetwork::new(7);
        let mut sm = crate::prng::SplitMix64::new(7);
        for _ in 0..50 {
            let controls = sm.next_u64() as u128;
            let mut seen = [false; 128];
            for v in 0u32..128 {
                let out = net.permute_bits(v, controls);
                assert!(out < 128);
                assert!(!seen[out as usize], "collision for control {controls:#x}");
                seen[out as usize] = true;
            }
        }
    }

    #[test]
    fn permute_bits_matches_the_permutation_reference() {
        // The branchless bit-swap walk must realise exactly the wire
        // permutation reported by `permutation()` (the retained reference
        // implementation built on `apply`).
        for n in [1usize, 2, 3, 4, 7, 8, 10] {
            let net = BenesNetwork::new(n);
            let mut sm = crate::prng::SplitMix64::new(0xB1B1);
            for _ in 0..200 {
                let controls = ((sm.next_u64() as u128) << 64) | sm.next_u64() as u128;
                let perm = net.permutation(controls);
                for value in 0..(1u32 << n).min(512) {
                    let expected = (0..n)
                        .filter(|&out| (value >> perm[out]) & 1 == 1)
                        .fold(0u32, |acc, out| acc | (1 << out));
                    assert_eq!(net.permute_bits(value, controls), expected);
                }
            }
        }
    }

    #[test]
    fn permute_bits_discards_bits_above_the_wire_count() {
        let net = BenesNetwork::new(7);
        assert_eq!(net.permute_bits(0x80, 0), 0);
        assert_eq!(net.permute_bits(0xFFFF_FFFF, 0), 0x7F);
        let mut sm = crate::prng::SplitMix64::new(3);
        for _ in 0..100 {
            let controls = sm.next_u64() as u128;
            let value = sm.next_u64() as u32;
            assert_eq!(
                net.permute_bits(value, controls),
                net.permute_bits(value & 0x7F, controls)
            );
            assert!(net.permute_bits(value, controls) < 128);
        }
    }

    #[test]
    fn zero_controls_is_identity() {
        for n in [2usize, 4, 7, 8, 10] {
            let net = BenesNetwork::new(n);
            assert_eq!(net.permutation(0), (0..n).collect::<Vec<_>>());
            for v in 0..(1u32 << n).min(256) {
                assert_eq!(net.permute_bits(v, 0), v);
            }
        }
    }

    #[test]
    fn all_permutations_reachable_for_four_wires() {
        // Exhaustive check for n = 4: the 6-switch network must realise all
        // 4! = 24 permutations over its 64 control words (rearrangeability).
        let net = BenesNetwork::new(4);
        let mut reached = HashSet::new();
        for controls in 0u128..(1 << net.control_bits()) {
            reached.insert(net.permutation(controls));
        }
        assert_eq!(reached.len(), 24);
    }

    #[test]
    fn all_permutations_reachable_for_three_wires() {
        let net = BenesNetwork::new(3);
        let mut reached = HashSet::new();
        for controls in 0u128..(1 << net.control_bits()) {
            reached.insert(net.permutation(controls));
        }
        assert_eq!(reached.len(), 6);
    }

    #[test]
    fn many_distinct_permutations_for_eight_wires() {
        // 8! = 40320 permutations exist; sampling 5000 random control words
        // should produce a large number of distinct ones.
        let net = BenesNetwork::new(8);
        let mut sm = crate::prng::SplitMix64::new(99);
        let mut reached = HashSet::new();
        for _ in 0..5000 {
            let controls = sm.next_u64() as u128;
            reached.insert(net.permutation(net.mask_controls(controls)));
        }
        assert!(reached.len() > 2500, "only {} distinct permutations", reached.len());
    }

    #[test]
    fn lane_wave_matches_scalar_permute_bits() {
        // The gate-outer/lane-inner wave must reproduce the scalar walk for
        // every lane, for even/odd wire counts and partial lane waves.
        for n in [1usize, 2, 7, 8, 10] {
            let net = BenesNetwork::new(n);
            let mut sm = crate::prng::SplitMix64::new(0xFACE);
            for lanes in [1usize, 3, 8] {
                let controls: Vec<u128> = (0..lanes)
                    .map(|_| ((sm.next_u64() as u128) << 64) | sm.next_u64() as u128)
                    .collect();
                let mut out = vec![0u32; lanes + 2];
                for _ in 0..20 {
                    let value = sm.next_u64() as u32;
                    net.permute_bits_lanes(value, &controls, &mut out);
                    for (lane, &control) in controls.iter().enumerate() {
                        assert_eq!(out[lane], net.permute_bits(value, control));
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "output buffer holds")]
    fn lane_wave_with_short_output_panics() {
        let net = BenesNetwork::new(4);
        let mut out = [0u32; 1];
        net.permute_bits_lanes(3, &[0, 1], &mut out);
    }

    #[test]
    fn apply_respects_item_order() {
        let net = BenesNetwork::new(2);
        let mut items = ['a', 'b'];
        net.apply(&mut items, 0);
        assert_eq!(items, ['a', 'b']);
        net.apply(&mut items, 1);
        assert_eq!(items, ['b', 'a']);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn apply_with_wrong_length_panics() {
        let net = BenesNetwork::new(4);
        let mut items = [1, 2, 3];
        net.apply(&mut items, 0);
    }

    #[test]
    fn mask_controls_limits_to_used_bits() {
        let net = BenesNetwork::new(4);
        assert_eq!(net.mask_controls(u128::MAX), (1 << 6) - 1);
    }

    #[test]
    fn display_is_informative() {
        let net = BenesNetwork::new(8);
        assert_eq!(net.to_string(), "Benes network: 8 wires, 20 switches");
    }
}
