//! Addresses, cache geometry and bit-field arithmetic.
//!
//! The paper works with 32-bit physical addresses, 32-byte cache lines and
//! LEON3-like cache dimensions (16KB 4-way L1 caches, a 128KB 4-way L2
//! partition).  [`CacheGeometry`] captures the dimensioning of one cache and
//! derives the offset / index / tag bit-field split as well as the *cache
//! segment* notion that Random Modulo is built around: all addresses with the
//! same cache-way alignment (`addr / way_size`) belong to the same segment,
//! and RM guarantees that two addresses of the same segment that modulo maps
//! to different sets are never mapped to the same set.

use crate::error::ConfigError;
use std::fmt;

/// A byte address as seen by the cache (the paper assumes 32-bit addresses,
/// but 64-bit values are accepted so larger synthetic footprints can be
/// modelled).
///
/// ```
/// use randmod_core::Address;
///
/// let a = Address::new(0x4000_1040);
/// assert_eq!(a.raw(), 0x4000_1040);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from its raw byte value.
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    pub const fn offset(self, bytes: u64) -> Self {
        Address(self.0 + bytes)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<u32> for Address {
    fn from(raw: u32) -> Self {
        Address(raw as u64)
    }
}

impl From<Address> for u64 {
    fn from(addr: Address) -> Self {
        addr.0
    }
}

/// A cache-line address: the byte address with the line-offset bits removed.
///
/// Placement policies operate on line addresses; two byte addresses on the
/// same line always behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from its raw (already shifted) value.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the line `n` lines after this one.
    pub const fn offset(self, lines: u64) -> Self {
        LineAddr(self.0 + lines)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

/// Dimensioning of one set-associative cache and the derived bit-field split.
///
/// ```
/// use randmod_core::CacheGeometry;
///
/// # fn main() -> Result<(), randmod_core::ConfigError> {
/// // LEON3 L1: 16KB, 4 ways, 32-byte lines.
/// let g = CacheGeometry::new(128, 4, 32)?;
/// assert_eq!(g.offset_bits(), 5);
/// assert_eq!(g.index_bits(), 7);
/// assert_eq!(g.way_size_bytes(), 4 * 1024);
/// assert_eq!(g.total_size_bytes(), 16 * 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: u32,
    ways: u32,
    line_size: u32,
    offset_bits: u32,
    index_bits: u32,
}

impl CacheGeometry {
    /// Maximum supported number of index bits.
    pub const MAX_INDEX_BITS: u32 = 24;

    /// Creates a geometry from the number of sets, ways and the line size in
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `sets` or `line_size` is not a power of
    /// two, if any parameter is zero, or if the number of sets exceeds
    /// 2^[`Self::MAX_INDEX_BITS`].
    pub fn new(sets: u32, ways: u32, line_size: u32) -> Result<Self, ConfigError> {
        if sets == 0 {
            return Err(ConfigError::Zero { parameter: "sets" });
        }
        if ways == 0 {
            return Err(ConfigError::Zero { parameter: "ways" });
        }
        if line_size == 0 {
            return Err(ConfigError::Zero {
                parameter: "line size",
            });
        }
        if !sets.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                parameter: "sets",
                value: sets as u64,
            });
        }
        if !line_size.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                parameter: "line size",
                value: line_size as u64,
            });
        }
        let index_bits = sets.trailing_zeros();
        if index_bits > Self::MAX_INDEX_BITS {
            return Err(ConfigError::OutOfRange {
                parameter: "index bits",
                value: index_bits as u64,
                max: Self::MAX_INDEX_BITS as u64,
            });
        }
        Ok(CacheGeometry {
            sets,
            ways,
            line_size,
            offset_bits: line_size.trailing_zeros(),
            index_bits,
        })
    }

    /// Creates a geometry from a total capacity in bytes, associativity and
    /// line size.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the capacity is not divisible into a
    /// power-of-two number of sets, or any parameter is invalid.
    pub fn from_capacity(capacity_bytes: u32, ways: u32, line_size: u32) -> Result<Self, ConfigError> {
        if ways == 0 {
            return Err(ConfigError::Zero { parameter: "ways" });
        }
        if line_size == 0 {
            return Err(ConfigError::Zero {
                parameter: "line size",
            });
        }
        let way_bytes = capacity_bytes / ways;
        if way_bytes * ways != capacity_bytes {
            return Err(ConfigError::Inconsistent {
                reason: format!("capacity {capacity_bytes} is not divisible by {ways} ways"),
            });
        }
        let sets = way_bytes / line_size;
        if sets * line_size != way_bytes {
            return Err(ConfigError::Inconsistent {
                reason: format!("way size {way_bytes} is not divisible by line size {line_size}"),
            });
        }
        Self::new(sets, ways, line_size)
    }

    /// Number of sets.
    pub const fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity (number of ways).
    pub const fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    pub const fn line_size(&self) -> u32 {
        self.line_size
    }

    /// Number of byte-offset bits within a line.
    pub const fn offset_bits(&self) -> u32 {
        self.offset_bits
    }

    /// Number of set-index bits (`log2(sets)`).
    pub const fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Size of one cache way in bytes (the *cache segment* size of the paper).
    pub const fn way_size_bytes(&self) -> u64 {
        self.sets as u64 * self.line_size as u64
    }

    /// Total cache capacity in bytes.
    pub const fn total_size_bytes(&self) -> u64 {
        self.way_size_bytes() * self.ways as u64
    }

    /// Number of lines in one way (equal to the number of sets).
    pub const fn lines_per_way(&self) -> u32 {
        self.sets
    }

    /// Converts a byte address to its cache-line address.
    pub const fn line_addr(&self, addr: Address) -> LineAddr {
        LineAddr::new(addr.raw() >> self.offset_bits)
    }

    /// Extracts the modulo set index of a byte address.
    pub const fn modulo_index(&self, addr: Address) -> u32 {
        (self.line_addr(addr).raw() & (self.sets as u64 - 1)) as u32
    }

    /// Extracts the modulo set index of a line address.
    pub const fn modulo_index_of_line(&self, line: LineAddr) -> u32 {
        (line.raw() & (self.sets as u64 - 1)) as u32
    }

    /// Returns the tag bits of a byte address (everything above the index).
    pub const fn tag_bits(&self, addr: Address) -> u64 {
        self.line_addr(addr).raw() >> self.index_bits
    }

    /// Returns the tag bits of a line address.
    pub const fn tag_bits_of_line(&self, line: LineAddr) -> u64 {
        line.raw() >> self.index_bits
    }

    /// Identifier of the *cache segment* an address belongs to.
    ///
    /// Two addresses `A`, `B` belong to the same segment iff
    /// `A / way_size == B / way_size` (the paper's `⌊A/CWb⌋ = ⌊B/CWb⌋`).
    /// Random Modulo guarantees that addresses of the same segment with
    /// distinct modulo indices never collide in a set.
    pub const fn segment_of(&self, addr: Address) -> u64 {
        addr.raw() / self.way_size_bytes()
    }

    /// Identifier of the cache segment a line address belongs to.
    pub const fn segment_of_line(&self, line: LineAddr) -> u64 {
        line.raw() >> self.index_bits
    }

    /// Whether two byte addresses belong to the same cache segment.
    pub const fn same_segment(&self, a: Address, b: Address) -> bool {
        self.segment_of(a) == self.segment_of(b)
    }

    /// Reconstructs a representative byte address from a line address
    /// (offset bits set to zero).
    pub const fn byte_addr_of_line(&self, line: LineAddr) -> Address {
        Address::new(line.raw() << self.offset_bits)
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sets x {} ways x {}B lines ({}KB)",
            self.sets,
            self.ways,
            self.line_size,
            self.total_size_bytes() / 1024
        )
    }
}

/// Commonly used geometries of the paper's LEON3 evaluation platform.
impl CacheGeometry {
    /// The 16KB 4-way 32B-line first-level (instruction or data) cache.
    pub fn leon3_l1() -> Self {
        CacheGeometry::new(128, 4, 32).expect("static LEON3 L1 geometry is valid")
    }

    /// The 128KB 4-way 32B-line L2 cache partition of one core.
    pub fn leon3_l2_partition() -> Self {
        CacheGeometry::new(1024, 4, 32).expect("static LEON3 L2 geometry is valid")
    }

    /// The 256-set cache geometry used by the paper when sizing the 8-bit
    /// Benes network (8 index bits, 20 control bits).
    pub fn eight_index_bits() -> Self {
        CacheGeometry::new(256, 4, 32).expect("static 256-set geometry is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leon3_l1_dimensions() {
        let g = CacheGeometry::leon3_l1();
        assert_eq!(g.sets(), 128);
        assert_eq!(g.ways(), 4);
        assert_eq!(g.line_size(), 32);
        assert_eq!(g.offset_bits(), 5);
        assert_eq!(g.index_bits(), 7);
        assert_eq!(g.way_size_bytes(), 4096);
        assert_eq!(g.total_size_bytes(), 16 * 1024);
    }

    #[test]
    fn leon3_l2_dimensions() {
        let g = CacheGeometry::leon3_l2_partition();
        assert_eq!(g.total_size_bytes(), 128 * 1024);
        assert_eq!(g.index_bits(), 10);
        assert_eq!(g.way_size_bytes(), 32 * 1024);
    }

    #[test]
    fn eight_index_bit_geometry() {
        let g = CacheGeometry::eight_index_bits();
        assert_eq!(g.index_bits(), 8);
    }

    #[test]
    fn from_capacity_matches_new() {
        let a = CacheGeometry::from_capacity(16 * 1024, 4, 32).unwrap();
        let b = CacheGeometry::new(128, 4, 32).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_capacity_rejects_indivisible() {
        assert!(CacheGeometry::from_capacity(10_000, 3, 32).is_err());
    }

    #[test]
    fn rejects_non_power_of_two_sets() {
        let err = CacheGeometry::new(100, 4, 32).unwrap_err();
        assert!(matches!(err, ConfigError::NotPowerOfTwo { parameter: "sets", .. }));
    }

    #[test]
    fn rejects_non_power_of_two_line() {
        let err = CacheGeometry::new(128, 4, 48).unwrap_err();
        assert!(matches!(
            err,
            ConfigError::NotPowerOfTwo {
                parameter: "line size",
                ..
            }
        ));
    }

    #[test]
    fn rejects_zero_parameters() {
        assert!(CacheGeometry::new(0, 4, 32).is_err());
        assert!(CacheGeometry::new(128, 0, 32).is_err());
        assert!(CacheGeometry::new(128, 4, 0).is_err());
    }

    #[test]
    fn rejects_too_many_sets() {
        let err = CacheGeometry::new(1 << 25, 1, 32).unwrap_err();
        assert!(matches!(err, ConfigError::OutOfRange { .. }));
    }

    #[test]
    // The literal is grouped by bit-field (tag | index | offset), not in
    // equal-width digit groups.
    #[allow(clippy::unusual_byte_groupings)]
    fn modulo_index_and_tag_split() {
        let g = CacheGeometry::leon3_l1();
        // Address layout: [tag | 7-bit index | 5-bit offset]
        let addr = Address::new(0b1011_0101010_11010);
        assert_eq!(g.modulo_index(addr), 0b0101010);
        assert_eq!(g.tag_bits(addr), 0b1011);
    }

    #[test]
    fn consecutive_lines_have_consecutive_modulo_indices() {
        let g = CacheGeometry::leon3_l1();
        let base = Address::new(0x4000_0000);
        for i in 0..g.sets() as u64 {
            let addr = base.offset(i * g.line_size() as u64);
            assert_eq!(g.modulo_index(addr), i as u32 % g.sets());
        }
    }

    #[test]
    fn segment_identity() {
        let g = CacheGeometry::leon3_l1();
        let a = Address::new(0x1000);
        let b = a.offset(g.way_size_bytes() - 1);
        let c = a.offset(g.way_size_bytes());
        assert!(g.same_segment(a, b));
        assert!(!g.same_segment(a, c));
    }

    #[test]
    fn segment_of_line_consistent_with_segment_of_addr() {
        let g = CacheGeometry::leon3_l1();
        for raw in [0u64, 0x1000, 0x3FFF, 0x4000, 0x1234_5678] {
            let addr = Address::new(raw & !0x1F); // line-aligned
            let line = g.line_addr(addr);
            assert_eq!(g.segment_of(addr), g.segment_of_line(line));
        }
    }

    #[test]
    fn line_addr_round_trip() {
        let g = CacheGeometry::leon3_l1();
        let addr = Address::new(0x4000_1040);
        let line = g.line_addr(addr);
        let back = g.byte_addr_of_line(line);
        assert_eq!(back.raw(), 0x4000_1040 & !0x1F);
    }

    #[test]
    fn address_display_and_conversion() {
        let a = Address::new(0x1234);
        assert_eq!(a.to_string(), "0x00001234");
        assert_eq!(u64::from(a), 0x1234);
        assert_eq!(Address::from(0x1234u32), a);
        assert_eq!(format!("{:x}", a), "1234");
    }

    #[test]
    fn line_addr_display_and_offset() {
        let l = LineAddr::new(0x10);
        assert_eq!(l.to_string(), "line 0x10");
        assert_eq!(l.offset(4).raw(), 0x14);
        assert_eq!(LineAddr::from(0x10u64), l);
    }

    #[test]
    fn geometry_display() {
        let g = CacheGeometry::leon3_l1();
        assert_eq!(g.to_string(), "128 sets x 4 ways x 32B lines (16KB)");
    }
}
