//! Fixture tests: every rule has at least one failing fixture, one clean
//! fixture, one waived-with-reason fixture and one malformed-waiver
//! fixture.  Fixtures are inline strings scanned under synthetic
//! workspace-relative paths, so the scope machinery (engine / hot-path /
//! codec classification, `#[cfg(test)]` exemption) is exercised exactly
//! as in a real run.

use randmod_lint::rules::{classify, scan_source, RuleId, ScanOutcome};

/// Scans `src` as if it lived at `path` in the workspace.
fn scan(path: &str, src: &str) -> ScanOutcome {
    let scope = classify(path).unwrap_or_else(|| panic!("fixture path {path} must be in scope"));
    scan_source(path, src, scope)
}

fn rule_ids(outcome: &ScanOutcome) -> Vec<RuleId> {
    outcome.violations.iter().map(|v| v.rule).collect()
}

/// A hot-path engine file (P1 + D1/D2 apply, and it is also a codec file).
const HOT: &str = "crates/sim/src/checkpoint.rs";
/// An engine file that is neither hot-path nor codec (D1/D2 only).
const ENGINE: &str = "crates/core/src/cache.rs";
/// A non-engine file (only W1 applies).
const TOOL: &str = "crates/cli/src/main.rs";

// ---------------------------------------------------------------------------
// D1: no wall-clock / entropy / environment
// ---------------------------------------------------------------------------

#[test]
fn d1_flags_every_nondeterminism_source() {
    let src = r#"
        fn bad() {
            let t = std::time::SystemTime::now();
            let i = std::time::Instant::now();
            let home = std::env::var("HOME");
            let id = std::thread::current().id();
            let s = std::collections::hash_map::RandomState::new();
        }
    "#;
    let outcome = scan(ENGINE, src);
    let d1 = outcome.violations.iter().filter(|v| v.rule == RuleId::D1).count();
    assert!(d1 >= 5, "expected all five D1 sources flagged, got {outcome:?}");
}

#[test]
fn d1_ignores_non_engine_files() {
    let src = "fn ok() { let t = std::time::SystemTime::now(); }";
    let outcome = scan(TOOL, src);
    assert!(outcome.violations.is_empty(), "{outcome:?}");
}

#[test]
fn d1_exempts_cfg_test_modules() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            fn timed() { let t = std::time::SystemTime::now(); }
        }
    "#;
    let outcome = scan(ENGINE, src);
    assert!(outcome.violations.is_empty(), "{outcome:?}");
}

#[test]
fn d1_still_checks_cfg_not_test() {
    let src = r#"
        #[cfg(not(test))]
        fn prod() { let t = std::time::SystemTime::now(); }
    "#;
    let outcome = scan(ENGINE, src);
    assert_eq!(rule_ids(&outcome), vec![RuleId::D1], "{outcome:?}");
}

#[test]
fn d1_waived_with_reason_is_suppressed_and_counted() {
    let src = "fn f() { let t = std::time::Instant::now(); } // randmod: allow(D1, progress display only, never enters results)";
    let outcome = scan(ENGINE, src);
    assert!(outcome.violations.is_empty(), "{outcome:?}");
    assert_eq!(outcome.waivers.len(), 1);
    assert!(outcome.waivers[0].used, "waiver must be marked used");
}

// ---------------------------------------------------------------------------
// D2: no unordered collections
// ---------------------------------------------------------------------------

#[test]
fn d2_flags_hash_collections() {
    let src = r#"
        use std::collections::HashMap;
        fn f() { let m: HashMap<u32, u32> = HashMap::new(); }
    "#;
    let outcome = scan(ENGINE, src);
    assert!(
        outcome.violations.iter().all(|v| v.rule == RuleId::D2)
            && outcome.violations.len() >= 2,
        "{outcome:?}"
    );
}

#[test]
fn d2_accepts_ordered_collections() {
    let src = r#"
        use std::collections::{BTreeMap, BTreeSet};
        fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }
    "#;
    let outcome = scan(ENGINE, src);
    assert!(outcome.violations.is_empty(), "{outcome:?}");
}

#[test]
fn d2_exempts_test_only_use() {
    let src = r#"
        #[cfg(test)]
        use std::collections::HashSet;
        fn untouched() {}
    "#;
    let outcome = scan(ENGINE, src);
    assert!(outcome.violations.is_empty(), "{outcome:?}");
}

#[test]
fn d2_waiver_missing_reason_is_a_w1_violation_and_does_not_suppress() {
    let src = "use std::collections::HashMap; // randmod: allow(D2)";
    let outcome = scan(ENGINE, src);
    let ids = rule_ids(&outcome);
    assert!(ids.contains(&RuleId::W1), "missing reason must be W1: {outcome:?}");
    assert!(ids.contains(&RuleId::D2), "a malformed waiver must not suppress: {outcome:?}");
}

// ---------------------------------------------------------------------------
// P1: panic-freedom in hot-path modules
// ---------------------------------------------------------------------------

#[test]
fn p1_flags_the_whole_panic_family() {
    let src = r#"
        fn f(v: Vec<u32>) -> u32 {
            let a = v.first().unwrap();
            let b = v.first().expect("non-empty");
            if v.is_empty() { panic!("empty"); }
            match a { 0 => unreachable!("zero filtered"), _ => {} }
            todo!("later")
        }
    "#;
    let outcome = scan(HOT, src);
    let p1 = outcome.violations.iter().filter(|v| v.rule == RuleId::P1).count();
    assert_eq!(p1, 5, "{outcome:?}");
}

#[test]
fn p1_flags_slice_indexing_but_not_types_attributes_or_literals() {
    let src = r#"
        #[derive(Clone)]
        struct S { data: Vec<u32> }
        fn f(s: &S, buf: &mut [u8], i: usize) -> u32 {
            let arr = [0u8; 4];
            let _ = buf.len();
            let _ = arr;
            s.data[i]
        }
    "#;
    let outcome = scan(HOT, src);
    assert_eq!(rule_ids(&outcome), vec![RuleId::P1], "{outcome:?}");
    assert_eq!(outcome.violations[0].snippet, "s.data[i]");
}

#[test]
fn p1_does_not_apply_outside_hot_path_modules() {
    let src = "fn f(v: Vec<u32>) -> u32 { v[0] + v.first().unwrap() }";
    let outcome = scan(ENGINE, src);
    assert!(outcome.violations.is_empty(), "{outcome:?}");
}

#[test]
fn p1_item_scoped_waiver_covers_the_whole_function() {
    let src = r#"
        // randmod: allow(P1, i < v.len() is asserted by every caller)
        fn f(v: &[u32], i: usize) -> u32 {
            let x = v[i];
            x + v[i]
        }
        fn unwaived(v: &[u32], i: usize) -> u32 { v[i] }
    "#;
    let outcome = scan(HOT, src);
    assert_eq!(rule_ids(&outcome), vec![RuleId::P1], "{outcome:?}");
    assert_eq!(outcome.violations[0].snippet, "fn unwaived(v: &[u32], i: usize) -> u32 { v[i] }");
    assert!(outcome.waivers[0].used);
}

#[test]
fn p1_trailing_waiver_covers_only_its_line() {
    let src = r#"
        fn f(v: &[u32]) -> u32 {
            let a = v[0]; // randmod: allow(P1, guarded by the is_empty check above)
            v[1]
        }
    "#;
    let outcome = scan(HOT, src);
    assert_eq!(rule_ids(&outcome), vec![RuleId::P1], "{outcome:?}");
    assert_eq!(outcome.violations[0].snippet, "v[1]");
}

#[test]
fn p1_exempts_test_code_in_hot_files() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            #[test]
            fn asserts_freely() {
                let v = vec![1u32];
                assert_eq!(v[0], v.first().copied().unwrap());
            }
        }
    "#;
    let outcome = scan(HOT, src);
    assert!(outcome.violations.is_empty(), "{outcome:?}");
}

// ---------------------------------------------------------------------------
// C1: truncating casts in codec paths
// ---------------------------------------------------------------------------

#[test]
fn c1_flags_truncating_casts_in_codec_files() {
    let src = "fn f(len: u64) -> usize { len as usize }";
    let outcome = scan(HOT, src); // checkpoint.rs is also a codec file
    assert_eq!(rule_ids(&outcome), vec![RuleId::C1], "{outcome:?}");
}

#[test]
fn c1_accepts_widening_casts() {
    let src = "fn f(x: u32) -> u64 { x as u64 }";
    let outcome = scan(HOT, src);
    assert!(outcome.violations.is_empty(), "{outcome:?}");
}

#[test]
fn c1_does_not_apply_outside_codec_files() {
    let src = "fn f(x: u64) -> u32 { x as u32 }";
    let outcome = scan(ENGINE, src);
    assert!(outcome.violations.is_empty(), "{outcome:?}");
}

#[test]
fn c1_waived_with_reason_is_suppressed() {
    let src = "fn f(x: u64) -> u32 { x as u32 } // randmod: allow(C1, x is a CRC-32, provably < 2^32)";
    let outcome = scan(HOT, src);
    assert!(outcome.violations.is_empty(), "{outcome:?}");
    assert!(outcome.waivers[0].used);
}

// ---------------------------------------------------------------------------
// W1: waiver hygiene
// ---------------------------------------------------------------------------

#[test]
fn w1_flags_unknown_rule_names() {
    let src = "fn f() {} // randmod: allow(Z9, no such rule)";
    let outcome = scan(TOOL, src);
    assert_eq!(rule_ids(&outcome), vec![RuleId::W1], "{outcome:?}");
}

#[test]
fn w1_flags_empty_reasons() {
    let src = "fn f() {} // randmod: allow(P1,    )";
    let outcome = scan(HOT, src);
    assert_eq!(rule_ids(&outcome), vec![RuleId::W1], "{outcome:?}");
}

#[test]
fn misspelled_waiver_marker_is_ignored_and_violation_still_fires() {
    // `alow` is not a waiver: the violation it meant to suppress still
    // fires, so the typo is self-announcing rather than silently fatal.
    let src = "fn f(v: &[u32]) -> u32 { v[0] } // randmod: alow(P1, typo)";
    let outcome = scan(HOT, src);
    assert_eq!(rule_ids(&outcome), vec![RuleId::P1], "{outcome:?}");
    assert!(outcome.waivers.is_empty());
}

#[test]
fn unused_waivers_are_reported_not_silently_dropped() {
    let src = "// randmod: allow(D1, stale reason for code that was since fixed)\nfn f() {}";
    let outcome = scan(ENGINE, src);
    assert!(outcome.violations.is_empty(), "{outcome:?}");
    assert_eq!(outcome.waivers.len(), 1);
    assert!(!outcome.waivers[0].used, "nothing suppressed, must stay unused");
}

// ---------------------------------------------------------------------------
// Scope classification
// ---------------------------------------------------------------------------

#[test]
fn classification_matches_the_documented_scopes() {
    let engine = classify("crates/core/src/cache.rs").unwrap();
    assert!(engine.engine && !engine.hot_path && !engine.codec);

    let hot = classify("crates/core/src/placement.rs").unwrap();
    assert!(hot.engine && hot.hot_path);

    let run = classify("crates/sim/src/run/engine.rs").unwrap();
    assert!(run.engine && run.hot_path, "everything under run/ is hot-path");

    let codec = classify("crates/sim/src/packed.rs").unwrap();
    assert!(codec.codec && codec.hot_path);

    let wire = classify("crates/sim/src/wire.rs").unwrap();
    assert!(wire.codec && wire.hot_path);

    assert!(classify("crates/sim/tests/shards.rs").is_none(), "test trees are skipped");
    assert!(classify("crates/core/benches/probe.rs").is_none());
    assert!(classify("vendor/proptest-stub/src/lib.rs").is_none());
    assert!(classify("crates/core/src/notes.md").is_none(), "non-Rust files are skipped");

    let tool = classify("crates/cli/src/main.rs").unwrap();
    assert!(!tool.engine && !tool.hot_path && !tool.codec, "W1-only scope");

    // The server's hostile-byte surfaces get P1 + C1 but not the
    // determinism rules (a server legitimately reads clocks/sockets).
    for guarded in ["crates/server/src/http.rs", "crates/server/src/body.rs"] {
        let scope = classify(guarded).unwrap();
        assert!(
            !scope.engine && scope.hot_path && scope.codec,
            "{guarded} must be panic-free and cast-audited: {scope:?}"
        );
    }
    let service = classify("crates/server/src/service.rs").unwrap();
    assert!(!service.engine && !service.hot_path && !service.codec);
    assert!(classify("crates/server/tests/protocol.rs").is_none());
}

// ---------------------------------------------------------------------------
// Injection smoke test: the acceptance scenario from the issue
// ---------------------------------------------------------------------------

#[test]
fn injecting_system_time_into_the_run_engine_fails_the_gate() {
    let src = r#"
        pub fn run(&self) {
            let started = std::time::SystemTime::now();
            let _ = started;
        }
    "#;
    let outcome = scan("crates/sim/src/run/engine.rs", src);
    assert_eq!(rule_ids(&outcome), vec![RuleId::D1], "{outcome:?}");
}
