//! The linter's own acceptance gate, as a test: the live workspace must
//! be violation-free, so `cargo test` fails the moment a banned construct
//! lands anywhere in the engine crates — no CI wiring required.

use std::path::Path;

#[test]
fn live_workspace_has_no_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let report = randmod_lint::check_workspace(&root).expect("workspace must be readable");
    assert!(
        report.files_scanned > 0,
        "the scan must actually cover the workspace"
    );
    assert!(
        report.is_clean(),
        "the workspace must stay lint-clean:\n{}",
        report.render_human()
    );
}

#[test]
fn every_waiver_in_the_live_workspace_is_used() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    let report = randmod_lint::check_workspace(&root).expect("workspace must be readable");
    assert!(
        report.unused_waivers.is_empty(),
        "stale waivers must be deleted, not accumulated: {:?}",
        report.unused_waivers
    );
}
