//! Report rendering: human-readable for terminals, JSON for CI.
//!
//! The JSON form is hand-rolled (the crate is dependency-free) and
//! deliberately flat so a CI step can consume it with `jq` or a ten-line
//! script: one object per violation, a summary block, and the list of
//! unused waivers (informational — an unused waiver does not fail the
//! check, but it is a prompt to delete stale suppressions).

use crate::rules::{RuleId, Violation};

/// An honoured-but-unmatched waiver: nothing in its scope violates the
/// rule it waives any more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedWaiver {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// The waived rule.
    pub rule: RuleId,
    /// The waiver's stated reason.
    pub reason: String,
}

/// The outcome of checking a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Workspace-relative paths of every file scanned, sorted.
    pub files_scanned: usize,
    /// All non-waived violations, ordered by (file, line).
    pub violations: Vec<Violation>,
    /// Number of waivers that suppressed at least one violation.
    pub waivers_used: usize,
    /// Well-formed waivers that suppressed nothing.
    pub unused_waivers: Vec<UnusedWaiver>,
}

impl Report {
    /// Does the check pass?  Unused waivers are advisory; only
    /// violations fail.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}:{}: {} {}\n    | {}\n",
                v.file,
                v.line,
                v.col,
                v.rule.name(),
                v.message,
                v.snippet
            ));
        }
        for w in &self.unused_waivers {
            out.push_str(&format!(
                "note: {}:{}: unused waiver for {} ({}) — delete it or re-justify\n",
                w.file,
                w.line,
                w.rule.name(),
                w.reason
            ));
        }
        out.push_str(&format!(
            "randmod-lint: {} violation(s), {} file(s) scanned, {} waiver(s) honoured, {} \
             unused waiver(s)\n",
            self.violations.len(),
            self.files_scanned,
            self.waivers_used,
            self.unused_waivers.len()
        ));
        out
    }

    /// Renders the machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \
                 \"snippet\": {}, \"message\": {}}}",
                json_str(v.rule.name()),
                json_str(&v.file),
                v.line,
                v.col,
                json_str(&v.snippet),
                json_str(&v.message)
            ));
        }
        out.push_str("\n  ],\n  \"unused_waivers\": [");
        for (i, w) in self.unused_waivers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(w.rule.name()),
                json_str(&w.file),
                w.line,
                json_str(&w.reason)
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"summary\": {{\"files_scanned\": {}, \"violations\": {}, \
             \"waivers_used\": {}, \"unused_waivers\": {}, \"clean\": {}}}\n}}\n",
            self.files_scanned,
            self.violations.len(),
            self.waivers_used,
            self.unused_waivers.len(),
            self.is_clean()
        ));
        out
    }
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("tab\there"), r#""tab\there""#);
    }

    #[test]
    fn json_report_is_parseable_shape() {
        let report = Report {
            files_scanned: 2,
            violations: vec![Violation {
                rule: RuleId::D1,
                file: "crates/sim/src/x.rs".to_string(),
                line: 3,
                col: 9,
                snippet: "let t = SystemTime::now();".to_string(),
                message: "banned".to_string(),
            }],
            waivers_used: 1,
            unused_waivers: vec![UnusedWaiver {
                file: "crates/sim/src/y.rs".to_string(),
                line: 10,
                rule: RuleId::P1,
                reason: "stale".to_string(),
            }],
        };
        let json = report.render_json();
        assert!(json.contains(r#""rule": "D1""#), "{json}");
        assert!(json.contains(r#""clean": false"#), "{json}");
        assert!(json.contains(r#""waivers_used": 1"#), "{json}");
        // Balanced braces/brackets as a cheap well-formedness proxy.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "{json}"
            );
        }
    }
}
