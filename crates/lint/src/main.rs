//! Command-line entry point: `randmod-lint check [--json] [--root PATH]`.

use std::path::PathBuf;
use std::process::ExitCode;

use randmod_lint::rules::RuleId;
use randmod_lint::{check_workspace, find_workspace_root};

const USAGE: &str = "\
randmod-lint: machine-enforces the workspace's determinism and panic-freedom invariants

USAGE:
    randmod-lint check [--json] [--root PATH]   check the workspace (exit 1 on violations)
    randmod-lint rules                          print the rule table

OPTIONS:
    --json         emit the machine-readable JSON report instead of human output
    --root PATH    workspace root (default: nearest ancestor with a [workspace] manifest)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "check" | "rules" if command.is_none() => command = Some(arg.clone()),
            "--json" => json = true,
            "--root" => match iter.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage_error("--root needs a path"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unrecognised argument `{other}`")),
        }
    }
    match command.as_deref() {
        Some("rules") => {
            for rule in RuleId::ALL {
                println!("{}  {}", rule.name(), rule.summary());
            }
            ExitCode::SUCCESS
        }
        Some("check") => run_check(root, json),
        _ => usage_error("expected a command (`check` or `rules`)"),
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

fn run_check(root: Option<PathBuf>, json: bool) -> ExitCode {
    let root = match root {
        Some(root) => root,
        None => {
            // Under `cargo run` the manifest dir is crates/lint; the
            // workspace root is two levels up.  Fall back to searching
            // upward from the current directory.
            let start = std::env::var_os("CARGO_MANIFEST_DIR")
                .map(|dir| PathBuf::from(dir).join("../.."))
                .or_else(|| std::env::current_dir().ok());
            match start.as_deref().and_then(find_workspace_root) {
                Some(root) => root,
                None => {
                    eprintln!("error: no [workspace] manifest found; pass --root");
                    return ExitCode::from(2);
                }
            }
        }
    };
    match check_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("error: cannot scan {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}
