//! `randmod-lint`: the workspace invariant checker.
//!
//! Everything the simulator promises — bit-identical shard merges,
//! checkpoint fingerprints, lanes×threads invariance, adaptive-prefix
//! identity — rests on determinism and panic-freedom invariants that unit
//! tests can only sample.  This crate enforces them *statically*: a
//! dependency-free Rust lexer ([`lexer`]) feeds a token-walking rule
//! engine ([`rules`]) that knows which rule families apply to which files,
//! understands `#[cfg(test)]` scoping, and honours reasoned waiver
//! comments ([`waiver`]).
//!
//! Run it as `cargo run -p randmod-lint -- check` (human output) or
//! `-- check --json` (CI).  The exit code is 0 when the workspace is
//! clean, 1 when any non-waived violation exists.
//!
//! The rule set and the waiver policy are documented for humans in
//! DESIGN.md ("Machine-checked invariants").

pub mod lexer;
pub mod report;
pub mod rules;
pub mod waiver;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use report::{Report, UnusedWaiver};
use rules::{classify, scan_source};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = [".git", "target", "vendor", "fixtures"];

/// Recursively collects the workspace's `.rs` files, sorted by relative
/// path so every run (and every machine) reports in the same order.
fn collect_rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Converts an absolute path under `root` to the workspace-relative,
/// forward-slash form the rules and reports use.
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for component in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&component.as_os_str().to_string_lossy());
    }
    out
}

/// Checks every eligible source file under `root`, returning the merged
/// report.
///
/// # Errors
///
/// Returns an [`io::Error`] when the tree cannot be read; per-file rule
/// results never error.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for path in collect_rust_files(root)? {
        let rel = relative_path(root, &path);
        // The linter does not lint itself: its source is necessarily full
        // of rule names, banned identifiers and example waivers.
        if rel.starts_with("crates/lint/") {
            continue;
        }
        let Some(scope) = classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(&path)?;
        let outcome = scan_source(&rel, &src, scope);
        report.files_scanned += 1;
        report.violations.extend(outcome.violations);
        for w in outcome.waivers {
            if w.used {
                report.waivers_used += 1;
            } else {
                report.unused_waivers.push(UnusedWaiver {
                    file: rel.clone(),
                    line: w.line,
                    rule: w.rule,
                    reason: w.reason,
                });
            }
        }
    }
    Ok(report)
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    for dir in start.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
    }
    None
}
