//! A hand-rolled Rust lexer.
//!
//! The rule engine only needs a *token-level* view of the source — it never
//! parses expressions — but that view must be trustworthy: a forbidden
//! identifier inside a string literal or a comment is not a violation, and
//! a waiver comment inside a raw string is not a waiver.  The lexer
//! therefore handles the full token surface that can confuse a naive
//! scanner: raw strings with arbitrary `#` fences, byte and raw-byte
//! strings, nested block comments, lifetimes vs. character literals, raw
//! identifiers, and numeric literals with exponents and type suffixes.
//!
//! The lexer is *lossless*: every byte of the input ends up in exactly one
//! token, so concatenating `Token::text` in order reproduces the source.
//! The round-trip property is what the tests pin, and it is what makes the
//! line/column bookkeeping trustworthy for violation reports.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (spaces, tabs, newlines).
    Whitespace,
    /// A `//` comment, including `///` and `//!` doc comments, without the
    /// trailing newline.
    LineComment,
    /// A `/* … */` comment, with nesting, including `/** … */` doc forms.
    BlockComment,
    /// An identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A string literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#`.
    Str,
    /// A character or byte-character literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A numeric literal, including exponents and suffixes (`1.0e-9f64`).
    Num,
    /// Any single punctuation character not covered above.
    Punct,
}

/// One lexeme of the source, with its starting position (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Lexical class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in characters) of the token's first byte.
    pub col: u32,
}

/// Lexes `src` into a lossless token stream: concatenating the tokens'
/// `text` fields in order reproduces `src` exactly.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut tokens = Vec::new();
    let mut cursor = Cursor {
        src,
        pos: 0,
        line: 1,
        col: 1,
    };
    while cursor.pos < src.len() {
        let start = cursor.pos;
        let (line, col) = (cursor.line, cursor.col);
        let kind = cursor.next_token();
        debug_assert!(cursor.pos > start, "lexer must always make progress");
        tokens.push(Token {
            kind,
            text: &src[start..cursor.pos],
            line,
            col,
        });
    }
    tokens
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl Cursor<'_> {
    fn peek(&self) -> Option<char> {
        self.src.get(self.pos..).and_then(|rest| rest.chars().next())
    }

    fn peek_at(&self, chars_ahead: usize) -> Option<char> {
        self.src
            .get(self.pos..)
            .and_then(|rest| rest.chars().nth(chars_ahead))
    }

    /// Consumes one character, updating line/column bookkeeping.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, test: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&test) {
            self.bump();
        }
    }

    fn next_token(&mut self) -> TokenKind {
        let first = self.peek().unwrap_or('\0');
        match first {
            c if c.is_whitespace() => {
                self.bump_while(char::is_whitespace);
                TokenKind::Whitespace
            }
            '/' if self.peek_at(1) == Some('/') => {
                self.bump_while(|c| c != '\n');
                TokenKind::LineComment
            }
            '/' if self.peek_at(1) == Some('*') => self.block_comment(),
            '"' => self.string(),
            '\'' => self.lifetime_or_char(),
            'r' if self.raw_string_ahead(1) => {
                self.bump();
                self.raw_string()
            }
            'r' if self.peek_at(1) == Some('#') && self.peek_at(2).is_some_and(is_ident_start) => {
                // Raw identifier: r#match
                self.bump();
                self.bump();
                self.bump_while(is_ident_continue);
                TokenKind::Ident
            }
            'b' if self.peek_at(1) == Some('"') => {
                self.bump();
                self.string()
            }
            'b' if self.peek_at(1) == Some('\'') => {
                self.bump();
                self.char_literal()
            }
            'b' if self.peek_at(1) == Some('r') && self.raw_string_ahead(2) => {
                self.bump();
                self.bump();
                self.raw_string()
            }
            c if is_ident_start(c) => {
                self.bump_while(is_ident_continue);
                TokenKind::Ident
            }
            c if c.is_ascii_digit() => self.number(),
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    /// Is `r#*"` (zero or more hashes then a quote) ahead, starting
    /// `chars_ahead` characters past the cursor?
    fn raw_string_ahead(&self, chars_ahead: usize) -> bool {
        let mut at = chars_ahead;
        while self.peek_at(at) == Some('#') {
            at += 1;
        }
        self.peek_at(at) == Some('"')
    }

    /// Consumes a raw string starting at its first `#` or `"` (the `r`
    /// or `br` prefix is already consumed).
    fn raw_string(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None => break, // unterminated: tolerate, report nothing
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some('#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        TokenKind::Str
    }

    /// Consumes a `"…"` string (cursor on the opening quote).
    fn string(&mut self) -> TokenKind {
        self.bump();
        loop {
            match self.bump() {
                None | Some('"') => break,
                Some('\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
        TokenKind::Str
    }

    /// Consumes a `'…'` char literal (cursor on the opening quote).
    fn char_literal(&mut self) -> TokenKind {
        self.bump();
        loop {
            match self.bump() {
                None | Some('\'') => break,
                Some('\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
        TokenKind::Char
    }

    /// Disambiguates `'a` (lifetime) from `'a'` (char literal).
    fn lifetime_or_char(&mut self) -> TokenKind {
        match self.peek_at(1) {
            // An escape is always a char literal: '\n', '\''.
            Some('\\') => self.char_literal(),
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char literal, `'a` / `'static` a lifetime:
                // scan the identifier run and look for a closing quote.
                let mut at = 2;
                while self.peek_at(at).is_some_and(is_ident_continue) {
                    at += 1;
                }
                if self.peek_at(at) == Some('\'') {
                    self.char_literal()
                } else {
                    self.bump(); // the quote
                    self.bump_while(is_ident_continue);
                    TokenKind::Lifetime
                }
            }
            // `'('`, `' '`, …: a char literal of a non-identifier char.
            _ => self.char_literal(),
        }
    }

    /// Consumes a numeric literal (cursor on its first digit).
    fn number(&mut self) -> TokenKind {
        self.bump();
        loop {
            match self.peek() {
                Some(c) if is_ident_continue(c) => {
                    let was_exponent = c == 'e' || c == 'E';
                    self.bump();
                    // `1e-9` / `1E+10`: a sign directly after the exponent
                    // marker belongs to the literal when digits follow.
                    if was_exponent
                        && matches!(self.peek(), Some('+' | '-'))
                        && self.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                    {
                        self.bump();
                    }
                }
                // A fractional part only when a digit follows the dot, so
                // `0..10` and `1.max(2)` keep the dot as punctuation.
                Some('.') if self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) => {
                    self.bump();
                }
                _ => break,
            }
        }
        TokenKind::Num
    }

    /// Consumes a `/* … */` comment with nesting (cursor on the `/`).
    fn block_comment(&mut self) -> TokenKind {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                None => break,
                Some('/') if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek() == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
            }
        }
        TokenKind::BlockComment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &str) -> Vec<Token<'_>> {
        let tokens = lex(src);
        let rebuilt: String = tokens.iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, src, "lexer must be lossless");
        tokens
    }

    fn kinds<'a>(tokens: &'a [Token<'a>]) -> Vec<(TokenKind, &'a str)> {
        tokens
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = round_trip(r####"let s = r#"quote " inside"#; let t = r##"a "# b"##;"####);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs, [r###"r#"quote " inside"#"###, r####"r##"a "# b"##"####]);
    }

    #[test]
    fn raw_byte_strings_and_byte_literals() {
        let toks = round_trip(r##"let a = br#"raw ' bytes"#; let b = b"x\""; let c = b'\'';"##);
        let lits: Vec<(TokenKind, &str)> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Str | TokenKind::Char))
            .map(|t| (t.kind, t.text))
            .collect();
        assert_eq!(
            lits,
            [
                (TokenKind::Str, r##"br#"raw ' bytes"#"##),
                (TokenKind::Str, r#"b"x\"""#),
                (TokenKind::Char, r"b'\''"),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = round_trip("a /* outer /* inner */ still outer */ b");
        assert_eq!(
            kinds(&toks),
            [
                (TokenKind::Ident, "a"),
                (TokenKind::BlockComment, "/* outer /* inner */ still outer */"),
                (TokenKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = round_trip("fn f<'a>(x: &'a str) -> char { 'a' } // 'static too: &'static '\\n'");
        let interesting: Vec<(TokenKind, &str)> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Lifetime | TokenKind::Char))
            .map(|t| (t.kind, t.text))
            .collect();
        assert_eq!(
            interesting,
            [
                (TokenKind::Lifetime, "'a"),
                (TokenKind::Lifetime, "'a"),
                (TokenKind::Char, "'a'"),
            ]
        );
    }

    #[test]
    fn underscore_lifetime_and_static() {
        let toks = round_trip("&'_ T; &'static str; ' '");
        let interesting: Vec<(TokenKind, &str)> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Lifetime | TokenKind::Char))
            .map(|t| (t.kind, t.text))
            .collect();
        assert_eq!(
            interesting,
            [
                (TokenKind::Lifetime, "'_"),
                (TokenKind::Lifetime, "'static"),
                (TokenKind::Char, "' '"),
            ]
        );
    }

    #[test]
    fn numbers_with_exponents_suffixes_and_ranges() {
        let toks = round_trip("1.0e-9 + 0xff_u8 + 1_000u64 + x.0; for i in 0..10 {} 1.max(2)");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, ["1.0e-9", "0xff_u8", "1_000u64", "0", "0", "10", "1", "2"]);
    }

    #[test]
    fn raw_identifiers() {
        let toks = round_trip("let r#match = r#type; r#\"not an ident\"#");
        assert_eq!(
            kinds(&toks),
            [
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "r#match"),
                (TokenKind::Punct, "="),
                (TokenKind::Ident, "r#type"),
                (TokenKind::Punct, ";"),
                (TokenKind::Str, "r#\"not an ident\"#"),
            ]
        );
    }

    #[test]
    fn forbidden_names_inside_literals_are_not_idents() {
        let toks = round_trip(r#"let msg = "SystemTime::now() is banned"; // HashMap too"#);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, ["let", "msg"]);
    }

    #[test]
    fn line_and_column_positions() {
        let toks = lex("ab\n  cd");
        let cd = toks.last().expect("has tokens");
        assert_eq!((cd.text, cd.line, cd.col), ("cd", 2, 3));
    }

    #[test]
    fn unterminated_forms_do_not_hang() {
        round_trip("/* never closed");
        round_trip("\"never closed");
        round_trip("r#\"never closed");
    }
}
