//! The rule engine: a token-tree walk that enforces the workspace's
//! written-but-otherwise-unchecked invariants.
//!
//! Every rule has a machine-readable ID.  The IDs are stable — they appear
//! in waiver comments, JSON reports and DESIGN.md — so renaming one is a
//! breaking change to the waiver vocabulary.
//!
//! | ID | scope            | invariant                                        |
//! |----|------------------|--------------------------------------------------|
//! | D1 | engine crates    | no wall-clock / entropy / environment reads      |
//! | D2 | engine crates    | no unordered collections (`HashMap`/`HashSet`)   |
//! | P1 | hot-path modules | no panic-family calls, no `[i]` slice indexing   |
//! | C1 | codec modules    | truncating `as` casts must be audited            |
//! | W1 | everywhere       | waivers must be well-formed and carry a reason   |
//!
//! The walk is purely lexical: it never resolves names or types.  That
//! keeps the checker ~free of false *negatives* on the constructs it
//! targets (an identifier is an identifier wherever it appears) at the
//! cost of occasional false positives, which is what reasoned waivers are
//! for.

use crate::lexer::{lex, Token, TokenKind};
use crate::waiver::{parse_comment, ParsedComment, Waiver};

/// Machine-readable rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Determinism: no wall-clock, entropy or environment access in
    /// engine crates.
    D1,
    /// Determinism: no unordered collections in engine crates.
    D2,
    /// Panic-freedom: no panic-family calls or slice indexing in
    /// hot-path modules.
    P1,
    /// Cast audit: truncating `as` casts in checksum/fingerprint/codec
    /// paths must carry a waiver explaining why the value fits.
    C1,
    /// Waiver hygiene: malformed waiver comment.
    W1,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 5] = [RuleId::D1, RuleId::D2, RuleId::P1, RuleId::C1, RuleId::W1];

    /// The waiver vocabulary, for diagnostics.
    pub const ALL_NAMES: &'static str = "D1, D2, P1, C1";

    /// The rule's stable name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::P1 => "P1",
            RuleId::C1 => "C1",
            RuleId::W1 => "W1",
        }
    }

    /// One-line statement of the invariant the rule protects.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "engine crates must not read wall-clock time, entropy or the environment \
                 (SystemTime, Instant, std::env, thread::current, RandomState): any such read \
                 can leak into results and silently break bit-identical shard merges and \
                 checkpoint fingerprints"
            }
            RuleId::D2 => {
                "engine crates must not use HashMap/HashSet outside tests: their iteration \
                 order is unspecified, so any order-dependent result would vary between runs \
                 and poison fingerprints"
            }
            RuleId::P1 => {
                "hot-path modules must not contain panic-family calls (unwrap/expect/panic!/\
                 unreachable!/todo!) or `[i]` slice indexing outside tests: a panic mid-campaign \
                 corrupts shard state, and every such site must either be restructured or carry \
                 a written bounds argument"
            }
            RuleId::C1 => {
                "truncating `as` casts in checksum/fingerprint/codec paths must be audited: an \
                 unnoticed truncation changes the wire format or the fingerprint domain without \
                 failing any test"
            }
            RuleId::W1 => {
                "waiver comments must name a known rule and carry a non-empty reason: an \
                 unexplained suppression is silent invariant erosion"
            }
        }
    }

    /// Parses a rule name as written in a waiver.  `W1` is not waivable,
    /// so it is not part of the waiver vocabulary.
    pub fn parse(text: &str) -> Option<RuleId> {
        match text {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "P1" => Some(RuleId::P1),
            "C1" => Some(RuleId::C1),
            _ => None,
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending construct, as written.
    pub snippet: String,
    /// What is wrong and what to do about it.
    pub message: String,
}

/// Which rule families apply to a file, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FileScope {
    /// D1/D2 apply: the file is non-test source of an engine crate.
    pub engine: bool,
    /// P1 applies: the file is one of the designated hot-path modules.
    pub hot_path: bool,
    /// C1 applies: the file is part of a checksum/fingerprint/codec path.
    pub codec: bool,
}

/// The crates whose non-test source is subject to the determinism rules.
const ENGINE_CRATES: [&str; 4] = [
    "crates/core/src/",
    "crates/sim/src/",
    "crates/mbpta/src/",
    "crates/workloads/src/",
];

/// Hot-path modules: P1 (panic-freedom) applies, by file name.
const HOT_PATH_FILES: [&str; 5] = [
    "placement.rs",
    "lanes.rs",
    "checkpoint.rs",
    "packed.rs",
    "wire.rs",
];

/// Codec/fingerprint modules: C1 (cast audit) applies, by file name.
const CODEC_FILES: [&str; 4] = ["checkpoint.rs", "packed.rs", "shard.rs", "wire.rs"];

/// Server modules that face hostile bytes: the HTTP parser and the
/// campaign-spec codec.  They get the panic-freedom and cast-audit
/// treatment of the engine's hot path (a malformed request must decode
/// to a refusal, never a panic) but not the determinism rules — a
/// server legitimately reads clocks and sockets.
const SERVER_GUARDED_FILES: [&str; 2] =
    ["crates/server/src/http.rs", "crates/server/src/body.rs"];

/// Classifies a workspace-relative path (forward slashes).  Returns
/// `None` for files the checker skips entirely: test trees, benches,
/// examples, build output and the vendored dependency stand-ins.
pub fn classify(rel_path: &str) -> Option<FileScope> {
    let skip_dirs = ["tests/", "benches/", "examples/", "target/", "vendor/", ".git/"];
    for dir in skip_dirs {
        if rel_path.starts_with(dir) || rel_path.contains(&format!("/{dir}")) {
            return None;
        }
    }
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let engine = ENGINE_CRATES.iter().any(|root| rel_path.starts_with(root));
    let base = rel_path.rsplit('/').next().unwrap_or(rel_path);
    let server_guarded = SERVER_GUARDED_FILES.contains(&rel_path);
    let hot_path = server_guarded
        || (engine && (HOT_PATH_FILES.contains(&base) || rel_path.contains("/src/run/")));
    let codec = server_guarded || (engine && CODEC_FILES.contains(&base));
    Some(FileScope {
        engine,
        hot_path,
        codec,
    })
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Non-waived violations, in source order.
    pub violations: Vec<Violation>,
    /// Every well-formed waiver in the file, with its `used` flag set
    /// when it suppressed at least one violation.
    pub waivers: Vec<Waiver>,
}

/// Scans one file's source under the rules selected by `scope`.
/// W1 (waiver hygiene) is always checked.
pub fn scan_source(rel_path: &str, src: &str, scope: FileScope) -> ScanOutcome {
    Scanner::new(rel_path, src, scope).run()
}

/// Keywords that can legitimately precede a `[` without forming an index
/// expression (`&mut [u8]`, `dyn [T]`, `in [..]`, …).  `self` is absent
/// on purpose: `self[i]` through an `Index` impl is still indexing.
const NON_INDEXABLE_KEYWORDS: [&str; 30] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "trait", "type",
];

/// Additional non-indexable keywords (split to keep the arrays readable).
const NON_INDEXABLE_KEYWORDS_2: [&str; 6] = ["unsafe", "use", "where", "while", "true", "false"];

fn is_non_indexable_keyword(text: &str) -> bool {
    NON_INDEXABLE_KEYWORDS.contains(&text) || NON_INDEXABLE_KEYWORDS_2.contains(&text)
}

/// Integer types an `as` cast can truncate into.  `usize` is included:
/// the codecs read `u64` lengths from the wire, and `u64 as usize`
/// truncates on 32-bit targets — each such cast must say why that is
/// either impossible or safe.
const TRUNCATING_CAST_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize"];

/// The banned wall-clock / entropy / environment identifiers (D1).
const NONDETERMINISM_IDENTS: [&str; 3] = ["SystemTime", "Instant", "RandomState"];

/// A previously seen significant token (identity only, no text lifetime).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Prev {
    kind: Option<TokenKind>,
    text: String,
    line: u32,
    col: u32,
}

/// An own-line waiver or `#[cfg(test)]` marker waiting to attach to the
/// item or statement that follows it.
#[derive(Debug)]
struct Pending {
    /// Index into `Scanner::waivers`, or `None` for a cfg(test) marker.
    waiver: Option<usize>,
    /// Brace depth at which the marker was seen; a `;` at this depth
    /// retires it (brace-less statement / `#[cfg(test)] use …;`).
    arm_depth: u32,
}

/// An attached suppression region: active until the brace that opened it
/// closes.
#[derive(Debug)]
struct Region {
    /// Index into `Scanner::waivers`, or `None` for a cfg(test) region.
    waiver: Option<usize>,
    /// Depth *before* the opening brace; the region dies when depth
    /// returns to this value.
    close_depth: u32,
}

struct Scanner<'a> {
    rel_path: &'a str,
    src: &'a str,
    scope: FileScope,
    lines: Vec<&'a str>,
    violations: Vec<Violation>,
    waivers: Vec<Waiver>,
    depth: u32,
    prev: [Prev; 3],
    pendings: Vec<Pending>,
    regions: Vec<Region>,
    /// Own-line waivers not yet reached by the code walk, as indices
    /// into `waivers`, in file order.
    upcoming: Vec<usize>,
    /// Cursor into `upcoming`.
    next_upcoming: usize,
}

impl<'a> Scanner<'a> {
    fn new(rel_path: &'a str, src: &'a str, scope: FileScope) -> Scanner<'a> {
        Scanner {
            rel_path,
            src,
            scope,
            lines: src.lines().collect(),
            violations: Vec::new(),
            waivers: Vec::new(),
            depth: 0,
            prev: Default::default(),
            pendings: Vec::new(),
            regions: Vec::new(),
            upcoming: Vec::new(),
            next_upcoming: 0,
        }
    }

    fn line_text(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map_or_else(String::new, |l| l.trim().to_string())
    }

    fn violation(&mut self, rule: RuleId, line: u32, col: u32, snippet: &str, message: String) {
        if rule != RuleId::W1 && self.suppressed(rule, line) {
            return;
        }
        self.violations.push(Violation {
            rule,
            file: self.rel_path.to_string(),
            line,
            col,
            snippet: snippet.to_string(),
            message,
        });
    }

    /// Looks for a waiver covering `rule` at `line`: a trailing waiver on
    /// the same line, a pending own-line waiver, or an enclosing region.
    /// The first match is marked used.
    fn suppressed(&mut self, rule: RuleId, line: u32) -> bool {
        // Trailing waiver on the violation's own line.
        for w in self.waivers.iter_mut() {
            if w.trailing && w.line == line && w.rule == rule {
                w.used = true;
                return true;
            }
        }
        // Own-line waiver still waiting to attach (covers the statement
        // being read right now).
        for p in &self.pendings {
            if let Some(idx) = p.waiver {
                if self.waivers[idx].rule == rule {
                    self.waivers[idx].used = true;
                    return true;
                }
            }
        }
        // Innermost enclosing waiver region.
        for r in self.regions.iter().rev() {
            if let Some(idx) = r.waiver {
                if self.waivers[idx].rule == rule {
                    self.waivers[idx].used = true;
                    return true;
                }
            }
        }
        false
    }

    fn in_test(&self) -> bool {
        self.regions.iter().any(|r| r.waiver.is_none())
            || self.pendings.iter().any(|p| p.waiver.is_none())
    }

    fn push_prev(&mut self, tok: &Token<'_>) {
        self.prev.rotate_right(1);
        self.prev[0] = Prev {
            kind: Some(tok.kind),
            text: tok.text.to_string(),
            line: tok.line,
            col: tok.col,
        };
    }

    fn prev_text(&self, back: usize) -> &str {
        &self.prev[back].text
    }

    fn run(mut self) -> ScanOutcome {
        let src_tokens = lex(self.src);
        self.collect_comments(&src_tokens);
        let code: Vec<&Token<'_>> = src_tokens
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect();
        let mut i = 0;
        while i < code.len() {
            let tok = code[i];
            self.arm_waivers_before(tok.line);
            // Attributes are consumed as a unit: their brackets are not
            // index expressions, and `#[cfg(test)]` gates the next item.
            if tok.text == "#" {
                i = self.consume_attribute(&code, i);
                continue;
            }
            self.check(tok, code.get(i + 1).copied());
            self.track_nesting(tok);
            self.push_prev(tok);
            i += 1;
        }
        ScanOutcome {
            violations: self.violations,
            waivers: self.waivers,
        }
    }

    fn collect_comments(&mut self, tokens: &[Token<'_>]) {
        let mut last_code_line = 0u32;
        for t in tokens {
            match t.kind {
                TokenKind::LineComment | TokenKind::BlockComment => {
                    let trailing = t.line == last_code_line;
                    match parse_comment(t.text, t.line, trailing) {
                        ParsedComment::NotAWaiver => {}
                        ParsedComment::Waiver(w) => {
                            let own_line = !w.trailing;
                            self.waivers.push(w);
                            if own_line {
                                self.upcoming.push(self.waivers.len() - 1);
                            }
                        }
                        ParsedComment::Malformed(detail) => {
                            let snippet = self.line_text(t.line);
                            self.violations.push(Violation {
                                rule: RuleId::W1,
                                file: self.rel_path.to_string(),
                                line: t.line,
                                col: t.col,
                                snippet,
                                message: format!("malformed waiver: {detail}"),
                            });
                        }
                    }
                }
                TokenKind::Whitespace => {}
                _ => last_code_line = t.line,
            }
        }
    }

    /// Moves own-line waivers whose comment line has been passed into the
    /// pending set, so they attach to the next item or statement.
    fn arm_waivers_before(&mut self, code_line: u32) {
        while let Some(&idx) = self.upcoming.get(self.next_upcoming) {
            if self.waivers[idx].line < code_line {
                self.pendings.push(Pending {
                    waiver: Some(idx),
                    arm_depth: self.depth,
                });
                self.next_upcoming += 1;
            } else {
                break;
            }
        }
    }

    /// Consumes `# [ … ]` (or `# ! [ … ]`) starting at `code[i] == "#"`,
    /// returning the index just past the closing bracket.  Marks a
    /// pending test region for `#[cfg(test)]` / `#[test]` attributes.
    fn consume_attribute(&mut self, code: &[&Token<'_>], i: usize) -> usize {
        let mut j = i + 1;
        if code.get(j).is_some_and(|t| t.text == "!") {
            j += 1;
        }
        if !code.get(j).is_some_and(|t| t.text == "[") {
            return i + 1; // a stray `#`; skip it
        }
        let mut depth = 0i32;
        let mut idents: Vec<&str> = Vec::new();
        while let Some(tok) = code.get(j) {
            match tok.text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ if tok.kind == TokenKind::Ident => idents.push(tok.text),
                _ => {}
            }
            j += 1;
        }
        let has = |name: &str| idents.contains(&name);
        // `#[cfg(test)]` (and cfg(all/any(test, …))) gates the next item,
        // as does a bare `#[test]`.  `#[cfg(not(test))]` stays checked,
        // and `#[cfg_attr(test, …)]` does not gate compilation at all.
        let gates_test = (has("cfg") && has("test") && !has("not") && !has("cfg_attr"))
            || idents == ["test"];
        if gates_test {
            self.pendings.push(Pending {
                waiver: None,
                arm_depth: self.depth,
            });
        }
        j
    }

    fn track_nesting(&mut self, tok: &Token<'_>) {
        match tok.text {
            "{" => {
                // Pendings attach: they cover this whole brace body.
                for p in self.pendings.drain(..) {
                    self.regions.push(Region {
                        waiver: p.waiver,
                        close_depth: self.depth,
                    });
                }
                self.depth += 1;
            }
            "}" => {
                self.depth = self.depth.saturating_sub(1);
                while self
                    .regions
                    .last()
                    .is_some_and(|r| r.close_depth >= self.depth)
                {
                    self.regions.pop();
                }
                // A pending that never attached inside this block dies
                // with it.
                self.pendings.retain(|p| p.arm_depth <= self.depth);
            }
            ";" => {
                // Brace-less statement: pendings armed at this depth have
                // covered their statement; retire them.
                let depth = self.depth;
                self.pendings.retain(|p| p.arm_depth != depth);
            }
            _ => {}
        }
    }

    fn check(&mut self, tok: &Token<'_>, next: Option<&Token<'_>>) {
        if self.in_test() {
            return;
        }
        let snippet = self.line_text(tok.line);
        match tok.kind {
            TokenKind::Ident => {
                if self.scope.engine {
                    if NONDETERMINISM_IDENTS.contains(&tok.text) {
                        self.violation(
                            RuleId::D1,
                            tok.line,
                            tok.col,
                            &snippet,
                            format!(
                                "`{}` reads wall-clock time or ambient entropy; engine crates \
                                 must stay bit-deterministic (derive everything from the seed \
                                 schedule)",
                                tok.text
                            ),
                        );
                    }
                    if self.path_tail_is("std", "env") && tok.text == "env" {
                        self.violation(
                            RuleId::D1,
                            tok.line,
                            tok.col,
                            &snippet,
                            "`std::env` makes results depend on the process environment; \
                             engine crates must take all configuration as explicit arguments"
                                .to_string(),
                        );
                    }
                    if self.path_tail_is("thread", "current") && tok.text == "current" {
                        self.violation(
                            RuleId::D1,
                            tok.line,
                            tok.col,
                            &snippet,
                            "`thread::current()` exposes scheduler-dependent identity; engine \
                             results must be invariant across thread counts".to_string(),
                        );
                    }
                    if tok.text == "HashMap" || tok.text == "HashSet" {
                        self.violation(
                            RuleId::D2,
                            tok.line,
                            tok.col,
                            &snippet,
                            format!(
                                "`{}` iterates in unspecified order; use a sorted structure \
                                 (BTreeMap/sorted Vec), or waive with a reason proving order \
                                 cannot leak into results",
                                tok.text
                            ),
                        );
                    }
                }
                if self.scope.codec
                    && self.prev_text(0) == "as"
                    && self.prev[0].kind == Some(TokenKind::Ident)
                    && TRUNCATING_CAST_TARGETS.contains(&tok.text)
                {
                    self.violation(
                        RuleId::C1,
                        tok.line,
                        tok.col,
                        &snippet,
                        format!(
                            "`as {}` can truncate; codec/fingerprint paths must audit every \
                             narrowing cast (prefer try_from with an error path, or waive with \
                             the reason the value provably fits)",
                            tok.text
                        ),
                    );
                }
            }
            TokenKind::Punct => match tok.text {
                "(" if self.scope.hot_path => {
                    let callee = self.prev_text(0);
                    if (callee == "unwrap" || callee == "expect")
                        && self.prev[0].kind == Some(TokenKind::Ident)
                        && self.prev_text(1) == "."
                    {
                        let (line, col) = (self.prev[0].line, self.prev[0].col);
                        let snippet = self.line_text(line);
                        self.violation(
                            RuleId::P1,
                            line,
                            col,
                            &snippet,
                            format!(
                                "`.{callee}()` panics on the failure path; hot-path modules \
                                 must construct infallibly, return an error, or carry a waiver \
                                 stating the invariant that rules the panic out"
                            ),
                        );
                    }
                }
                "!" if self.scope.hot_path => {
                    let callee = self.prev_text(0);
                    if matches!(callee, "panic" | "unreachable" | "todo")
                        && self.prev[0].kind == Some(TokenKind::Ident)
                        && next.is_some_and(|n| n.text == "(")
                    {
                        let (line, col) = (self.prev[0].line, self.prev[0].col);
                        let snippet = self.line_text(line);
                        self.violation(
                            RuleId::P1,
                            line,
                            col,
                            &snippet,
                            format!(
                                "`{callee}!` aborts the campaign mid-run; hot-path modules \
                                 must handle the case or waive with the invariant that makes \
                                 it unreachable"
                            ),
                        );
                    }
                }
                "[" if self.scope.hot_path => {
                    let indexable = match self.prev[0].kind {
                        Some(TokenKind::Ident) => !is_non_indexable_keyword(self.prev_text(0)),
                        Some(TokenKind::Punct) => matches!(self.prev_text(0), ")" | "]"),
                        _ => false,
                    };
                    if indexable {
                        self.violation(
                            RuleId::P1,
                            tok.line,
                            tok.col,
                            &snippet,
                            "slice indexing panics out of bounds; hot-path modules must use \
                             get/iterators, or waive with the written bounds argument"
                                .to_string(),
                        );
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }

    /// Do the previous three significant tokens spell `first :: second`,
    /// with the current token being `second`?  (Checked as: prev0 == ':',
    /// prev1 == ':', prev2 == first.)
    fn path_tail_is(&self, first: &str, _second: &str) -> bool {
        self.prev_text(0) == ":" && self.prev_text(1) == ":" && self.prev_text(2) == first
    }
}
