//! Waiver comments: the only sanctioned way to silence a rule.
//!
//! A waiver is a comment of the form
//!
//! ```text
//! // randmod: allow(P1, bounds proven by the assert at the top of the fn)
//! ```
//!
//! and its *reason is mandatory*: a waiver that names no rule, names an
//! unknown rule, or carries an empty reason is itself a violation
//! ([`crate::rules::RuleId::W1`]) — an unexplained suppression is exactly
//! the kind of silent invariant erosion this tool exists to stop.
//!
//! Scope:
//! * a **trailing** waiver (code before it on the same line) covers that
//!   line only;
//! * an **own-line** waiver covers the item or statement that follows it —
//!   through the end of the next brace-delimited body, or through the next
//!   `;` at the same nesting depth for brace-less statements.  Placing one
//!   above an `fn` therefore waives the whole function, which is the
//!   intended granularity for hot loops whose bounds argument is written
//!   once in the function's doc comment.

use crate::rules::RuleId;

/// The marker every waiver comment must contain.
pub const WAIVER_MARKER: &str = "randmod:";

/// A parsed waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: RuleId,
    /// The mandatory free-text justification.
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Whether code precedes the comment on its line (trailing waiver).
    pub trailing: bool,
    /// Set when the waiver suppressed at least one violation.
    pub used: bool,
}

/// Outcome of inspecting one comment for waiver syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedComment {
    /// The comment does not carry the `randmod:` marker.
    NotAWaiver,
    /// A well-formed waiver.
    Waiver(Waiver),
    /// The marker is present but the waiver is malformed; the string
    /// explains how.
    Malformed(String),
}

/// Parses one comment's text (including its `//` / `/*` fence).
pub fn parse_comment(text: &str, line: u32, trailing: bool) -> ParsedComment {
    let Some(marker) = text.find(WAIVER_MARKER) else {
        return ParsedComment::NotAWaiver;
    };
    let directive = text[marker + WAIVER_MARKER.len()..].trim_start();
    // Only `randmod: allow…` is a waiver attempt; anything else with the
    // marker (`randmod::core` paths in doc comments, prose) is ordinary
    // text.  A misspelled `allow` is safe to ignore: it suppresses
    // nothing, so the violation it aimed at still fires.
    if !directive.starts_with("allow") {
        return ParsedComment::NotAWaiver;
    }
    let Some(args) = directive.strip_prefix("allow(") else {
        return ParsedComment::Malformed(
            "expected `randmod: allow(RULE, reason)` after the marker".to_string(),
        );
    };
    let Some(close) = args.find(')') else {
        return ParsedComment::Malformed("waiver is missing its closing `)`".to_string());
    };
    let args = &args[..close];
    let (rule_text, reason) = match args.split_once(',') {
        Some((rule, reason)) => (rule.trim(), reason.trim()),
        None => (args.trim(), ""),
    };
    let Some(rule) = RuleId::parse(rule_text) else {
        return ParsedComment::Malformed(format!(
            "unknown rule `{rule_text}` (expected one of {})",
            RuleId::ALL_NAMES
        ));
    };
    if reason.is_empty() {
        return ParsedComment::Malformed(format!(
            "waiver for {rule_text} carries no reason; write `randmod: allow({rule_text}, why \
             this is sound)`"
        ));
    }
    ParsedComment::Waiver(Waiver {
        rule,
        reason: reason.to_string(),
        line,
        trailing,
        used: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_waiver_parses() {
        let parsed = parse_comment("// randmod: allow(P1, index bounded by lane count)", 7, true);
        match parsed {
            ParsedComment::Waiver(w) => {
                assert_eq!(w.rule, RuleId::P1);
                assert_eq!(w.reason, "index bounded by lane count");
                assert_eq!(w.line, 7);
                assert!(w.trailing);
                assert!(!w.used);
            }
            other => panic!("expected a waiver, got {other:?}"),
        }
    }

    #[test]
    fn missing_reason_is_malformed() {
        assert!(matches!(
            parse_comment("// randmod: allow(D2)", 1, false),
            ParsedComment::Malformed(_)
        ));
        assert!(matches!(
            parse_comment("// randmod: allow(D2,   )", 1, false),
            ParsedComment::Malformed(_)
        ));
    }

    #[test]
    fn unknown_rule_is_malformed() {
        assert!(matches!(
            parse_comment("// randmod: allow(Z9, because)", 1, false),
            ParsedComment::Malformed(_)
        ));
    }

    #[test]
    fn prose_without_marker_is_ignored() {
        assert_eq!(
            parse_comment("// plain prose about allow(P1, x)", 1, false),
            ParsedComment::NotAWaiver
        );
    }
}
