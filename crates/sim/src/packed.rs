//! Packed trace representation: one 8-byte word per event.
//!
//! A [`crate::trace::Trace`] stores `Vec<MemEvent>`, and the enum layout of
//! [`MemEvent`] costs 16 bytes per event (discriminant + padding + payload).
//! Replay campaigns stream the same trace hundreds of times, so the trace
//! representation sits on the memory-bandwidth hot path of every
//! experiment.  [`PackedTrace`] halves it: each event is a single `u64`
//! with a 2-bit kind tag in the low bits and the payload above —
//!
//! ```text
//! 63                                            2 1 0
//! +----------------------------------------------+---+
//! |                payload (62 bits)             |tag|
//! +----------------------------------------------+---+
//! ```
//!
//! The payload is the raw byte address for fetches, loads and stores (the
//! generators emit word-aligned addresses, so the two bits the tag occupies
//! are recovered by shifting rather than masking — unaligned addresses
//! round-trip too) and the cycle count for compute intervals.  Decoding is
//! a shift and a 4-way match, done on the fly by [`PackedEvents`]; no
//! intermediate `Vec<MemEvent>` is ever materialised during replay.

use crate::checkpoint::{atomic_write, fnv1a};
use crate::trace::{EventSink, EventSource, MemEvent, Trace};
use crate::wire::le_u64;
use randmod_core::Address;
use std::fmt;
use std::path::Path;

/// Kind tag of an instruction fetch.
const TAG_FETCH: u64 = 0;
/// Kind tag of a data load.
const TAG_LOAD: u64 = 1;
/// Kind tag of a data store.
const TAG_STORE: u64 = 2;
/// Kind tag of a compute interval.
const TAG_COMPUTE: u64 = 3;
/// Mask selecting the kind tag.
const TAG_MASK: u64 = 0b11;
/// Number of payload bits available above the tag.
const PAYLOAD_BITS: u32 = 62;
/// Largest encodable payload (addresses and cycle counts).
pub const MAX_PAYLOAD: u64 = (1 << PAYLOAD_BITS) - 1;

/// Encodes one event into its packed word.
///
/// # Panics
///
/// Panics if an address exceeds [`MAX_PAYLOAD`] (2⁶² − 1); the modelled
/// targets use 32-bit physical addresses, so this is never hit in practice.
/// Crate-visible so the sharded campaign drivers can fingerprint a trace
/// by its packed words without materialising a [`PackedTrace`].
pub(crate) fn encode(event: MemEvent) -> u64 {
    let (payload, tag) = match event {
        MemEvent::InstrFetch(a) => (a.raw(), TAG_FETCH),
        MemEvent::Load(a) => (a.raw(), TAG_LOAD),
        MemEvent::Store(a) => (a.raw(), TAG_STORE),
        MemEvent::Compute(c) => (c as u64, TAG_COMPUTE),
    };
    assert!(
        payload <= MAX_PAYLOAD,
        "event payload {payload:#x} exceeds the 62-bit packed-trace range"
    );
    (payload << 2) | tag
}

/// Decodes one packed word back into its event.
fn decode(word: u64) -> MemEvent {
    let payload = word >> 2;
    match word & TAG_MASK {
        TAG_FETCH => MemEvent::InstrFetch(Address::new(payload)),
        TAG_LOAD => MemEvent::Load(Address::new(payload)),
        TAG_STORE => MemEvent::Store(Address::new(payload)),
        // randmod: allow(C1, compute payloads are encoded from a u32, so the low 32 bits are the whole value — pinned by the encode/decode round-trip proptest)
        _ => MemEvent::Compute(payload as u32),
    }
}

/// A program trace packed to 8 bytes per event.
///
/// Functionally equivalent to [`Trace`] — replaying a `PackedTrace`
/// produces cycle-identical campaigns — at half the memory footprint.
///
/// ```
/// use randmod_sim::packed::PackedTrace;
/// use randmod_sim::trace::MemEvent;
/// use randmod_core::Address;
///
/// let mut trace = PackedTrace::new();
/// trace.push(MemEvent::Load(Address::new(0x2000)));
/// trace.push(MemEvent::Compute(3));
/// let events: Vec<MemEvent> = trace.iter().collect();
/// assert_eq!(events[0], MemEvent::Load(Address::new(0x2000)));
/// assert_eq!(events[1], MemEvent::Compute(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedTrace {
    words: Vec<u64>,
}

impl PackedTrace {
    /// Creates an empty packed trace.
    pub fn new() -> Self {
        PackedTrace::default()
    }

    /// Creates an empty packed trace with capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        PackedTrace {
            words: Vec::with_capacity(n),
        }
    }

    /// Appends one event.
    ///
    /// # Panics
    ///
    /// Panics if the event's address exceeds [`MAX_PAYLOAD`].
    pub fn push(&mut self, event: MemEvent) {
        self.words.push(encode(event));
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Bytes of heap memory holding the encoded events (8 per event).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Iterates over the events, decoding on the fly.
    pub fn iter(&self) -> PackedEvents<'_> {
        PackedEvents {
            words: self.words.iter(),
        }
    }

    /// Collects the events into a boxed [`Trace`] (compatibility adapter).
    pub fn to_trace(&self) -> Trace {
        self.iter().collect()
    }

    /// Computes summary statistics for a given cache-line size, decoding
    /// on the fly.
    pub fn stats(&self, line_size: u32) -> crate::trace::TraceStats {
        crate::trace::TraceStats::from_events(self.iter(), line_size)
    }
}

impl EventSink for PackedTrace {
    fn emit(&mut self, event: MemEvent) {
        self.push(event);
    }
}

impl EventSource for PackedTrace {
    fn events(&self) -> impl Iterator<Item = MemEvent> + '_ {
        self.iter()
    }
}

impl Extend<MemEvent> for PackedTrace {
    fn extend<T: IntoIterator<Item = MemEvent>>(&mut self, iter: T) {
        self.words.extend(iter.into_iter().map(encode));
    }
}

impl FromIterator<MemEvent> for PackedTrace {
    fn from_iter<T: IntoIterator<Item = MemEvent>>(iter: T) -> Self {
        PackedTrace {
            words: iter.into_iter().map(encode).collect(),
        }
    }
}

impl<'a> IntoIterator for &'a PackedTrace {
    type Item = MemEvent;
    type IntoIter = PackedEvents<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl From<&Trace> for PackedTrace {
    fn from(trace: &Trace) -> Self {
        trace.iter().copied().collect()
    }
}

impl fmt::Display for PackedTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} packed events ({} bytes)", self.len(), self.len() * 8)
    }
}

// ---------------------------------------------------------------------------
// Checksummed file round-trip
// ---------------------------------------------------------------------------

/// Magic + version prefix of a packed-trace file (bump the digit when the
/// word encoding changes).
pub const TRACE_FILE_MAGIC: &[u8; 8] = b"RMTRACE1";

/// Error produced while reading or writing a packed-trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// The filesystem operation itself failed.
    Io {
        /// Path the operation targeted.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file's bytes fail validation: wrong magic/version, a length
    /// that disagrees with the header, or a checksum mismatch (truncation
    /// or bit-flips).
    Corrupt {
        /// What failed to validate.
        detail: String,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io { path, source } => {
                write!(f, "trace file {path}: {source}")
            }
            TraceFileError::Corrupt { detail } => {
                write!(f, "trace file corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io { source, .. } => Some(source),
            TraceFileError::Corrupt { .. } => None,
        }
    }
}

impl PackedTrace {
    /// Serializes the trace into its self-validating file format: magic +
    /// version, event count, the packed words, and a trailing FNV-1a
    /// checksum over everything before it.  [`Self::from_bytes`] rejects
    /// any truncation or bit-flip of the result.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(24 + self.words.len() * 8);
        bytes.extend_from_slice(TRACE_FILE_MAGIC);
        bytes.extend_from_slice(&(self.words.len() as u64).to_le_bytes());
        for &word in &self.words {
            bytes.extend_from_slice(&word.to_le_bytes());
        }
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Deserializes a trace written by [`Self::to_bytes`], validating the
    /// magic, the declared event count against the byte length, and the
    /// trailing checksum.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError::Corrupt`] naming the first check that
    /// failed; a damaged file is never partially decoded.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceFileError> {
        // Every read below goes through `get`: a truncated file must
        // become a `Corrupt` error, never a slice-bounds panic (rule P1).
        let corrupt = |detail: String| TraceFileError::Corrupt { detail };
        let truncated = || corrupt("file too short for its own framing".to_string());
        if bytes.len() < 24 {
            return Err(corrupt(format!(
                "{} bytes is shorter than the 24-byte minimum (magic + count + checksum)",
                bytes.len()
            )));
        }
        let magic = bytes.get(..8).ok_or_else(truncated)?;
        if magic != TRACE_FILE_MAGIC.as_slice() {
            return Err(corrupt(format!(
                "bad magic {magic:02x?} (expected {TRACE_FILE_MAGIC:02x?}) — not a packed-trace \
                 file, or an unsupported version"
            )));
        }
        let count = le_u64(bytes.get(8..16).ok_or_else(truncated)?);
        let body_len = bytes.len() - 8;
        let expected_words = (body_len - 16) / 8;
        if body_len < 16 || (body_len - 16) % 8 != 0 || count != expected_words as u64 {
            return Err(corrupt(format!(
                "header declares {count} events but the file holds {} payload bytes \
                 (truncated or padded)",
                body_len.saturating_sub(16)
            )));
        }
        let stored = le_u64(bytes.get(body_len..).ok_or_else(truncated)?);
        let body = bytes.get(..body_len).ok_or_else(truncated)?;
        let computed = fnv1a(body);
        if stored != computed {
            return Err(corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x} \
                 (truncated or bit-flipped)"
            )));
        }
        let words = body
            .get(16..)
            .ok_or_else(truncated)?
            .chunks_exact(8)
            .map(le_u64)
            .collect();
        Ok(PackedTrace { words })
    }

    /// Writes the trace to `path` atomically (temp file + rename) in the
    /// checksummed [`Self::to_bytes`] format.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError::Io`] when the filesystem fails.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), TraceFileError> {
        let path = path.as_ref();
        atomic_write(path, &self.to_bytes()).map_err(|source| TraceFileError::Io {
            path: path.display().to_string(),
            source,
        })
    }

    /// Reads a trace written by [`Self::write_file`], rejecting truncated
    /// or bit-flipped files.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError::Io`] when the file cannot be read and
    /// [`TraceFileError::Corrupt`] when its contents fail validation.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|source| TraceFileError::Io {
            path: path.display().to_string(),
            source,
        })?;
        PackedTrace::from_bytes(&bytes)
    }
}

/// Decoding iterator over a [`PackedTrace`].
#[derive(Debug, Clone)]
pub struct PackedEvents<'a> {
    words: std::slice::Iter<'a, u64>,
}

impl Iterator for PackedEvents<'_> {
    type Item = MemEvent;

    fn next(&mut self) -> Option<MemEvent> {
        self.words.next().map(|&w| decode(w))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.words.size_hint()
    }
}

impl ExactSizeIterator for PackedEvents<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_events() -> Vec<MemEvent> {
        vec![
            MemEvent::InstrFetch(Address::new(0x4000_0000)),
            MemEvent::Load(Address::new(0x4010_0004)),
            MemEvent::Store(Address::new(0x4020_0008)),
            MemEvent::Compute(7),
        ]
    }

    #[test]
    fn push_and_decode_round_trip() {
        let mut packed = PackedTrace::new();
        for event in sample_events() {
            packed.push(event);
        }
        let decoded: Vec<MemEvent> = packed.iter().collect();
        assert_eq!(decoded, sample_events());
        assert_eq!(packed.len(), 4);
        assert!(!packed.is_empty());
    }

    #[test]
    fn eight_bytes_per_event() {
        let packed: PackedTrace = sample_events().into_iter().collect();
        assert!(packed.heap_bytes() >= packed.len() * 8);
        // The display form advertises the payload size, not the capacity.
        assert_eq!(packed.to_string(), "4 packed events (32 bytes)");
    }

    #[test]
    fn from_trace_and_back() {
        let trace: Trace = sample_events().into_iter().collect();
        let packed = PackedTrace::from(&trace);
        assert_eq!(packed.to_trace(), trace);
        assert_eq!(packed.len(), trace.len());
    }

    #[test]
    fn extend_and_collect_match_push() {
        let mut a = PackedTrace::with_capacity(4);
        a.extend(sample_events());
        let b: PackedTrace = sample_events().into_iter().collect();
        assert_eq!(a, b);
        let via_ref: Vec<MemEvent> = (&a).into_iter().collect();
        assert_eq!(via_ref, sample_events());
    }

    #[test]
    fn iterator_is_exact_size() {
        let packed: PackedTrace = sample_events().into_iter().collect();
        let mut iter = packed.iter();
        assert_eq!(iter.len(), 4);
        iter.next();
        assert_eq!(iter.len(), 3);
    }

    #[test]
    fn unaligned_addresses_round_trip() {
        // The encoding shifts rather than masks, so addresses with nonzero
        // low bits survive (the builder never emits them, but the sim's own
        // tests do).
        let event = MemEvent::Load(Address::new(0x10_0003));
        let packed: PackedTrace = [event].into_iter().collect();
        assert_eq!(packed.iter().next(), Some(event));
    }

    #[test]
    fn compute_payload_round_trips_at_u32_max() {
        let event = MemEvent::Compute(u32::MAX);
        let packed: PackedTrace = [event].into_iter().collect();
        assert_eq!(packed.iter().next(), Some(event));
    }

    #[test]
    #[should_panic(expected = "62-bit packed-trace range")]
    fn oversized_address_panics() {
        PackedTrace::new().push(MemEvent::Load(Address::new(1 << 62)));
    }

    #[test]
    fn event_sink_parity_with_trace() {
        let mut packed = PackedTrace::new();
        let mut boxed = Trace::new();
        let sink: &mut dyn EventSink = &mut packed;
        sink.fetch(Address::new(0x1000));
        sink.load(Address::new(0x2000));
        sink.store(Address::new(0x3000));
        sink.compute(5);
        sink.compute(0); // dropped, as Trace::compute does
        boxed.fetch(Address::new(0x1000));
        boxed.load(Address::new(0x2000));
        boxed.store(Address::new(0x3000));
        boxed.compute(5);
        boxed.compute(0);
        assert_eq!(packed.to_trace(), boxed);
    }

    #[test]
    fn byte_round_trip_is_identity() {
        let packed: PackedTrace = sample_events().into_iter().collect();
        let bytes = packed.to_bytes();
        assert_eq!(&bytes[..8], TRACE_FILE_MAGIC);
        assert_eq!(PackedTrace::from_bytes(&bytes).unwrap(), packed);
        // The empty trace round-trips too.
        let empty = PackedTrace::new();
        assert_eq!(PackedTrace::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let bytes = PackedTrace::from_iter(sample_events()).to_bytes();
        for len in [0, 10, bytes.len() - 8, bytes.len() - 1] {
            let err = PackedTrace::from_bytes(&bytes[..len]).unwrap_err();
            assert!(matches!(err, TraceFileError::Corrupt { .. }), "{len}: {err}");
        }
    }

    #[test]
    fn bit_flips_are_rejected_everywhere() {
        let bytes = PackedTrace::from_iter(sample_events()).to_bytes();
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x10;
            assert!(
                PackedTrace::from_bytes(&flipped).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn wrong_magic_is_reported_as_such() {
        let mut bytes = PackedTrace::from_iter(sample_events()).to_bytes();
        bytes[7] = b'9';
        let err = PackedTrace::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let path = std::env::temp_dir()
            .join(format!("randmod-trace-test-{}.bin", std::process::id()));
        let packed: PackedTrace = sample_events().into_iter().collect();
        packed.write_file(&path).unwrap();
        assert_eq!(PackedTrace::read_file(&path).unwrap(), packed);
        // A truncated file on disk is rejected with a Corrupt error.
        let bytes = packed.to_bytes();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let err = PackedTrace::read_file(&path).unwrap_err();
        assert!(matches!(err, TraceFileError::Corrupt { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
        // A missing file is an Io error naming the path.
        let err = PackedTrace::read_file(&path).unwrap_err();
        assert!(matches!(err, TraceFileError::Io { .. }), "{err}");
        assert!(err.to_string().contains("randmod-trace-test"), "{err}");
        assert!(std::error::Error::source(&err).is_some());
    }

    /// Strategy: one arbitrary event with a payload inside the packed range.
    fn event_strategy() -> impl Strategy<Value = MemEvent> {
        (0u64..4, 0u64..=MAX_PAYLOAD).prop_map(|(kind, payload)| match kind {
            0 => MemEvent::InstrFetch(Address::new(payload)),
            1 => MemEvent::Load(Address::new(payload)),
            2 => MemEvent::Store(Address::new(payload)),
            _ => MemEvent::Compute((payload & u32::MAX as u64) as u32),
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// events -> PackedTrace -> events is the identity for every kind
        /// and the full payload range.
        #[test]
        fn round_trip_is_lossless(events in prop::collection::vec(event_strategy(), 0..200)) {
            let packed: PackedTrace = events.iter().copied().collect();
            prop_assert_eq!(packed.len(), events.len());
            let decoded: Vec<MemEvent> = packed.iter().collect();
            prop_assert_eq!(decoded, events);
        }
    }
}
