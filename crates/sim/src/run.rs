//! Measurement campaigns.
//!
//! MBPTA collects execution-time observations by running the program many
//! times (the paper uses 1,000 runs per benchmark), installing a fresh
//! placement seed before each run so that every run samples a new random
//! cache layout.  [`Campaign`] automates this protocol, executing runs in
//! parallel across threads *and* in batches of seed lanes within each
//! thread (each run is independent by construction): every worker owns a
//! [`crate::batch::BatchCore`] that decodes the shared trace once per group
//! of [`Campaign::lanes`] seeds instead of once per run.  The program is
//! any [`EventSource`] — a boxed [`Trace`], a packed
//! [`crate::packed::PackedTrace`], or a slice of events — shared read-only
//! across the worker threads.
//!
//! For the deterministic baseline of Figure 4(b), the execution time does
//! not vary with a seed but with the *memory layout* of the program; the
//! corresponding protocol, sweeping layouts and recording the high-water
//! mark, is provided by [`Campaign::run_layout_sweep_with`] (which builds
//! one layout's trace at a time, keeping the sweep's memory footprint
//! constant) and its collecting adapter [`Campaign::run_layout_sweep`].

use crate::batch::BatchCore;
use crate::config::PlatformConfig;
use crate::cpu::InOrderCore;
use crate::hierarchy::HierarchyStats;
use crate::trace::{EventSource, Trace};
use randmod_core::prng::SeedSequence;
use randmod_core::ConfigError;
use randmod_mbpta::online::{ConvergenceCheckpoint, ConvergenceCriterion, ConvergenceTracker};
use std::fmt;

/// The outcome of one run of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// The placement seed installed for this run (or the layout index for a
    /// deterministic sweep).
    pub seed: u64,
    /// End-to-end execution time in cycles.
    pub cycles: u64,
    /// Per-level cache statistics of the run.
    pub stats: HierarchyStats,
}

/// The collected results of a measurement campaign.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CampaignResult {
    runs: Vec<RunResult>,
}

impl CampaignResult {
    /// Creates a result from individual runs.
    pub fn from_runs(runs: Vec<RunResult>) -> Self {
        CampaignResult { runs }
    }

    /// The individual runs, in campaign order.
    pub fn runs(&self) -> &[RunResult] {
        &self.runs
    }

    /// The execution times, in campaign order (the input MBPTA consumes).
    pub fn cycles(&self) -> Vec<u64> {
        self.cycles_iter().collect()
    }

    /// Iterates the execution times in campaign order without allocating
    /// an intermediate `Vec` (feed it straight into
    /// `ExecutionSample::from_cycles_iter`).
    pub fn cycles_iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().map(|r| r.cycles)
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the campaign produced no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Arithmetic mean of the execution times (0 for an empty campaign).
    pub fn mean_cycles(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.runs.iter().map(|r| r.cycles as f64).sum::<f64>() / self.runs.len() as f64
        }
    }

    /// Largest observed execution time (the high-water mark).
    pub fn max_cycles(&self) -> u64 {
        self.runs.iter().map(|r| r.cycles).max().unwrap_or(0)
    }

    /// Smallest observed execution time.
    pub fn min_cycles(&self) -> u64 {
        self.runs.iter().map(|r| r.cycles).min().unwrap_or(0)
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs: min {}, mean {:.0}, max {} cycles",
            self.len(),
            self.min_cycles(),
            self.mean_cycles(),
            self.max_cycles()
        )
    }
}

/// The outcome of an adaptive (convergence-driven) measurement campaign:
/// the collected runs plus the convergence trajectory that decided when to
/// stop.  Produced by [`Campaign::run_adaptive`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveResult {
    result: CampaignResult,
    trajectory: Vec<ConvergenceCheckpoint>,
    converged: bool,
    pwcet_estimate: f64,
}

impl AdaptiveResult {
    /// The collected runs, exactly as a fixed-size campaign over the same
    /// seed prefix would have produced them.
    pub fn result(&self) -> &CampaignResult {
        &self.result
    }

    /// Consumes the adaptive wrapper, keeping the runs.
    pub fn into_result(self) -> CampaignResult {
        self.result
    }

    /// Number of runs the campaign needed (the runs-to-convergence count,
    /// or the cap when the estimate never stabilised).
    pub fn runs_used(&self) -> usize {
        self.result.len()
    }

    /// Whether the stopping rule was met before the run cap.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The checkpoint history of the convergence loop, oldest first.
    pub fn trajectory(&self) -> &[ConvergenceCheckpoint] {
        &self.trajectory
    }

    /// The final pWCET estimate at the criterion's target probability.
    pub fn pwcet_estimate(&self) -> f64 {
        self.pwcet_estimate
    }
}

impl fmt::Display for AdaptiveResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} runs ({} checkpoints): pWCET estimate {:.0} cycles",
            if self.converged { "converged" } else { "run cap reached" },
            self.runs_used(),
            self.trajectory.len(),
            self.pwcet_estimate
        )
    }
}

/// A measurement campaign: a platform configuration plus a run count.
///
/// ```
/// use randmod_sim::{Campaign, PlatformConfig, Trace};
/// use randmod_core::{Address, PlacementKind};
///
/// # fn main() -> Result<(), randmod_core::ConfigError> {
/// let mut trace = Trace::new();
/// for i in 0..64u64 {
///     trace.load(Address::new(0x1000 + i * 32));
/// }
/// let campaign = Campaign::new(
///     PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
///     10,
/// );
/// let result = campaign.run(&trace)?;
/// assert_eq!(result.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    config: PlatformConfig,
    runs: usize,
    campaign_seed: u64,
    threads: usize,
    lanes: usize,
}

impl Campaign {
    /// Default number of seed lanes stepped per trace decode (see
    /// [`Self::with_lanes`]).
    pub const DEFAULT_LANES: usize = 8;

    /// Creates a campaign of `runs` runs on the given platform.
    pub fn new(config: PlatformConfig, runs: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Campaign {
            config,
            runs,
            campaign_seed: 0x00C0_FFEE,
            threads,
            lanes: Self::DEFAULT_LANES,
        }
    }

    /// Overrides the campaign-level seed from which per-run seeds are drawn.
    pub fn with_campaign_seed(mut self, seed: u64) -> Self {
        self.campaign_seed = seed;
        self
    }

    /// Overrides the number of worker threads (minimum 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the number of seed lanes each worker steps per trace
    /// decode (minimum 1; the default is [`Self::DEFAULT_LANES`]).
    ///
    /// Lanes compose with threads: a campaign of `N` runs on `T` threads
    /// decodes the trace `N / (T * lanes)` times per thread.  Results are
    /// bit-identical for every `(threads, lanes)` combination;
    /// `with_lanes(1)` is the sequential escape hatch (one hierarchy per
    /// decode pass), kept as the comparison baseline of the
    /// `campaign_throughput` benchmark.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Number of seed lanes per worker.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The platform configuration of this campaign.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Number of runs this campaign performs.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Runs the MBPTA measurement protocol: replay `source` once per run,
    /// with a fresh placement seed installed (and caches flushed) before
    /// each run.  Accepts any [`EventSource`] — `&Trace`, `&PackedTrace`,
    /// or an event slice.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    pub fn run<S>(&self, source: &S) -> Result<CampaignResult, ConfigError>
    where
        S: EventSource + ?Sized,
    {
        self.config.validate()?;
        let seeds: Vec<u64> = SeedSequence::new(self.campaign_seed).take(self.runs).collect();
        self.run_seeds_validated(source, &seeds)
    }

    /// Runs the program once for every provided seed.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    pub fn run_seeds<S>(&self, source: &S, seeds: &[u64]) -> Result<CampaignResult, ConfigError>
    where
        S: EventSource + ?Sized,
    {
        self.config.validate()?;
        self.run_seeds_validated(source, seeds)
    }

    /// The seed-sweep worker pool; the configuration is already validated
    /// by the public entry points (exactly once per campaign).  Each worker
    /// owns one [`BatchCore`] and replays its seed chunk in groups of
    /// `lanes` seeds per trace decode.
    fn run_seeds_validated<S>(&self, source: &S, seeds: &[u64]) -> Result<CampaignResult, ConfigError>
    where
        S: EventSource + ?Sized,
    {
        if seeds.is_empty() {
            return Ok(CampaignResult::default());
        }
        let threads = self.threads.min(seeds.len()).max(1);
        let chunk_size = seeds.len().div_ceil(threads);
        let config = self.config;
        let lanes = self.lanes;
        let mut results: Vec<Vec<RunResult>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || -> Result<Vec<RunResult>, ConfigError> {
                        let mut core = BatchCore::new(&config, lanes.min(chunk.len()))?;
                        let mut out = Vec::with_capacity(chunk.len());
                        for group in chunk.chunks(core.lane_count()) {
                            let lane_results = core.execute_batch(source.events(), group);
                            for (&seed, (cycles, stats)) in group.iter().zip(lane_results) {
                                out.push(RunResult { seed, cycles, stats });
                            }
                        }
                        Ok(out)
                    })
                })
                .collect();
            for handle in handles {
                let chunk_result = handle.join().expect("campaign worker thread panicked");
                results.push(chunk_result?);
            }
            Ok::<(), ConfigError>(())
        })?;
        Ok(CampaignResult::from_runs(results.into_iter().flatten().collect()))
    }

    /// Runs the convergence-driven variant of the MBPTA protocol: the seed
    /// schedule grows in batches until `criterion` declares the pWCET
    /// estimate stable (or its run cap is hit), instead of executing a
    /// fixed run count.
    ///
    /// Seeds are drawn in the same deterministic order as [`Self::run`],
    /// and each batch goes through the same seed-batched worker pool
    /// ([`BatchCore`] lanes across threads), so an adaptive campaign's
    /// first `N` runs are **bit-identical** to `run_seeds` with the first
    /// `N` seeds of the campaign's [`SeedSequence`] — the adaptive engine
    /// only chooses where the schedule *stops*, never what any run
    /// computes.  The tracker is fed between batches, so the campaign can
    /// overshoot the exact convergence run by at most one checkpoint
    /// interval's worth of runs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    ///
    /// # Panics
    ///
    /// Panics if the criterion is malformed (see
    /// [`ConvergenceTracker::new`]).
    pub fn run_adaptive<S>(
        &self,
        source: &S,
        criterion: &ConvergenceCriterion,
    ) -> Result<AdaptiveResult, ConfigError>
    where
        S: EventSource + ?Sized,
    {
        self.config.validate()?;
        let mut tracker = ConvergenceTracker::new(*criterion);
        let max_runs = criterion.max_runs.max(1);
        let mut seeds = SeedSequence::new(self.campaign_seed);
        let mut runs: Vec<RunResult> = Vec::new();
        // First batch: everything up to the criterion's floor (the first
        // possible checkpoint); afterwards one checkpoint interval at a
        // time.
        let mut planned = criterion.min_runs.max(1).min(max_runs);
        loop {
            let batch: Vec<u64> = seeds.by_ref().take(planned - runs.len()).collect();
            let batch_result = self.run_seeds_validated(source, &batch)?;
            for run in batch_result.runs() {
                tracker.push(run.cycles);
            }
            runs.extend_from_slice(batch_result.runs());
            if tracker.is_converged() || runs.len() >= max_runs {
                break;
            }
            planned = (runs.len() + criterion.check_interval.max(1)).min(max_runs);
        }
        // Make sure the trajectory ends with an estimate over the full
        // sample (the cap can land between checkpoints).
        tracker.finalize();
        Ok(AdaptiveResult {
            result: CampaignResult::from_runs(runs),
            converged: tracker.is_converged(),
            pwcet_estimate: tracker.current_estimate(),
            trajectory: tracker.trajectory().to_vec(),
        })
    }

    /// Runs the deterministic-platform protocol of Figure 4(b) in streaming
    /// form: `build(i)` produces the trace of the `i`-th memory layout, and
    /// each worker thread holds at most one layout's trace alive at a time
    /// — the sweep's memory footprint no longer grows with the number of
    /// layouts.  The result's `seed` field records the layout index.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    pub fn run_layout_sweep_with<S, F>(
        &self,
        layouts: usize,
        build: F,
    ) -> Result<CampaignResult, ConfigError>
    where
        S: EventSource,
        F: Fn(usize) -> S + Sync,
    {
        self.config.validate()?;
        if layouts == 0 {
            return Ok(CampaignResult::default());
        }
        let threads = self.threads.min(layouts).max(1);
        let chunk_size = layouts.div_ceil(threads);
        let config = self.config;
        let build = &build;
        let mut results: Vec<Vec<RunResult>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..layouts)
                .step_by(chunk_size)
                .map(|start| {
                    let end = (start + chunk_size).min(layouts);
                    scope.spawn(move || -> Result<Vec<RunResult>, ConfigError> {
                        let mut core = InOrderCore::new(&config)?;
                        let mut out = Vec::with_capacity(end - start);
                        for index in start..end {
                            let layout_trace = build(index);
                            let (cycles, stats) = core.execute_isolated(layout_trace.events(), 0);
                            out.push(RunResult {
                                seed: index as u64,
                                cycles,
                                stats,
                            });
                        }
                        Ok(out)
                    })
                })
                .collect();
            for handle in handles {
                let chunk_result = handle.join().expect("campaign worker thread panicked");
                results.push(chunk_result?);
            }
            Ok::<(), ConfigError>(())
        })?;
        Ok(CampaignResult::from_runs(results.into_iter().flatten().collect()))
    }

    /// Collecting adapter for pre-materialised layout sweeps: every entry
    /// of `layouts` is the same program placed differently in memory; each
    /// is executed once (the layout, not a seed, is what varies).  Prefer
    /// [`Self::run_layout_sweep_with`] when the traces can be generated on
    /// demand.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    pub fn run_layout_sweep(&self, layouts: &[Trace]) -> Result<CampaignResult, ConfigError> {
        self.run_layout_sweep_with(layouts.len(), |i| &layouts[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemEvent;
    use randmod_core::{Address, PlacementKind};

    fn stress_trace() -> Trace {
        let mut trace = Trace::new();
        for repeat in 0..3 {
            for i in 0..640u64 {
                trace.fetch(Address::new(0x1000 + (i % 16) * 32));
                trace.load(Address::new(0x10_0000 + i * 32 + repeat));
            }
        }
        trace
    }

    #[test]
    fn campaign_produces_requested_number_of_runs() {
        let campaign = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
            8,
        )
        .with_threads(2);
        let result = campaign.run(&stress_trace()).unwrap();
        assert_eq!(result.len(), 8);
        assert!(result.min_cycles() > 0);
        assert!(result.max_cycles() >= result.min_cycles());
        assert!(result.mean_cycles() >= result.min_cycles() as f64);
    }

    #[test]
    fn campaign_is_reproducible_for_a_given_campaign_seed() {
        let campaign = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::HashRandom),
            6,
        )
        .with_campaign_seed(42)
        .with_threads(3);
        let trace = stress_trace();
        let a = campaign.run(&trace).unwrap();
        let b = campaign.run(&trace).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let trace = stress_trace();
        let single = Campaign::new(PlatformConfig::leon3(), 6)
            .with_campaign_seed(7)
            .with_threads(1)
            .run(&trace)
            .unwrap();
        let multi = Campaign::new(PlatformConfig::leon3(), 6)
            .with_campaign_seed(7)
            .with_threads(4)
            .run(&trace)
            .unwrap();
        assert_eq!(single.cycles(), multi.cycles());
    }

    #[test]
    fn lanes_and_threads_do_not_change_results() {
        // The full grid of the batching knobs must reproduce one
        // CampaignResult bit-for-bit (including per-run HierarchyStats) for
        // a fixed campaign seed.
        let trace = stress_trace();
        let reference = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
            13,
        )
        .with_campaign_seed(99)
        .with_threads(1)
        .with_lanes(1)
        .run(&trace)
        .unwrap();
        for lanes in [1usize, 2, 7] {
            for threads in [1usize, 4] {
                let result = Campaign::new(
                    PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
                    13,
                )
                .with_campaign_seed(99)
                .with_threads(threads)
                .with_lanes(lanes)
                .run(&trace)
                .unwrap();
                assert_eq!(
                    result, reference,
                    "lanes={lanes} threads={threads} diverged from the sequential reference"
                );
            }
        }
    }

    #[test]
    fn lane_accessors_and_clamping() {
        let campaign = Campaign::new(PlatformConfig::leon3(), 4);
        assert_eq!(campaign.lanes(), Campaign::DEFAULT_LANES);
        assert_eq!(campaign.clone().with_lanes(0).lanes(), 1);
        assert_eq!(campaign.with_lanes(3).lanes(), 3);
    }

    #[test]
    fn empty_campaign_is_empty() {
        let campaign = Campaign::new(PlatformConfig::leon3(), 0);
        let result = campaign.run(&stress_trace()).unwrap();
        assert!(result.is_empty());
        assert_eq!(result.mean_cycles(), 0.0);
        assert_eq!(result.max_cycles(), 0);
    }

    #[test]
    fn run_seeds_uses_exactly_the_given_seeds() {
        let campaign = Campaign::new(PlatformConfig::leon3(), 0).with_threads(2);
        let trace = stress_trace();
        let seeds = [3u64, 1, 4, 1, 5];
        let result = campaign.run_seeds(&trace, &seeds).unwrap();
        let recorded: Vec<u64> = result.runs().iter().map(|r| r.seed).collect();
        assert_eq!(recorded, seeds);
        // Identical seeds must give identical execution times.
        assert_eq!(result.runs()[1].cycles, result.runs()[3].cycles);
    }

    #[test]
    fn deterministic_layout_sweep_records_layout_indices() {
        let campaign = Campaign::new(PlatformConfig::leon3_deterministic(), 0).with_threads(2);
        let base = stress_trace();
        let layouts: Vec<Trace> = (0..5u64).map(|i| base.with_offsets(i * 64, i * 4096)).collect();
        let result = campaign.run_layout_sweep(&layouts).unwrap();
        assert_eq!(result.len(), 5);
        let indices: Vec<u64> = result.runs().iter().map(|r| r.seed).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
        // Deterministic platform: re-running the sweep reproduces it.
        assert_eq!(result, campaign.run_layout_sweep(&layouts).unwrap());
    }

    #[test]
    fn empty_layout_sweep_is_empty() {
        let campaign = Campaign::new(PlatformConfig::leon3_deterministic(), 0);
        assert!(campaign.run_layout_sweep(&[]).unwrap().is_empty());
        assert!(campaign
            .run_layout_sweep_with(0, |_| Trace::new())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn streamed_layout_sweep_matches_collected_sweep() {
        let campaign = Campaign::new(PlatformConfig::leon3_deterministic(), 0).with_threads(3);
        let base = stress_trace();
        let layouts: Vec<Trace> = (0..7u64).map(|i| base.with_offsets(i * 64, i * 4096)).collect();
        let collected = campaign.run_layout_sweep(&layouts).unwrap();
        let streamed = campaign
            .run_layout_sweep_with(7, |i| base.with_offsets(i as u64 * 64, i as u64 * 4096))
            .unwrap();
        assert_eq!(collected, streamed);
    }

    #[test]
    fn packed_replay_matches_boxed_replay() {
        let campaign = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
            10,
        )
        .with_campaign_seed(11)
        .with_threads(2);
        let trace = stress_trace();
        let packed = crate::packed::PackedTrace::from(&trace);
        assert_eq!(campaign.run(&trace).unwrap(), campaign.run(&packed).unwrap());
    }

    #[test]
    fn campaign_accepts_event_slices() {
        let events: Vec<MemEvent> = stress_trace().into_iter().collect();
        let campaign = Campaign::new(PlatformConfig::leon3(), 4).with_threads(2);
        let from_slice = campaign.run(&events[..]).unwrap();
        let from_trace = campaign.run(&stress_trace()).unwrap();
        assert_eq!(from_slice, from_trace);
    }

    #[test]
    fn random_placement_produces_execution_time_variability() {
        let campaign = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::HashRandom),
            20,
        )
        .with_threads(4);
        let result = campaign.run(&stress_trace()).unwrap();
        assert!(
            result.max_cycles() > result.min_cycles(),
            "no execution-time variability across 20 random layouts"
        );
    }

    #[test]
    fn campaign_result_display() {
        let result = CampaignResult::from_runs(vec![RunResult {
            seed: 1,
            cycles: 100,
            stats: HierarchyStats::default(),
        }]);
        assert!(result.to_string().contains("1 runs"));
    }

    #[test]
    fn accessors_expose_configuration() {
        let campaign = Campaign::new(PlatformConfig::leon3(), 12);
        assert_eq!(campaign.runs(), 12);
        assert_eq!(campaign.config(), &PlatformConfig::leon3());
    }
}
