//! Measurement campaigns.
//!
//! MBPTA collects execution-time observations by running the program many
//! times (the paper uses 1,000 runs per benchmark), installing a fresh
//! placement seed before each run so that every run samples a new random
//! cache layout.  [`Campaign`] automates this protocol, executing runs in
//! parallel across threads *and* in batches of seed lanes within each
//! thread (each run is independent by construction): every worker owns a
//! [`crate::batch::BatchCore`] that decodes the shared trace once per group
//! of [`Campaign::lanes`] seeds instead of once per run.  The program is
//! any [`EventSource`] — a boxed [`Trace`], a packed
//! [`crate::packed::PackedTrace`], or a slice of events — shared read-only
//! across the worker threads.
//!
//! For the deterministic baseline of Figure 4(b), the execution time does
//! not vary with a seed but with the *memory layout* of the program; the
//! corresponding protocol, sweeping layouts and recording the high-water
//! mark, is provided by [`Campaign::run_layout_sweep_with`] (which builds
//! one layout's trace at a time, keeping the sweep's memory footprint
//! constant) and its collecting adapter [`Campaign::run_layout_sweep`].

use crate::batch::BatchCore;
use crate::config::PlatformConfig;
use crate::contention::{Arbitration, ContentionCore};
use crate::cpu::InOrderCore;
use crate::hierarchy::HierarchyStats;
use crate::trace::{EventSource, Trace};
use randmod_core::prng::SeedSequence;
use randmod_core::ConfigError;
use randmod_mbpta::online::{ConvergenceCheckpoint, ConvergenceCriterion, ConvergenceTracker};
use std::fmt;

/// Fans `items` out over up to `threads` scoped worker threads in
/// contiguous, order-preserving chunks and concatenates the workers'
/// results.  Every campaign engine — seed sweeps, contended sweeps,
/// layout sweeps — shares this one scaffold, so work partitioning (and
/// therefore result order) is identical across protocols by construction.
fn scoped_chunks<T, R, F>(items: &[T], threads: usize, worker: F) -> Result<Vec<R>, ConfigError>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Result<Vec<R>, ConfigError> + Sync,
{
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let threads = threads.min(items.len()).max(1);
    let chunk_size = items.len().div_ceil(threads);
    let worker = &worker;
    let mut results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || worker(chunk)))
            .collect();
        for handle in handles {
            let chunk_result = handle.join().expect("campaign worker thread panicked");
            results.push(chunk_result?);
        }
        Ok::<(), ConfigError>(())
    })?;
    Ok(results.into_iter().flatten().collect())
}

/// The outcome of one run of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// The placement seed installed for this run (or the layout index for a
    /// deterministic sweep).
    pub seed: u64,
    /// End-to-end execution time in cycles.
    pub cycles: u64,
    /// Per-level cache statistics of the run.
    pub stats: HierarchyStats,
}

/// The collected results of a measurement campaign.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CampaignResult {
    runs: Vec<RunResult>,
}

impl CampaignResult {
    /// Creates a result from individual runs.
    pub fn from_runs(runs: Vec<RunResult>) -> Self {
        CampaignResult { runs }
    }

    /// The individual runs, in campaign order.
    pub fn runs(&self) -> &[RunResult] {
        &self.runs
    }

    /// The execution times, in campaign order (the input MBPTA consumes).
    pub fn cycles(&self) -> Vec<u64> {
        self.cycles_iter().collect()
    }

    /// Iterates the execution times in campaign order without allocating
    /// an intermediate `Vec` (feed it straight into
    /// `ExecutionSample::from_cycles_iter`).
    pub fn cycles_iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().map(|r| r.cycles)
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the campaign produced no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Arithmetic mean of the execution times (0 for an empty campaign).
    pub fn mean_cycles(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.runs.iter().map(|r| r.cycles as f64).sum::<f64>() / self.runs.len() as f64
        }
    }

    /// Largest observed execution time (the high-water mark).
    pub fn max_cycles(&self) -> u64 {
        self.runs.iter().map(|r| r.cycles).max().unwrap_or(0)
    }

    /// Smallest observed execution time.
    pub fn min_cycles(&self) -> u64 {
        self.runs.iter().map(|r| r.cycles).min().unwrap_or(0)
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs: min {}, mean {:.0}, max {} cycles",
            self.len(),
            self.min_cycles(),
            self.mean_cycles(),
            self.max_cycles()
        )
    }
}

/// One task's share of a contended run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskRun {
    /// The task's end-to-end execution time in cycles.
    pub cycles: u64,
    /// The task's own view of the hierarchy: its private L1s plus its
    /// share of the shared-L2 traffic.
    pub stats: HierarchyStats,
}

/// One run of a contended campaign: the seed plus every task's outcome,
/// task 0 (the victim) first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContendedRun {
    /// The placement seed installed for this run.
    pub seed: u64,
    /// Per-task outcomes, in task order.
    pub tasks: Vec<TaskRun>,
}

impl ContendedRun {
    /// The aggregate hierarchy view of the run (per-task stats summed; the
    /// L2 half is the shared partition's total traffic).
    pub fn aggregate_stats(&self) -> HierarchyStats {
        self.tasks
            .iter()
            .fold(HierarchyStats::default(), |acc, task| acc.merged(task.stats))
    }
}

/// The collected results of a contended (multi-task, shared-L2)
/// measurement campaign.  Produced by [`Campaign::run_contended`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContendedResult {
    runs: Vec<ContendedRun>,
}

impl ContendedResult {
    /// Creates a result from individual contended runs.
    pub fn from_runs(runs: Vec<ContendedRun>) -> Self {
        ContendedResult { runs }
    }

    /// The individual runs, in campaign order.
    pub fn runs(&self) -> &[ContendedRun] {
        &self.runs
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the campaign produced no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of tasks per run (0 for an empty campaign).
    pub fn task_count(&self) -> usize {
        self.runs.first().map_or(0, |run| run.tasks.len())
    }

    /// Iterates one task's execution times in campaign order (task 0 is
    /// the victim — the sample MBPTA consumes).
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range for a non-empty campaign.
    pub fn task_cycles_iter(&self, task: usize) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().map(move |run| run.tasks[task].cycles)
    }

    /// Iterates the per-run cycles of every task in run-major order
    /// (`run0·task0, run0·task1, …, run1·task0, …`) — the flat layout
    /// `randmod_mbpta`'s per-task sample extraction splits back apart.
    pub fn flat_cycles_iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|run| run.tasks.iter().map(|t| t.cycles))
    }

    /// The victim's (task 0's) runs as a single-task [`CampaignResult`],
    /// for code written against the solo campaign API.
    pub fn victim_result(&self) -> CampaignResult {
        CampaignResult::from_runs(
            self.runs
                .iter()
                .map(|run| RunResult {
                    seed: run.seed,
                    cycles: run.tasks[0].cycles,
                    stats: run.tasks[0].stats,
                })
                .collect(),
        )
    }
}

impl fmt::Display for ContendedResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} contended runs x {} tasks: victim max {} cycles",
            self.len(),
            self.task_count(),
            self.runs
                .iter()
                .map(|run| run.tasks[0].cycles)
                .max()
                .unwrap_or(0)
        )
    }
}

/// The outcome of an adaptive contended campaign: the collected runs plus
/// the convergence trajectory of the victim's pWCET estimate.  Produced by
/// [`Campaign::run_contended_adaptive`].
#[derive(Debug, Clone, PartialEq)]
pub struct ContendedAdaptiveResult {
    result: ContendedResult,
    trajectory: Vec<ConvergenceCheckpoint>,
    converged: bool,
    pwcet_estimate: f64,
}

impl ContendedAdaptiveResult {
    /// The collected runs, exactly as a fixed-size contended campaign over
    /// the same seed prefix would have produced them.
    pub fn result(&self) -> &ContendedResult {
        &self.result
    }

    /// Number of runs the campaign needed.
    pub fn runs_used(&self) -> usize {
        self.result.len()
    }

    /// Whether the stopping rule was met before the run cap.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The checkpoint history of the convergence loop, oldest first.
    pub fn trajectory(&self) -> &[ConvergenceCheckpoint] {
        &self.trajectory
    }

    /// The final victim pWCET estimate at the criterion's target
    /// probability.
    pub fn pwcet_estimate(&self) -> f64 {
        self.pwcet_estimate
    }
}

/// The outcome of an adaptive (convergence-driven) measurement campaign:
/// the collected runs plus the convergence trajectory that decided when to
/// stop.  Produced by [`Campaign::run_adaptive`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveResult {
    result: CampaignResult,
    trajectory: Vec<ConvergenceCheckpoint>,
    converged: bool,
    pwcet_estimate: f64,
}

impl AdaptiveResult {
    /// The collected runs, exactly as a fixed-size campaign over the same
    /// seed prefix would have produced them.
    pub fn result(&self) -> &CampaignResult {
        &self.result
    }

    /// Consumes the adaptive wrapper, keeping the runs.
    pub fn into_result(self) -> CampaignResult {
        self.result
    }

    /// Number of runs the campaign needed (the runs-to-convergence count,
    /// or the cap when the estimate never stabilised).
    pub fn runs_used(&self) -> usize {
        self.result.len()
    }

    /// Whether the stopping rule was met before the run cap.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The checkpoint history of the convergence loop, oldest first.
    pub fn trajectory(&self) -> &[ConvergenceCheckpoint] {
        &self.trajectory
    }

    /// The final pWCET estimate at the criterion's target probability.
    pub fn pwcet_estimate(&self) -> f64 {
        self.pwcet_estimate
    }
}

impl fmt::Display for AdaptiveResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} runs ({} checkpoints): pWCET estimate {:.0} cycles",
            if self.converged { "converged" } else { "run cap reached" },
            self.runs_used(),
            self.trajectory.len(),
            self.pwcet_estimate
        )
    }
}

/// A measurement campaign: a platform configuration plus a run count.
///
/// ```
/// use randmod_sim::{Campaign, PlatformConfig, Trace};
/// use randmod_core::{Address, PlacementKind};
///
/// # fn main() -> Result<(), randmod_core::ConfigError> {
/// let mut trace = Trace::new();
/// for i in 0..64u64 {
///     trace.load(Address::new(0x1000 + i * 32));
/// }
/// let campaign = Campaign::new(
///     PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
///     10,
/// );
/// let result = campaign.run(&trace)?;
/// assert_eq!(result.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    config: PlatformConfig,
    runs: usize,
    campaign_seed: u64,
    threads: usize,
    lanes: usize,
    arbitration: Arbitration,
}

impl Campaign {
    /// Default number of seed lanes stepped per trace decode (see
    /// [`Self::with_lanes`]).
    pub const DEFAULT_LANES: usize = 8;

    /// Creates a campaign of `runs` runs on the given platform.
    pub fn new(config: PlatformConfig, runs: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Campaign {
            config,
            runs,
            campaign_seed: 0x00C0_FFEE,
            threads,
            lanes: Self::DEFAULT_LANES,
            arbitration: Arbitration::default(),
        }
    }

    /// Overrides the campaign-level seed from which per-run seeds are drawn.
    pub fn with_campaign_seed(mut self, seed: u64) -> Self {
        self.campaign_seed = seed;
        self
    }

    /// Overrides the number of worker threads (minimum 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the number of seed lanes each worker steps per trace
    /// decode (minimum 1; the default is [`Self::DEFAULT_LANES`]).
    ///
    /// Lanes compose with threads: a campaign of `N` runs on `T` threads
    /// decodes the trace `N / (T * lanes)` times per thread.  Results are
    /// bit-identical for every `(threads, lanes)` combination;
    /// `with_lanes(1)` is the sequential escape hatch (one hierarchy per
    /// decode pass), kept as the comparison baseline of the
    /// `campaign_throughput` benchmark.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Number of seed lanes per worker.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Overrides the arbitration policy of contended campaigns (the
    /// default is round-robin; ignored by the single-task protocols).
    pub fn with_arbitration(mut self, arbitration: Arbitration) -> Self {
        self.arbitration = arbitration;
        self
    }

    /// The arbitration policy contended campaigns use.
    pub fn arbitration(&self) -> Arbitration {
        self.arbitration
    }

    /// The platform configuration of this campaign.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Number of runs this campaign performs.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Runs the MBPTA measurement protocol: replay `source` once per run,
    /// with a fresh placement seed installed (and caches flushed) before
    /// each run.  Accepts any [`EventSource`] — `&Trace`, `&PackedTrace`,
    /// or an event slice.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    pub fn run<S>(&self, source: &S) -> Result<CampaignResult, ConfigError>
    where
        S: EventSource + ?Sized,
    {
        self.config.validate()?;
        let seeds: Vec<u64> = SeedSequence::new(self.campaign_seed).take(self.runs).collect();
        self.run_seeds_validated(source, &seeds)
    }

    /// Runs the program once for every provided seed.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    pub fn run_seeds<S>(&self, source: &S, seeds: &[u64]) -> Result<CampaignResult, ConfigError>
    where
        S: EventSource + ?Sized,
    {
        self.config.validate()?;
        self.run_seeds_validated(source, seeds)
    }

    /// The seed-sweep worker pool; the configuration is already validated
    /// by the public entry points (exactly once per campaign).  Each worker
    /// owns one [`BatchCore`] and replays its seed chunk in groups of
    /// `lanes` seeds per trace decode.
    fn run_seeds_validated<S>(&self, source: &S, seeds: &[u64]) -> Result<CampaignResult, ConfigError>
    where
        S: EventSource + ?Sized,
    {
        let config = self.config;
        let lanes = self.lanes;
        let runs = scoped_chunks(seeds, self.threads, |chunk| {
            let mut core = BatchCore::new(&config, lanes.min(chunk.len()))?;
            let mut out = Vec::with_capacity(chunk.len());
            for group in chunk.chunks(core.lane_count()) {
                let lane_results = core.execute_batch(source.events(), group);
                for (&seed, (cycles, stats)) in group.iter().zip(lane_results) {
                    out.push(RunResult { seed, cycles, stats });
                }
            }
            Ok(out)
        })?;
        Ok(CampaignResult::from_runs(runs))
    }

    /// The shared convergence-loop driver of [`Self::run_adaptive`] and
    /// [`Self::run_contended_adaptive`]: draws seeds from this campaign's
    /// [`SeedSequence`], executes them in checkpoint-sized batches through
    /// `execute`, and feeds `cycles_of` of every produced run to the
    /// tracker.  One implementation keeps the two protocols' stopping
    /// semantics (floor, cadence, cap, finalize) identical by
    /// construction — both bit-identical-prefix guarantees depend on it.
    fn run_adaptive_schedule<R>(
        &self,
        criterion: &ConvergenceCriterion,
        mut execute: impl FnMut(&[u64]) -> Result<Vec<R>, ConfigError>,
        cycles_of: impl Fn(&R) -> u64,
    ) -> Result<(Vec<R>, ConvergenceTracker), ConfigError> {
        let mut tracker = ConvergenceTracker::new(*criterion);
        let max_runs = criterion.max_runs.max(1);
        let mut seeds = SeedSequence::new(self.campaign_seed);
        let mut runs: Vec<R> = Vec::new();
        // First batch: everything up to the criterion's floor (the first
        // possible checkpoint); afterwards one checkpoint interval at a
        // time.
        let mut planned = criterion.min_runs.max(1).min(max_runs);
        loop {
            let batch: Vec<u64> = seeds.by_ref().take(planned - runs.len()).collect();
            let batch_runs = execute(&batch)?;
            for run in &batch_runs {
                tracker.push(cycles_of(run));
            }
            // An engine may legitimately produce nothing (a contended
            // campaign with no sources); stop rather than spin.
            let produced = batch_runs.len();
            runs.extend(batch_runs);
            if tracker.is_converged() || runs.len() >= max_runs || produced == 0 {
                break;
            }
            planned = (runs.len() + criterion.check_interval.max(1)).min(max_runs);
        }
        // Make sure the trajectory ends with an estimate over the full
        // sample (the cap can land between checkpoints).
        tracker.finalize();
        Ok((runs, tracker))
    }

    /// Runs the contended (multi-task, shared-L2) MBPTA protocol: every
    /// seed executes one run of `sources[0]` (the victim) co-scheduled
    /// against `sources[1..]` (the opponents) on a
    /// [`crate::contention::SharedL2Hierarchy`], under this campaign's
    /// [`Arbitration`] policy.  Runs are distributed over the same worker
    /// thread pool as [`Self::run_seeds`]; each run is a pure function of
    /// its seed, so results are thread-invariant.
    ///
    /// **Solo fast path**: when every opponent trace is empty (an idle
    /// co-schedule), the victim's runs route through the seed-batched
    /// [`BatchCore`] lane pool — the exact [`Self::run_seeds`] engine — so
    /// a solo contended campaign is *bit-identical* to the single-task
    /// protocol (and enjoys its throughput).  The contended interleaving
    /// engine reproduces the same results (pinned by the
    /// `contention_equivalence` test suite); the fast path just gets them
    /// at batched speed.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    pub fn run_contended<S>(&self, sources: &[S], seeds: &[u64]) -> Result<ContendedResult, ConfigError>
    where
        S: EventSource,
    {
        self.config.validate()?;
        self.run_contended_validated(sources, seeds)
    }

    /// [`Self::run_contended`] over this campaign's default seed schedule
    /// — the same `runs`-long [`SeedSequence`] draw as [`Self::run`], so a
    /// solo co-schedule reproduces `run()` bit for bit and a fixed
    /// contended campaign is the documented superset of
    /// [`Self::run_contended_adaptive`]'s prefix.  The schedule convention
    /// lives here, in one place, rather than in every caller.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    pub fn run_contended_campaign<S>(&self, sources: &[S]) -> Result<ContendedResult, ConfigError>
    where
        S: EventSource,
    {
        self.config.validate()?;
        let seeds: Vec<u64> = SeedSequence::new(self.campaign_seed).take(self.runs).collect();
        self.run_contended_validated(sources, &seeds)
    }

    /// The contended worker pool; the configuration is already validated
    /// by the public entry points.
    fn run_contended_validated<S>(
        &self,
        sources: &[S],
        seeds: &[u64],
    ) -> Result<ContendedResult, ConfigError>
    where
        S: EventSource,
    {
        if sources.is_empty() || seeds.is_empty() {
            return Ok(ContendedResult::default());
        }
        let tasks = sources.len();
        // Idle co-schedule: no opponent emits an event, so the shared L2
        // sees only the victim — route through the batched solo engine.
        if sources[1..].iter().all(|s| s.events().next().is_none()) {
            let solo = self.run_seeds_validated(&sources[0], seeds)?;
            return Ok(ContendedResult::from_runs(
                solo.runs()
                    .iter()
                    .map(|run| {
                        let mut task_runs = vec![
                            TaskRun {
                                cycles: 0,
                                stats: HierarchyStats::default(),
                            };
                            tasks
                        ];
                        task_runs[0] = TaskRun {
                            cycles: run.cycles,
                            stats: run.stats,
                        };
                        ContendedRun {
                            seed: run.seed,
                            tasks: task_runs,
                        }
                    })
                    .collect(),
            ));
        }
        let config = self.config;
        let arbitration = self.arbitration;
        let runs = scoped_chunks(seeds, self.threads, |chunk| {
            let mut core = ContentionCore::new(&config, tasks, arbitration)?;
            let mut out = Vec::with_capacity(chunk.len());
            for &seed in chunk {
                let streams: Vec<_> = sources.iter().map(|s| s.events()).collect();
                let task_runs = core
                    .execute_contended(streams, seed)
                    .into_iter()
                    .map(|(cycles, stats)| TaskRun { cycles, stats })
                    .collect();
                out.push(ContendedRun {
                    seed,
                    tasks: task_runs,
                });
            }
            Ok(out)
        })?;
        Ok(ContendedResult::from_runs(runs))
    }

    /// Convergence-driven contended campaign: grows the seed schedule (in
    /// the same deterministic [`SeedSequence`] order as [`Self::run`])
    /// until the *victim's* pWCET estimate stabilises under `criterion`,
    /// mirroring [`Self::run_adaptive`] for the shared-L2 platform.  The
    /// collected runs are a bit-identical prefix of a fixed-size
    /// [`Self::run_contended`] schedule with the same campaign seed.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    ///
    /// # Panics
    ///
    /// Panics if the criterion is malformed (see
    /// [`ConvergenceTracker::new`]).
    pub fn run_contended_adaptive<S>(
        &self,
        sources: &[S],
        criterion: &ConvergenceCriterion,
    ) -> Result<ContendedAdaptiveResult, ConfigError>
    where
        S: EventSource,
    {
        self.config.validate()?;
        let (runs, tracker) = self.run_adaptive_schedule(
            criterion,
            |batch| self.run_contended_validated(sources, batch).map(|result| result.runs),
            |run| run.tasks[0].cycles,
        )?;
        Ok(ContendedAdaptiveResult {
            result: ContendedResult::from_runs(runs),
            converged: tracker.is_converged(),
            pwcet_estimate: tracker.current_estimate(),
            trajectory: tracker.trajectory().to_vec(),
        })
    }

    /// Runs the convergence-driven variant of the MBPTA protocol: the seed
    /// schedule grows in batches until `criterion` declares the pWCET
    /// estimate stable (or its run cap is hit), instead of executing a
    /// fixed run count.
    ///
    /// Seeds are drawn in the same deterministic order as [`Self::run`],
    /// and each batch goes through the same seed-batched worker pool
    /// ([`BatchCore`] lanes across threads), so an adaptive campaign's
    /// first `N` runs are **bit-identical** to `run_seeds` with the first
    /// `N` seeds of the campaign's [`SeedSequence`] — the adaptive engine
    /// only chooses where the schedule *stops*, never what any run
    /// computes.  The tracker is fed between batches, so the campaign can
    /// overshoot the exact convergence run by at most one checkpoint
    /// interval's worth of runs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    ///
    /// # Panics
    ///
    /// Panics if the criterion is malformed (see
    /// [`ConvergenceTracker::new`]).
    pub fn run_adaptive<S>(
        &self,
        source: &S,
        criterion: &ConvergenceCriterion,
    ) -> Result<AdaptiveResult, ConfigError>
    where
        S: EventSource + ?Sized,
    {
        self.config.validate()?;
        let (runs, tracker) = self.run_adaptive_schedule(
            criterion,
            |batch| self.run_seeds_validated(source, batch).map(|result| result.runs),
            |run| run.cycles,
        )?;
        Ok(AdaptiveResult {
            result: CampaignResult::from_runs(runs),
            converged: tracker.is_converged(),
            pwcet_estimate: tracker.current_estimate(),
            trajectory: tracker.trajectory().to_vec(),
        })
    }

    /// Runs the deterministic-platform protocol of Figure 4(b) in streaming
    /// form: `build(i)` produces the trace of the `i`-th memory layout, and
    /// each worker thread holds at most one layout's trace alive at a time
    /// — the sweep's memory footprint no longer grows with the number of
    /// layouts.  The result's `seed` field records the layout index.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    pub fn run_layout_sweep_with<S, F>(
        &self,
        layouts: usize,
        build: F,
    ) -> Result<CampaignResult, ConfigError>
    where
        S: EventSource,
        F: Fn(usize) -> S + Sync,
    {
        self.config.validate()?;
        let config = self.config;
        let indices: Vec<usize> = (0..layouts).collect();
        let runs = scoped_chunks(&indices, self.threads, |chunk| {
            let mut core = InOrderCore::new(&config)?;
            let mut out = Vec::with_capacity(chunk.len());
            for &index in chunk {
                let layout_trace = build(index);
                let (cycles, stats) = core.execute_isolated(layout_trace.events(), 0);
                out.push(RunResult {
                    seed: index as u64,
                    cycles,
                    stats,
                });
            }
            Ok(out)
        })?;
        Ok(CampaignResult::from_runs(runs))
    }

    /// Collecting adapter for pre-materialised layout sweeps: every entry
    /// of `layouts` is the same program placed differently in memory; each
    /// is executed once (the layout, not a seed, is what varies).  Prefer
    /// [`Self::run_layout_sweep_with`] when the traces can be generated on
    /// demand.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the platform configuration is invalid.
    pub fn run_layout_sweep(&self, layouts: &[Trace]) -> Result<CampaignResult, ConfigError> {
        self.run_layout_sweep_with(layouts.len(), |i| &layouts[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemEvent;
    use randmod_core::{Address, PlacementKind};

    fn stress_trace() -> Trace {
        let mut trace = Trace::new();
        for repeat in 0..3 {
            for i in 0..640u64 {
                trace.fetch(Address::new(0x1000 + (i % 16) * 32));
                trace.load(Address::new(0x10_0000 + i * 32 + repeat));
            }
        }
        trace
    }

    #[test]
    fn campaign_produces_requested_number_of_runs() {
        let campaign = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
            8,
        )
        .with_threads(2);
        let result = campaign.run(&stress_trace()).unwrap();
        assert_eq!(result.len(), 8);
        assert!(result.min_cycles() > 0);
        assert!(result.max_cycles() >= result.min_cycles());
        assert!(result.mean_cycles() >= result.min_cycles() as f64);
    }

    #[test]
    fn campaign_is_reproducible_for_a_given_campaign_seed() {
        let campaign = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::HashRandom),
            6,
        )
        .with_campaign_seed(42)
        .with_threads(3);
        let trace = stress_trace();
        let a = campaign.run(&trace).unwrap();
        let b = campaign.run(&trace).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let trace = stress_trace();
        let single = Campaign::new(PlatformConfig::leon3(), 6)
            .with_campaign_seed(7)
            .with_threads(1)
            .run(&trace)
            .unwrap();
        let multi = Campaign::new(PlatformConfig::leon3(), 6)
            .with_campaign_seed(7)
            .with_threads(4)
            .run(&trace)
            .unwrap();
        assert_eq!(single.cycles(), multi.cycles());
    }

    #[test]
    fn lanes_and_threads_do_not_change_results() {
        // The full grid of the batching knobs must reproduce one
        // CampaignResult bit-for-bit (including per-run HierarchyStats) for
        // a fixed campaign seed.
        let trace = stress_trace();
        let reference = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
            13,
        )
        .with_campaign_seed(99)
        .with_threads(1)
        .with_lanes(1)
        .run(&trace)
        .unwrap();
        for lanes in [1usize, 2, 7] {
            for threads in [1usize, 4] {
                let result = Campaign::new(
                    PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
                    13,
                )
                .with_campaign_seed(99)
                .with_threads(threads)
                .with_lanes(lanes)
                .run(&trace)
                .unwrap();
                assert_eq!(
                    result, reference,
                    "lanes={lanes} threads={threads} diverged from the sequential reference"
                );
            }
        }
    }

    #[test]
    fn lane_accessors_and_clamping() {
        let campaign = Campaign::new(PlatformConfig::leon3(), 4);
        assert_eq!(campaign.lanes(), Campaign::DEFAULT_LANES);
        assert_eq!(campaign.clone().with_lanes(0).lanes(), 1);
        assert_eq!(campaign.with_lanes(3).lanes(), 3);
    }

    #[test]
    fn empty_campaign_is_empty() {
        let campaign = Campaign::new(PlatformConfig::leon3(), 0);
        let result = campaign.run(&stress_trace()).unwrap();
        assert!(result.is_empty());
        assert_eq!(result.mean_cycles(), 0.0);
        assert_eq!(result.max_cycles(), 0);
    }

    #[test]
    fn run_seeds_uses_exactly_the_given_seeds() {
        let campaign = Campaign::new(PlatformConfig::leon3(), 0).with_threads(2);
        let trace = stress_trace();
        let seeds = [3u64, 1, 4, 1, 5];
        let result = campaign.run_seeds(&trace, &seeds).unwrap();
        let recorded: Vec<u64> = result.runs().iter().map(|r| r.seed).collect();
        assert_eq!(recorded, seeds);
        // Identical seeds must give identical execution times.
        assert_eq!(result.runs()[1].cycles, result.runs()[3].cycles);
    }

    #[test]
    fn deterministic_layout_sweep_records_layout_indices() {
        let campaign = Campaign::new(PlatformConfig::leon3_deterministic(), 0).with_threads(2);
        let base = stress_trace();
        let layouts: Vec<Trace> = (0..5u64).map(|i| base.with_offsets(i * 64, i * 4096)).collect();
        let result = campaign.run_layout_sweep(&layouts).unwrap();
        assert_eq!(result.len(), 5);
        let indices: Vec<u64> = result.runs().iter().map(|r| r.seed).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
        // Deterministic platform: re-running the sweep reproduces it.
        assert_eq!(result, campaign.run_layout_sweep(&layouts).unwrap());
    }

    #[test]
    fn empty_layout_sweep_is_empty() {
        let campaign = Campaign::new(PlatformConfig::leon3_deterministic(), 0);
        assert!(campaign.run_layout_sweep(&[]).unwrap().is_empty());
        assert!(campaign
            .run_layout_sweep_with(0, |_| Trace::new())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn streamed_layout_sweep_matches_collected_sweep() {
        let campaign = Campaign::new(PlatformConfig::leon3_deterministic(), 0).with_threads(3);
        let base = stress_trace();
        let layouts: Vec<Trace> = (0..7u64).map(|i| base.with_offsets(i * 64, i * 4096)).collect();
        let collected = campaign.run_layout_sweep(&layouts).unwrap();
        let streamed = campaign
            .run_layout_sweep_with(7, |i| base.with_offsets(i as u64 * 64, i as u64 * 4096))
            .unwrap();
        assert_eq!(collected, streamed);
    }

    #[test]
    fn packed_replay_matches_boxed_replay() {
        let campaign = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
            10,
        )
        .with_campaign_seed(11)
        .with_threads(2);
        let trace = stress_trace();
        let packed = crate::packed::PackedTrace::from(&trace);
        assert_eq!(campaign.run(&trace).unwrap(), campaign.run(&packed).unwrap());
    }

    #[test]
    fn campaign_accepts_event_slices() {
        let events: Vec<MemEvent> = stress_trace().into_iter().collect();
        let campaign = Campaign::new(PlatformConfig::leon3(), 4).with_threads(2);
        let from_slice = campaign.run(&events[..]).unwrap();
        let from_trace = campaign.run(&stress_trace()).unwrap();
        assert_eq!(from_slice, from_trace);
    }

    #[test]
    fn random_placement_produces_execution_time_variability() {
        let campaign = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::HashRandom),
            20,
        )
        .with_threads(4);
        let result = campaign.run(&stress_trace()).unwrap();
        assert!(
            result.max_cycles() > result.min_cycles(),
            "no execution-time variability across 20 random layouts"
        );
    }

    fn opponent_trace() -> Trace {
        let mut trace = Trace::new();
        for i in 0..3000u64 {
            trace.load(Address::new(0x40_0000 + (i % 4096) * 32));
        }
        trace
    }

    #[test]
    fn contended_campaign_produces_per_task_runs() {
        let campaign = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
            0,
        )
        .with_threads(2);
        let sources = [stress_trace(), opponent_trace()];
        let seeds = [1u64, 2, 3, 4, 5];
        let result = campaign.run_contended(&sources, &seeds).unwrap();
        assert_eq!(result.len(), 5);
        assert_eq!(result.task_count(), 2);
        let recorded: Vec<u64> = result.runs().iter().map(|r| r.seed).collect();
        assert_eq!(recorded, seeds);
        for run in result.runs() {
            assert!(run.tasks[0].cycles > 0 && run.tasks[1].cycles > 0);
            let aggregate = run.aggregate_stats();
            assert_eq!(
                aggregate.l2.accesses,
                run.tasks[0].stats.l2.accesses + run.tasks[1].stats.l2.accesses
            );
        }
        assert!(result.to_string().contains("contended runs"));
    }

    #[test]
    fn contended_campaign_is_thread_invariant() {
        for arbitration in crate::contention::Arbitration::ALL {
            let sources = [stress_trace(), opponent_trace()];
            let seeds: Vec<u64> = (0..7).collect();
            let run = |threads: usize| {
                Campaign::new(PlatformConfig::leon3(), 0)
                    .with_threads(threads)
                    .with_arbitration(arbitration)
                    .run_contended(&sources, &seeds)
                    .unwrap()
            };
            assert_eq!(run(1), run(4), "{arbitration}");
        }
    }

    #[test]
    fn solo_contended_campaign_matches_run_seeds_bit_for_bit() {
        // The acceptance criterion: one task plus an idle opponent must
        // reproduce the single-task batched protocol exactly.
        let campaign = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
            0,
        )
        .with_threads(2);
        let victim = stress_trace();
        let seeds = [9u64, 8, 7, 6];
        let solo = campaign.run_seeds(&victim, &seeds).unwrap();
        let contended = campaign
            .run_contended(&[victim.clone(), Trace::new()], &seeds)
            .unwrap();
        assert_eq!(contended.victim_result(), solo);
        for run in contended.runs() {
            assert_eq!(run.tasks[1], TaskRun { cycles: 0, stats: HierarchyStats::default() });
        }
    }

    #[test]
    fn contended_campaign_default_schedule_matches_run() {
        // `run_contended_campaign` owns the default-schedule convention:
        // a solo co-schedule must reproduce `run()` bit for bit.
        let campaign = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
            7,
        )
        .with_campaign_seed(17)
        .with_threads(2);
        let victim = stress_trace();
        let solo = campaign.run(&victim).unwrap();
        let contended = campaign
            .run_contended_campaign(&[victim.clone(), Trace::new()])
            .unwrap();
        assert_eq!(contended.victim_result(), solo);
        assert_eq!(contended.len(), 7);
    }

    #[test]
    fn contended_result_accessors_and_empty_cases() {
        let campaign = Campaign::new(PlatformConfig::leon3(), 0);
        assert!(campaign
            .run_contended::<Trace>(&[], &[1, 2])
            .unwrap()
            .is_empty());
        assert!(campaign
            .run_contended(&[stress_trace()], &[])
            .unwrap()
            .is_empty());
        assert_eq!(ContendedResult::default().task_count(), 0);
        assert_eq!(
            campaign.with_arbitration(crate::contention::Arbitration::SeededRandom).arbitration(),
            crate::contention::Arbitration::SeededRandom
        );
        let flat: Vec<u64> = ContendedResult::from_runs(vec![ContendedRun {
            seed: 1,
            tasks: vec![
                TaskRun { cycles: 10, stats: HierarchyStats::default() },
                TaskRun { cycles: 20, stats: HierarchyStats::default() },
            ],
        }])
        .flat_cycles_iter()
        .collect();
        assert_eq!(flat, vec![10, 20]);
    }

    #[test]
    fn contended_adaptive_runs_are_a_prefix_of_the_fixed_schedule() {
        use randmod_mbpta::online::ConvergenceCriterion;
        let campaign = Campaign::new(
            PlatformConfig::leon3().with_l1_placement(PlacementKind::RandomModulo),
            0,
        )
        .with_campaign_seed(31)
        .with_threads(2);
        let sources = [stress_trace(), opponent_trace()];
        let criterion = ConvergenceCriterion::default()
            .with_min_runs(10)
            .with_check_interval(5)
            .with_max_runs(25)
            .with_block_size(5);
        let adaptive = campaign.run_contended_adaptive(&sources, &criterion).unwrap();
        assert!(adaptive.runs_used() >= 10 && adaptive.runs_used() <= 25);
        assert!(!adaptive.trajectory().is_empty());
        assert!(adaptive.pwcet_estimate() > 0.0);
        // Prefix identity against the fixed schedule.
        let seeds: Vec<u64> = SeedSequence::new(31).take(adaptive.runs_used()).collect();
        let fixed = campaign.run_contended(&sources, &seeds).unwrap();
        assert_eq!(adaptive.result(), &fixed);
    }

    #[test]
    fn campaign_result_display() {
        let result = CampaignResult::from_runs(vec![RunResult {
            seed: 1,
            cycles: 100,
            stats: HierarchyStats::default(),
        }]);
        assert!(result.to_string().contains("1 runs"));
    }

    #[test]
    fn accessors_expose_configuration() {
        let campaign = Campaign::new(PlatformConfig::leon3(), 12);
        assert_eq!(campaign.runs(), 12);
        assert_eq!(campaign.config(), &PlatformConfig::leon3());
    }
}
